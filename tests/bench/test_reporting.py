"""Tests for table rendering."""

from repro.bench import ExperimentTable, render_table


class TestRenderTable:
    def test_alignment(self):
        text = render_table(("a", "long header"), [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert lines[0].startswith("a  ")
        assert "-+-" in lines[1]
        assert len({len(line) for line in lines}) == 1

    def test_title(self):
        text = render_table(("x",), [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = render_table(("x",), [(1.23456,)])
        assert "1.235" in text


class TestExperimentTable:
    def test_add_row_and_render(self):
        table = ExperimentTable("T0", "demo", ("col1", "col2"))
        table.add_row("a", 1)
        table.add_note("a remark")
        text = table.render()
        assert "[T0] demo" in text
        assert "a remark" in text
        assert "col1" in text

    def test_column_extraction(self):
        table = ExperimentTable("T0", "demo", ("scheme", "sent"))
        table.add_row("x", 10)
        table.add_row("y", 20)
        assert table.column("sent") == [10, 20]
