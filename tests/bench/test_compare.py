"""Tests for the bench regression gate (`repro.bench.compare`)."""

import copy

from repro.bench import compare_reports


def _report(machine="m1", **scenario_overrides):
    scenario = {
        "name": "engine-seminaive-dag-64",
        "kind": "engine",
        "wall_seconds": 0.010,
        "counters": {
            "firings": 100,
            "probes": 200,
            "iterations": 400,
            "facts_out": 50,
        },
    }
    scenario.update(scenario_overrides)
    return {
        "bench_format": "repro.bench.perf",
        "schema_version": 1,
        "machine": {"fingerprint": machine},
        "scenarios": [scenario],
    }


class TestCounterGate:
    def test_identical_reports_pass(self):
        old = _report()
        result = compare_reports(old, copy.deepcopy(old))
        assert result.ok
        assert "no regressions" in result.render()

    def test_counter_regression_beyond_threshold_fails(self):
        old = _report()
        new = _report()
        new["scenarios"][0]["counters"]["firings"] = 150  # +50%
        result = compare_reports(old, new, threshold=0.25)
        assert not result.ok
        assert any("firings" in r for r in result.regressions)
        assert "REGRESSED" in result.render()

    def test_counter_increase_within_threshold_passes(self):
        old = _report()
        new = _report()
        new["scenarios"][0]["counters"]["probes"] = 210  # +5%
        result = compare_reports(old, new, threshold=0.10)
        assert result.ok

    def test_counter_improvement_is_not_a_regression(self):
        old = _report()
        new = _report()
        new["scenarios"][0]["counters"]["probes"] = 100  # -50%
        result = compare_reports(old, new)
        assert result.ok
        assert any(d.status == "improved" for d in result.deltas)

    def test_facts_out_any_change_fails(self):
        for changed in (49, 51):
            old = _report()
            new = _report()
            new["scenarios"][0]["counters"]["facts_out"] = changed
            result = compare_reports(old, new, threshold=0.50)
            assert not result.ok
            assert any("answer itself differs" in r
                       for r in result.regressions)


class TestWallGate:
    def test_wall_regression_fails_on_same_machine(self):
        old = _report()
        new = _report()
        new["scenarios"][0]["wall_seconds"] = 0.020
        result = compare_reports(old, new, threshold=0.10)
        assert not result.ok
        assert any("wall_seconds" in r for r in result.regressions)

    def test_wall_skipped_across_machines(self):
        old = _report(machine="m1")
        new = _report(machine="m2")
        new["scenarios"][0]["wall_seconds"] = 0.500
        result = compare_reports(old, new)
        assert result.ok
        assert any("fingerprints differ" in n for n in result.notes)
        assert not any(d.metric == "wall_seconds" for d in result.deltas)

    def test_force_wall_compares_across_machines(self):
        old = _report(machine="m1")
        new = _report(machine="m2")
        new["scenarios"][0]["wall_seconds"] = 0.500
        result = compare_reports(old, new, force_wall=True)
        assert not result.ok

    def test_counters_only_ignores_wall(self):
        old = _report()
        new = _report()
        new["scenarios"][0]["wall_seconds"] = 9.9
        result = compare_reports(old, new, counters_only=True)
        assert result.ok
        assert not any(d.metric == "wall_seconds" for d in result.deltas)


class TestCoverage:
    def test_missing_scenario_is_a_regression(self):
        old = _report()
        new = _report()
        new["scenarios"] = []
        result = compare_reports(old, new)
        assert not result.ok
        assert any("missing from the new report" in r
                   for r in result.regressions)

    def test_extra_scenario_is_only_a_note(self):
        old = _report()
        new = _report()
        new["scenarios"].append(
            {"name": "extra", "kind": "engine", "wall_seconds": 0.1,
             "counters": {"firings": 1, "facts_out": 1}})
        result = compare_reports(old, new)
        assert result.ok
        assert any("extra" in n for n in result.notes)

    def test_zero_to_nonzero_counter_is_infinite_regression(self):
        old = _report()
        old["scenarios"][0]["counters"]["rounds"] = 0
        new = _report()
        new["scenarios"][0]["counters"]["rounds"] = 3
        result = compare_reports(old, new)
        assert not result.ok
