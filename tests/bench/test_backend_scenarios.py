"""Bench integration of the columnar fact backend."""

from repro.bench.perf import machine_fingerprint, run_scenario
from repro.bench.scenarios import (
    PerfScenario,
    default_matrix,
    find_scenario,
    smoke_matrix,
)
from repro.facts import fact_backend


class TestBackendScenarios:
    def test_matrices_carry_columnar_variants(self):
        for matrix in (default_matrix(), smoke_matrix()):
            backends = {scenario.backend for scenario in matrix}
            assert backends == {"tuple", "columnar"}
            names = [scenario.name for scenario in matrix]
            assert len(names) == len(set(names))

    def test_columnar_scenarios_named_consistently(self):
        for scenario in default_matrix() + smoke_matrix():
            if scenario.kernel is not None:
                assert scenario.name.endswith("-" + scenario.kernel)
                continue
            assert (scenario.backend == "columnar") == (
                scenario.name.endswith("-columnar"))

    def test_describe_mentions_backend(self):
        scenario = find_scenario("engine-seminaive-chain-96-columnar")
        assert "backend=columnar" in scenario.describe()
        assert "backend=" not in find_scenario(
            "engine-seminaive-chain-96").describe()

    def test_fingerprint_records_backend(self):
        assert machine_fingerprint()["fact_backend"] == fact_backend()

    def test_columnar_record_carries_backend_ab(self):
        scenario = PerfScenario(
            name="engine-tiny-columnar", kind="engine", workload="chain",
            size=24, method="seminaive", backend="columnar")
        before = fact_backend()
        record = run_scenario(scenario, repeats=1, warmup=0)
        assert record["backend"] == "columnar"
        assert "backend_wall_seconds" in record
        assert "backend_speedup" in record
        # The backend must not leak out of the measurement.
        assert fact_backend() == before

    def test_tuple_record_has_no_backend_ab(self):
        scenario = PerfScenario(
            name="engine-tiny-tuple", kind="engine", workload="chain",
            size=24, method="seminaive")
        record = run_scenario(scenario, repeats=1, warmup=0)
        assert record["backend"] == "tuple"
        assert "backend_wall_seconds" not in record
