"""Tests for the performance baseline subsystem (`repro.bench.perf`)."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    default_matrix,
    find_scenario,
    load_report,
    machine_fingerprint,
    matrix_by_name,
    next_bench_path,
    profile_scenario,
    run_matrix,
    run_scenario,
    smoke_matrix,
    write_report,
)
from repro.errors import ReproError

TINY = "engine-seminaive-dag-64"  # smoke-matrix scenario, runs in ~10 ms


class TestScenarioMatrix:
    def test_default_matrix_covers_all_executors(self):
        matrix = default_matrix()
        assert len(matrix) >= 12
        kinds = {scenario.kind for scenario in matrix}
        assert kinds == {"engine", "simulator", "mp"}
        schemes = {scenario.scheme for scenario in matrix
                   if scenario.scheme is not None}
        assert {"example1", "example2", "example3", "general"} <= schemes
        processors = {scenario.processors for scenario in matrix
                      if scenario.processors is not None}
        assert {2, 4, 8} <= processors

    def test_names_unique_across_matrices(self):
        names = [s.name for s in default_matrix()] + [
            s.name for s in smoke_matrix()]
        assert len(names) == len(set(names))

    def test_find_scenario(self):
        scenario = find_scenario(TINY)
        assert scenario.kind == "engine"
        with pytest.raises(ReproError, match="unknown perf scenario"):
            find_scenario("no-such-scenario")
        with pytest.raises(ReproError, match="unknown scenario matrix"):
            matrix_by_name("nope")


class TestRunScenario:
    def test_record_shape(self):
        record = run_scenario(find_scenario(TINY), repeats=2, warmup=0)
        assert record["name"] == TINY
        assert record["wall_seconds"] == min(record["wall_seconds_all"])
        assert len(record["wall_seconds_all"]) == 2
        counters = record["counters"]
        assert counters["firings"] > 0
        assert counters["probes"] > 0
        assert counters["facts_out"] > 0
        # engine scenarios carry the before/after kernel measurement
        assert record["baseline_wall_seconds"] > 0
        assert record["kernel_speedup"] > 0

    def test_counters_deterministic_across_runs(self):
        first = run_scenario(find_scenario(TINY), repeats=1, warmup=0,
                             baseline=False)
        second = run_scenario(find_scenario(TINY), repeats=1, warmup=0,
                              baseline=False)
        assert first["counters"] == second["counters"]

    def test_simulator_scenario_counters(self):
        record = run_scenario(find_scenario("sim-example3-dag-64-n2"),
                              repeats=1, warmup=0)
        assert record["counters"]["tuples_sent"] > 0
        assert record["counters"]["rounds"] > 0
        assert "baseline_wall_seconds" not in record

    def test_rejects_bad_repeats(self):
        with pytest.raises(ReproError, match="repeats"):
            run_scenario(find_scenario(TINY), repeats=0)


class TestReportRoundTrip:
    def test_write_load_round_trip(self, tmp_path):
        report = run_matrix([find_scenario(TINY)], repeats=1, warmup=0,
                            baseline=False)
        path = str(tmp_path / "BENCH_test.json")
        write_report(report, path)
        loaded = load_report(path)
        assert loaded == json.loads(json.dumps(report))
        assert loaded["schema_version"] == BENCH_SCHEMA_VERSION
        assert loaded["machine"] == machine_fingerprint()

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ReproError, match="not a repro.bench.perf"):
            load_report(str(path))

    def test_load_rejects_unknown_schema_version(self, tmp_path):
        path = tmp_path / "BENCH_future.json"
        path.write_text(json.dumps(
            {"bench_format": "repro.bench.perf", "schema_version": 999}))
        with pytest.raises(ReproError, match="schema_version"):
            load_report(str(path))

    def test_next_bench_path_increments(self, tmp_path):
        root = str(tmp_path)
        first = next_bench_path(root)
        assert first.endswith("BENCH_1.json")
        (tmp_path / "BENCH_1.json").write_text("{}")
        assert next_bench_path(root).endswith("BENCH_2.json")

    def test_only_filter(self):
        report = run_matrix(smoke_matrix(), repeats=1, warmup=0,
                            baseline=False, only=["engine-seminaive-dag"])
        names = [r["name"] for r in report["scenarios"]]
        assert names == ["engine-seminaive-dag-64"]
        with pytest.raises(ReproError, match="no scenario matches"):
            run_matrix(smoke_matrix(), only=["zzz"])


class TestProfile:
    def test_profile_renders_phases_and_hot_functions(self):
        text = profile_scenario(TINY, top=5)
        assert "per-phase event counts" in text
        assert "rule_fired" in text
        assert "cumulative time" in text
