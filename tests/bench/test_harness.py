"""Tests for the experiment harness: the paper's claims hold on the tables."""

import pytest

from repro.bench import (
    compare_schemes,
    general_scheme_table,
    load_balance_table,
    network_minimality_table,
    redundancy_table,
    scalability_sweep,
    sequential_baseline,
    termination_overhead_table,
    tradeoff_sweep,
)
from repro.datalog import Variable
from repro.facts import Database
from repro.parallel import TupleDiscriminator
from repro.workloads import example6_program, make_workload, random_tree_edges

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


@pytest.fixture(scope="module")
def dag_workload():
    return make_workload("dag", 60, seed=2)


class TestCompareSchemes:
    def test_all_schemes_correct(self, dag_workload):
        table = compare_schemes(dag_workload, range(3))
        assert set(table.column("ok")) == {"yes"}

    def test_paper_claims_hold(self, dag_workload):
        table = compare_schemes(dag_workload, range(3))
        rows = {row[0]: dict(zip(table.headers, row)) for row in table.rows}
        example1 = rows["example1 (no comm)"]
        example2 = rows["example2 (broadcast)"]
        example3 = rows["example3 (p2p)"]
        wolfson = rows["wolfson (redundant)"]
        # Example 1: no communication but full replication.
        assert example1["sent"] == 0
        assert example1["replication"] == 3.0
        # Example 2: any partition (replication 1) but most communication.
        assert example2["replication"] == 1.0
        assert example2["sent"] > example3["sent"] > 0
        # Non-redundancy of the shared-h schemes, redundancy of Wolfson.
        assert example1["redundancy"] == 0
        assert example3["redundancy"] == 0
        assert wolfson["redundancy"] > 0
        assert wolfson["sent"] == 0


class TestTradeoffSweep:
    def test_endpoints(self, dag_workload):
        table = tradeoff_sweep(dag_workload, range(3),
                               fractions=(0.0, 0.5, 1.0))
        redundancy = table.column("redundancy")
        sent = table.column("sent")
        assert redundancy[0] == 0
        assert sent[-1] == 0
        # Communication decreases monotonically with retention.
        assert sent[0] > sent[1] > sent[2]


class TestRedundancyTable:
    def test_never_redundant(self):
        workloads = [make_workload("dag", 40, seed=1),
                     make_workload("tree", 40, seed=1),
                     make_workload("nonlinear-dag", 25, seed=1)]
        table = redundancy_table(workloads, range(3))
        assert set(table.column("ok")) == {"yes"}


class TestScalability:
    def test_rows_per_processor_count(self, dag_workload):
        table = scalability_sweep(dag_workload, (1, 2, 4))
        assert table.column("N") == [1, 2, 4]
        speedups = table.column("speedup")
        # More processors should not slow the modelled makespan down
        # dramatically; speedup at 4 should beat 1-processor baseline.
        assert speedups[-1] > speedups[0]


class TestGeneralSchemeTable:
    def test_nonlinear_and_same_generation(self):
        workloads = [make_workload("nonlinear-dag", 25, seed=3),
                     make_workload("same-generation", 24, seed=3)]
        table = general_scheme_table(workloads, range(3))
        assert set(table.column("ok")) == {"yes"}


class TestNetworkMinimality:
    def test_sound_and_covered(self):
        def database_factory(seed):
            return Database.from_facts({
                "q": random_tree_edges(15, seed=seed),
                "r": random_tree_edges(15, seed=seed + 99),
            })

        table = network_minimality_table(
            example6_program(), v_r=(Y, Z), v_e=(X, Y),
            h=TupleDiscriminator(2), database_factory=database_factory,
            trials=10)
        (row,) = table.rows
        values = dict(zip(table.headers, row))
        assert values["sound"] == "yes"
        assert values["witness coverage"] > 0.4


class TestTerminationOverhead:
    def test_control_messages_grow_with_n(self):
        workload = make_workload("chain", 15)
        table = termination_overhead_table(workload, (2, 4, 8))
        control = table.column("control messages")
        assert control[0] < control[-1]


class TestLoadBalance:
    def test_jain_index_in_bounds(self, dag_workload):
        table = load_balance_table(dag_workload, range(3))
        for value in table.column("jain index"):
            assert 1 / 3 <= value <= 1.0


class TestSequentialBaseline:
    def test_returns_output_and_counters(self, dag_workload):
        output, counters = sequential_baseline(dag_workload)
        assert len(output.relation("anc")) > 0
        assert counters.total_firings() > 0
