"""Tests for physical topologies and embedding checks."""

import pytest

from repro.datalog import Variable
from repro.network import (
    NetworkGraph,
    complete_topology,
    derive_network,
    embeds_identity,
    find_embedding,
    hypercube_topology,
    mesh_topology,
    ring_topology,
    star_topology,
)
from repro.parallel import TupleDiscriminator
from repro.workloads import example6_program

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestTopologies:
    def test_complete(self):
        topo = complete_topology([0, 1, 2])
        assert topo.degree_summary() == (6, 6)

    def test_ring_directed(self):
        topo = ring_topology([0, 1, 2], bidirectional=False)
        assert topo.has_edge(0, 1)
        assert topo.has_edge(2, 0)
        assert not topo.has_edge(1, 0)

    def test_ring_bidirectional(self):
        topo = ring_topology([0, 1, 2])
        assert topo.has_edge(1, 0)

    def test_star(self):
        topo = star_topology([0, 1, 2, 3])
        assert topo.has_edge(0, 3)
        assert topo.has_edge(3, 0)
        assert not topo.has_edge(1, 2)

    def test_mesh(self):
        topo = mesh_topology(2, 2)
        assert topo.has_edge((0, 0), (0, 1))
        assert topo.has_edge((1, 0), (0, 0))
        assert not topo.has_edge((0, 0), (1, 1))

    def test_hypercube(self):
        topo = hypercube_topology(2)
        assert topo.has_edge((0, 0), (0, 1))
        assert topo.has_edge((0, 0), (1, 0))
        assert not topo.has_edge((0, 0), (1, 1))


class TestEmbedding:
    def test_identity_embedding_in_complete(self):
        network = NetworkGraph([0, 1, 2], [(0, 1), (1, 2)])
        assert embeds_identity(network, complete_topology([0, 1, 2]))

    def test_identity_embedding_missing_link(self):
        network = NetworkGraph([0, 1, 2], [(0, 2)])
        topo = ring_topology([0, 1, 2], bidirectional=False)
        assert not embeds_identity(network, topo)

    def test_example6_does_not_fit_2cube_directly(self):
        network = derive_network(example6_program(), v_r=(Y, Z), v_e=(X, Y),
                                 h=TupleDiscriminator(2))
        assert not embeds_identity(network, hypercube_topology(2))

    def test_find_embedding_by_renaming(self):
        network = NetworkGraph(["a", "b"], [("a", "b")])
        topo = ring_topology([0, 1, 2], bidirectional=False)
        mapping = find_embedding(network, topo)
        assert mapping is not None
        assert topo.has_edge(mapping["a"], mapping["b"])

    def test_find_embedding_impossible(self):
        network = NetworkGraph([0, 1, 2],
                               [(0, 1), (1, 0), (1, 2), (2, 1), (0, 2),
                                (2, 0)])
        topo = ring_topology(["x", "y", "z"], bidirectional=False)
        assert find_embedding(network, topo) is None

    def test_find_embedding_too_many_nodes(self):
        network = NetworkGraph(range(3))
        topo = complete_topology(range(12))
        with pytest.raises(ValueError):
            find_embedding(network, topo, max_nodes=8)

    def test_network_larger_than_topology(self):
        network = NetworkGraph(range(4))
        topo = complete_topology(range(2))
        assert find_embedding(network, topo) is None
