"""Tests for dataflow graphs (Definition 2, Figures 1 and 2, Theorem 3)."""

import pytest

from repro.datalog import parse_program, parse_rule
from repro.errors import NotASirupError
from repro.network import (
    dataflow_edges,
    dataflow_graph,
    find_dataflow_cycle,
    format_dataflow,
    zero_communication_positions,
)
from repro.workloads import chain3_program, reverse_chain_program


class TestDataflowGraph:
    def test_figure1_chain(self, chain3):
        """Example 4: p(U,V,W) :- p(V,W,Z), q(U,Z) gives 1 -> 2 -> 3."""
        assert dataflow_edges(chain3) == ((1, 2), (2, 3))
        assert format_dataflow(chain3) == "1 -> 2 -> 3"

    def test_figure2_ancestor_self_loop(self, ancestor):
        """Example 5: the ancestor rule's graph is the self-loop 2 -> 2."""
        assert dataflow_edges(ancestor) == ((2, 2),)

    def test_left_linear_self_loop_at_one(self):
        assert dataflow_edges(reverse_chain_program()) == ((1, 1),)

    def test_accepts_bare_rule(self):
        rule = parse_rule("p(U, V, W) :- p(V, W, Z), q(U, Z).")
        assert dataflow_edges(rule) == ((1, 2), (2, 3))

    def test_repeated_variable_multiple_edges(self):
        rule = parse_rule("p(X, X) :- p(Y, X), q(Y).")
        # X at body position 2 feeds head positions 1 and 2.
        assert dataflow_edges(rule) == ((2, 1), (2, 2))

    def test_no_shared_variables_empty_graph(self):
        rule = parse_rule("p(X) :- p(Y), q(Y, X).")
        assert dataflow_edges(rule) == ()
        assert format_dataflow(rule) == "(empty)"

    def test_rejects_nonlinear_rule(self):
        rule = parse_rule("p(X, Y) :- p(X, Z), p(Z, Y).")
        with pytest.raises(NotASirupError):
            dataflow_graph(rule)

    def test_rejects_constant_arguments(self):
        rule = parse_rule("p(X, 1) :- p(X, Y), q(Y).")
        with pytest.raises(NotASirupError):
            dataflow_graph(rule)


class TestCycles:
    def test_ancestor_cycle(self, ancestor):
        assert find_dataflow_cycle(ancestor) == (2,)
        assert zero_communication_positions(ancestor) == (2,)

    def test_chain3_acyclic(self, chain3):
        assert find_dataflow_cycle(chain3) is None
        assert zero_communication_positions(chain3) is None

    def test_swap_rule_two_cycle(self):
        program = parse_program("""
            p(X, Y) :- q(X, Y).
            p(X, Y) :- p(Y, X), r(X).
        """)
        cycle = find_dataflow_cycle(program)
        assert cycle is not None
        assert sorted(cycle) == [1, 2]

    def test_rotation_rule_three_cycle(self):
        program = parse_program("""
            p(X, Y, Z) :- q(X, Y, Z).
            p(X, Y, Z) :- p(Y, Z, X), r(X).
        """)
        cycle = find_dataflow_cycle(program)
        assert cycle is not None
        assert sorted(cycle) == [1, 2, 3]
