"""Tests for the linear-system network derivation (Example 7)."""

from repro.datalog import Variable
from repro.network import build_linear_system
from repro.workloads import chain3_program

U, V, W, Z = Variable("U"), Variable("V"), Variable("W"), Variable("Z")


class TestBuildLinearSystem:
    def _systems(self):
        return build_linear_system(chain3_program(), v_r=(V, W, Z),
                                   v_e=(U, V, W), coefficients=(1, -1, 1))

    def test_two_scenarios(self):
        systems = self._systems()
        assert [system.label for system in systems] == ["exit", "recursive"]

    def test_recursive_scenario_matches_paper_equations(self):
        """Equations (4) and (5): x1-x2+x3 = v and x2-x3+x4 = u."""
        recursive = self._systems()[1]
        assert recursive.symbols == 4
        assert recursive.consumer_row == (1, -1, 1, 0)
        assert recursive.producer_row == (0, 1, -1, 1)

    def test_exit_scenario_is_trivially_diagonal(self):
        exit_system = self._systems()[0]
        assert exit_system.consumer_row == exit_system.producer_row
        assert exit_system.solve(2) <= {(u, u) for u in (-1, 0, 1, 2)}

    def test_render_matches_paper_notation(self):
        recursive = self._systems()[1]
        text = recursive.render()
        assert "x1 - x2 + x3 = v" in text
        assert "x2 - x3 + x4 = u" in text

    def test_render_with_modulus_and_coefficients(self):
        systems = build_linear_system(chain3_program(), v_r=(V, W, Z),
                                      v_e=(U, V, W), coefficients=(2, 0, -1),
                                      modulus=3)
        text = systems[1].render()
        assert "mod 3" in text
        assert "2*x" in text

    def test_solve_respects_equalities(self):
        from repro.network.linear import LinearSystem
        system = LinearSystem(symbols=2, consumer_row=(1, 0),
                              producer_row=(0, 1), equalities=((0, 1),),
                              label="test", modulus=None)
        assert system.solve(2) == {(0, 0), (1, 1)}

    def test_zero_symbol_system(self):
        from repro.network.linear import LinearSystem
        system = LinearSystem(symbols=0, consumer_row=(), producer_row=(),
                              equalities=(), label="test", modulus=None)
        assert system.solve(2) == {(0, 0)}

    def test_mismatched_coefficients_rejected(self):
        import pytest
        from repro.errors import NetworkDerivationError
        with pytest.raises(NetworkDerivationError):
            build_linear_system(chain3_program(), v_r=(V, W, Z),
                                v_e=(U, V, W), coefficients=(1, -1))
