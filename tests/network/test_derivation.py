"""Tests for compile-time network derivation (Examples 6 and 7)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import Variable, as_linear_sirup
from repro.errors import NetworkDerivationError
from repro.facts import Database
from repro.network import derive_network, solve_linear_network
from repro.parallel import (
    HashDiscriminator,
    LinearDiscriminator,
    TupleDiscriminator,
    rewrite_linear_sirup,
    run_parallel,
)
from repro.workloads import chain3_program, example6_program, random_tree_edges

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
U, V, W = Variable("U"), Variable("V"), Variable("W")


class TestExample6Figure3:
    """Paper, Example 6: h(a, b) = (g(a), g(b)), processors {0,1}^2."""

    @pytest.fixture
    def network(self, example6):
        return derive_network(example6, v_r=(Y, Z), v_e=(X, Y),
                              h=TupleDiscriminator(2))

    def test_no_edge_00_to_01(self, network):
        assert not network.has_edge((0, 0), (0, 1))

    def test_no_edge_00_to_11(self, network):
        assert not network.has_edge((0, 0), (1, 1))

    def test_edge_00_to_10(self, network):
        assert network.has_edge((0, 0), (1, 0))

    def test_structure_second_component_must_match_first(self, network):
        """Edge (b, c) -> (a, b): the receiver's second g equals the
        sender's first g."""
        for source, target in network.edges(include_self=False):
            assert target[1] == source[0]

    def test_every_consistent_edge_present(self, network):
        for source in itertools.product((0, 1), repeat=2):
            for target in itertools.product((0, 1), repeat=2):
                expected = target[1] == source[0]
                assert network.has_edge(source, target) == (
                    expected) or source == target


class TestExample7Figure4:
    def test_linear_solver_agrees_with_enumeration(self, chain3):
        by_system = solve_linear_network(
            chain3, v_r=(V, W, Z), v_e=(U, V, W), coefficients=(1, -1, 1))
        by_enumeration = derive_network(
            chain3, v_r=(V, W, Z), v_e=(U, V, W),
            h=LinearDiscriminator((1, -1, 1)))
        assert by_system.edges() == by_enumeration.edges()

    def test_processor_set_matches_paper(self, chain3):
        network = solve_linear_network(
            chain3, v_r=(V, W, Z), v_e=(U, V, W), coefficients=(1, -1, 1))
        assert set(network.processors) == {-1, 0, 1, 2}

    def test_edge_characterisation(self, chain3):
        """Remote edge u -> v possible iff u + v = x1 + x4 lies in {0,1,2}.

        Self-loops additionally arise from the exit-producer scenario
        (h' = h makes production and consumption coincide), so every
        (u, u) is an edge regardless of the sum condition.
        """
        network = solve_linear_network(
            chain3, v_r=(V, W, Z), v_e=(U, V, W), coefficients=(1, -1, 1))
        for u in (-1, 0, 1, 2):
            for v in (-1, 0, 1, 2):
                if u == v:
                    assert network.has_edge(u, v)
                else:
                    assert network.has_edge(u, v) == (0 <= u + v <= 2)

    @given(st.tuples(st.integers(-2, 2), st.integers(-2, 2),
                     st.integers(-2, 2)))
    @settings(max_examples=30, deadline=None)
    def test_solver_vs_enumeration_random_coefficients(self, coefficients):
        chain3 = chain3_program()
        by_system = solve_linear_network(
            chain3, v_r=(V, W, Z), v_e=(U, V, W), coefficients=coefficients)
        by_enumeration = derive_network(
            chain3, v_r=(V, W, Z), v_e=(U, V, W),
            h=LinearDiscriminator(coefficients))
        assert by_system.edges() == by_enumeration.edges()


class TestDerivationSoundness:
    """Every channel the simulator uses must be a derived edge."""

    def _observed(self, program, v_r, v_e, h, database):
        parallel = rewrite_linear_sirup(program, tuple(h.processors),
                                        v_r, v_e, h)
        return run_parallel(parallel, database).metrics.used_channels()

    @given(st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_example6_soundness(self, seed):
        example6 = example6_program()
        h = TupleDiscriminator(2)
        derived = derive_network(example6, v_r=(Y, Z), v_e=(X, Y), h=h)
        database = Database.from_facts({
            "q": random_tree_edges(12, seed=seed),
            "r": random_tree_edges(12, seed=seed + 1000),
        })
        observed = self._observed(example6, (Y, Z), (X, Y), h, database)
        assert derived.covers(observed)

    @given(st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_chain3_soundness(self, seed):
        chain3 = chain3_program()
        h = LinearDiscriminator((1, -1, 1))
        derived = derive_network(chain3, v_r=(V, W, Z), v_e=(U, V, W), h=h)
        import random
        rng = random.Random(seed)
        s_facts = [(rng.randrange(5), rng.randrange(5), rng.randrange(5))
                   for _ in range(8)]
        q_facts = [(rng.randrange(5), rng.randrange(5)) for _ in range(10)]
        database = Database.from_facts({"s": s_facts, "q": q_facts})
        observed = self._observed(chain3, (V, W, Z), (U, V, W), h, database)
        assert derived.covers(observed)


class TestDerivationErrors:
    def test_non_composable_discriminator_rejected(self, example6):
        with pytest.raises(NetworkDerivationError):
            derive_network(example6, v_r=(Y, Z), v_e=(X, Y),
                           h=HashDiscriminator((0, 1)))

    def test_symbol_budget_enforced(self, example6):
        with pytest.raises(NetworkDerivationError):
            derive_network(example6, v_r=(Y, Z), v_e=(X, Y),
                           h=TupleDiscriminator(2), max_symbols=1)
