"""Tests for the network graph type."""

import pytest

from repro.network import NetworkGraph


class TestNetworkGraph:
    def test_edges_with_and_without_self_loops(self):
        graph = NetworkGraph([0, 1], [(0, 0), (0, 1)])
        assert graph.edges() == {(0, 0), (0, 1)}
        assert graph.edges(include_self=False) == {(0, 1)}

    def test_add_edge_validates_nodes(self):
        graph = NetworkGraph([0, 1])
        with pytest.raises(ValueError):
            graph.add_edge(0, 9)

    def test_has_edge(self):
        graph = NetworkGraph([0, 1], [(0, 1)])
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)

    def test_degree_summary(self):
        graph = NetworkGraph([0, 1, 2], [(0, 1), (1, 2), (1, 1)])
        assert graph.degree_summary() == (2, 6)

    def test_subset_and_covers(self):
        small = NetworkGraph([0, 1, 2], [(0, 1)])
        big = NetworkGraph([0, 1, 2], [(0, 1), (1, 2)])
        assert small.is_subset_of(big)
        assert not big.is_subset_of(small)
        assert big.covers([(0, 1), (2, 2)])  # self edges always covered
        assert not small.covers([(1, 2)])

    def test_tuple_processor_ids(self):
        graph = NetworkGraph([(0, 0), (0, 1)], [((0, 0), (0, 1))])
        assert graph.has_edge((0, 0), (0, 1))
        assert (0, 0) in graph.processors

    def test_equality(self):
        assert NetworkGraph([0, 1], [(0, 1)]) == NetworkGraph([0, 1], [(0, 1)])
        assert NetworkGraph([0, 1], [(0, 1)]) != NetworkGraph([0, 1])

    def test_to_ascii_lists_remote_successors(self):
        graph = NetworkGraph([0, 1], [(0, 1), (0, 0)])
        text = graph.to_ascii()
        assert "0 -> 1" in text
        assert "1 -> (none)" in text
