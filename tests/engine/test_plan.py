"""Tests for plan execution: joins, constraints, firing counts."""

import pytest

from repro.datalog import Atom, Constant, Rule, Variable, parse_rule
from repro.engine import EvalCounters, compile_plan
from repro.errors import EvaluationError
from repro.facts import Database

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def _db():
    return Database.from_facts({
        "par": [(1, 2), (2, 3), (3, 4), (2, 5)],
        "anc": [(2, 3), (3, 4), (2, 5)],
    })


class TestExecute:
    def test_join_produces_expected_tuples(self):
        plan = compile_plan(parse_rule("anc2(X, Y) :- par(X, Z), anc(Z, Y)."))
        produced = sorted(plan.execute(_db()))
        assert produced == [(1, 3), (1, 5), (2, 4)]

    def test_duplicate_firings_are_yielded(self):
        database = Database.from_facts({
            "e": [(1, 2), (1, 3)],
            "f": [(2, 9), (3, 9)],
        })
        plan = compile_plan(parse_rule("g(X, Y) :- e(X, Z), f(Z, Y)."))
        produced = list(plan.execute(database))
        assert sorted(produced) == [(1, 9), (1, 9)]  # two derivations

    def test_firings_counted(self):
        counters = EvalCounters()
        plan = compile_plan(parse_rule("anc2(X, Y) :- par(X, Z), anc(Z, Y)."))
        list(plan.execute(_db(), counters))
        assert counters.total_firings() == 3
        assert counters.probes > 0

    def test_constants_in_body(self):
        plan = compile_plan(parse_rule("from2(Y) :- par(2, Y)."))
        assert sorted(plan.execute(_db())) == [(3,), (5,)]

    def test_constants_in_head(self):
        plan = compile_plan(parse_rule("tagged(1, Y) :- par(2, Y)."))
        assert sorted(plan.execute(_db())) == [(1, 3), (1, 5)]

    def test_repeated_variable_in_atom(self):
        database = Database.from_facts({"e": [(1, 1), (1, 2), (3, 3)]})
        plan = compile_plan(parse_rule("loop(X) :- e(X, X)."))
        assert sorted(plan.execute(database)) == [(1,), (3,)]

    def test_repeated_variable_across_atoms(self):
        database = Database.from_facts({"e": [(1, 2), (2, 3)],
                                        "f": [(2, 8), (9, 9)]})
        plan = compile_plan(parse_rule("g(X, Y) :- e(X, Z), f(Z, Y)."))
        assert sorted(plan.execute(database)) == [(1, 8)]

    def test_missing_relation_raises(self):
        plan = compile_plan(parse_rule("a(X) :- nowhere(X)."))
        with pytest.raises(EvaluationError):
            list(plan.execute(Database()))

    def test_constraint_filters_firings(self):
        class _OnlyEven:
            variables = (Y,)

            def satisfied(self, binding):
                return binding.get(Y).value % 2 == 0

        rule = Rule(Atom("even_child", (Y,)), (Atom("par", (X, Y)),),
                    (_OnlyEven(),))
        plan = compile_plan(rule)
        counters = EvalCounters()
        produced = sorted(plan.execute(_db(), counters))
        assert produced == [(2,), (4,)]
        # Filtered substitutions are not successful firings.
        assert counters.total_firings() == 2

    def test_false_preconstraint_short_circuits(self):
        class _Never:
            variables = ()

            def satisfied(self, binding):
                return False

        rule = Rule(Atom("a", (X,)), (Atom("par", (X, Y)),), (_Never(),))
        plan = compile_plan(rule)
        counters = EvalCounters()
        assert list(plan.execute(_db(), counters)) == []
        assert counters.probes == 0
