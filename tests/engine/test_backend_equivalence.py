"""Property tests: the columnar backend is invisible to the engine.

For any program, data, backend and join-kernel setting, evaluation must
produce the same answers, the same firings and the same probe counts —
the backend-selection matrix of docs/DATA_PLANE.md.  Divergence here
would silently invalidate every cross-backend bench comparison.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import Program, parse_program
from repro.engine import JOIN_KERNELS, EvalCounters, evaluate, set_join_kernel
from repro.facts import Database, set_fact_backend
from repro.parallel import HashConstraint
from repro.parallel.discriminating import ModuloDiscriminator
from repro.workloads import (
    ancestor_program,
    nonlinear_ancestor_program,
    same_generation_program,
)

edge_lists = st.lists(
    st.tuples(st.integers(1, 12), st.integers(1, 12)),
    min_size=0, max_size=40).map(lambda edges: sorted(set(edges)))


def _evaluate_under(backend, kernel, program, relations, method):
    previous_backend = set_fact_backend(backend)
    previous_kernel = set_join_kernel(kernel)
    try:
        database = Database()
        for name, facts in relations.items():
            database.declare(name, 2).update(facts)
        counters = EvalCounters()
        result = evaluate(program, database, method=method,
                          counters=counters)
        answers = {pred: result.relation(pred).as_set()
                   for pred in program.derived_predicates}
        return answers, counters
    finally:
        set_join_kernel(previous_kernel)
        set_fact_backend(previous_backend)


def _assert_all_backends_agree(program, relations, method="seminaive"):
    reference = None
    for backend in ("tuple", "columnar"):
        for kernel in JOIN_KERNELS:
            answers, counters = _evaluate_under(
                backend, kernel, program, relations, method)
            observed = (answers, counters.total_firings(), counters.probes,
                        counters.iterations)
            if reference is None:
                reference = observed
            else:
                assert observed == reference, (backend, kernel)


class TestBackendKernelEquivalence:
    @given(edge_lists)
    @settings(max_examples=25, deadline=None)
    def test_ancestor(self, edges):
        _assert_all_backends_agree(ancestor_program(), {"par": edges})

    @given(edge_lists)
    @settings(max_examples=15, deadline=None)
    def test_nonlinear_ancestor(self, edges):
        _assert_all_backends_agree(nonlinear_ancestor_program(),
                                   {"par": edges})

    @given(edge_lists, edge_lists, edge_lists)
    @settings(max_examples=10, deadline=None)
    def test_same_generation(self, up, down, flat):
        _assert_all_backends_agree(
            same_generation_program(),
            {"up": up, "down": down, "flat": flat})

    @given(edge_lists)
    @settings(max_examples=10, deadline=None)
    def test_naive_method(self, edges):
        _assert_all_backends_agree(ancestor_program(), {"par": edges},
                                   method="naive")

    @pytest.mark.parametrize("method", ["seminaive", "naive"])
    def test_chain_exact(self, method):
        edges = [(i, i + 1) for i in range(1, 30)]
        _assert_all_backends_agree(ancestor_program(), {"par": edges},
                                   method=method)

    @given(edge_lists)
    @settings(max_examples=15, deadline=None)
    def test_multi_step_bodies(self, edges):
        # Three-atom bodies drive the kernels through several join
        # levels per rule, where the vectorized kernel's per-level
        # grouping must count probes exactly like backtracking does.
        program = parse_program("""
            hop2(X, Z) :- e(X, Y), e(Y, Z).
            reach(X, Y) :- e(X, Y).
            reach(X, Y) :- reach(X, Z), e(Z, W), e(W, Y).
        """)
        _assert_all_backends_agree(program, {"e": edges})

    @given(edge_lists, st.sampled_from([0, 1]))
    @settings(max_examples=15, deadline=None)
    def test_constraint_bearing_rules(self, edges, target):
        # Hash constraints (the parallel rewrites' side conditions)
        # force every kernel through its constraint-filter path.
        disc = ModuloDiscriminator((0, 1))
        rules = [rule.with_constraints(
                     [HashConstraint(disc, rule.head_variables(), target)])
                 for rule in ancestor_program().rules]
        _assert_all_backends_agree(Program(rules), {"par": edges})
