"""Tests for stratum construction."""

from repro.datalog import parse_program
from repro.engine import build_strata


class TestBuildStrata:
    def test_single_recursive_stratum(self, ancestor):
        strata = build_strata(ancestor)
        assert len(strata) == 1
        stratum = strata[0]
        assert stratum.predicates == frozenset({"anc"})
        assert stratum.recursive
        assert len(stratum.exit_rules()) == 1
        assert len(stratum.recursive_rules()) == 1

    def test_non_recursive_stratum(self):
        program = parse_program("grandpar(X, Y) :- par(X, Z), par(Z, Y).")
        strata = build_strata(program)
        assert len(strata) == 1
        assert not strata[0].recursive

    def test_dependent_strata_in_order(self):
        program = parse_program("""
            top(X) :- anc(X, Y), root(Y).
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- par(X, Z), anc(Z, Y).
        """)
        strata = build_strata(program)
        names = [stratum.predicates for stratum in strata]
        assert names.index(frozenset({"anc"})) < names.index(
            frozenset({"top"}))

    def test_mutual_recursion_one_stratum(self):
        program = parse_program("""
            even(X) :- zero(X).
            odd(Y) :- even(X), succ(X, Y).
            even(Y) :- odd(X), succ(X, Y).
        """)
        strata = build_strata(program)
        assert len(strata) == 1
        assert strata[0].predicates == frozenset({"even", "odd"})
        assert strata[0].recursive

    def test_base_only_components_skipped(self, ancestor):
        strata = build_strata(ancestor)
        assert all("par" not in stratum.predicates for stratum in strata)
