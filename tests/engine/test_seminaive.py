"""Tests for semi-naive evaluation and its delta-variant machinery."""

from repro.datalog import parse_program, parse_rule
from repro.engine import (
    DELTA_SUFFIX,
    PREV_SUFFIX,
    EvalCounters,
    delta_variants,
    evaluate,
    seminaive_evaluate,
)
from repro.facts import Database


class TestDeltaVariants:
    def test_linear_rule_single_variant(self):
        rule = parse_rule("anc(X, Y) :- par(X, Z), anc(Z, Y).")
        variants = delta_variants(rule, {"anc"})
        assert len(variants) == 1
        variant = variants[0]
        assert variant.delta_position == 1
        assert variant.rule.body[1].predicate == "anc" + DELTA_SUFFIX
        assert variant.rule.body[0].predicate == "par"

    def test_nonlinear_rule_two_variants(self):
        rule = parse_rule("anc(X, Y) :- anc(X, Z), anc(Z, Y).")
        variants = delta_variants(rule, {"anc"})
        assert len(variants) == 2
        first, second = variants
        # Variant 1: delta at position 0, later occurrence reads prev.
        assert first.rule.body[0].predicate == "anc" + DELTA_SUFFIX
        assert first.rule.body[1].predicate == "anc" + PREV_SUFFIX
        # Variant 2: delta at position 1, earlier occurrence reads full.
        assert second.rule.body[0].predicate == "anc"
        assert second.rule.body[1].predicate == "anc" + DELTA_SUFFIX

    def test_non_recursive_rule_yields_nothing(self):
        rule = parse_rule("anc(X, Y) :- par(X, Y).")
        assert delta_variants(rule, {"anc"}) == []

    def test_mutual_recursion_targets(self):
        rule = parse_rule("a(X) :- b(X), c(X).")
        variants = delta_variants(rule, {"b", "c"})
        assert len(variants) == 2


class TestSemiNaive:
    def test_chain_closure(self, ancestor, chain_db):
        output = seminaive_evaluate(ancestor, chain_db)
        assert len(output.relation("anc")) == 55

    def test_firings_equal_derivations_on_tree(self, ancestor, tree_db):
        counters = EvalCounters()
        output = seminaive_evaluate(ancestor, tree_db, counters)
        # On a tree every anc fact has exactly one derivation, and
        # semi-naive enumerates each exactly once.
        assert counters.total_firings() == len(output.relation("anc"))

    def test_nonlinear_exactly_once_per_derivation_pair(self, chain_db,
                                                        nonlinear_ancestor):
        linear = parse_program("""
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- par(X, Z), anc(Z, Y).
        """)
        expected = seminaive_evaluate(linear, chain_db).relation("anc").as_set()
        got = seminaive_evaluate(nonlinear_ancestor,
                                 chain_db).relation("anc").as_set()
        assert got == expected

    def test_input_database_not_mutated(self, ancestor, chain_db):
        before = chain_db.relation("par").as_set()
        seminaive_evaluate(ancestor, chain_db)
        assert chain_db.relation("par").as_set() == before
        assert chain_db.get("anc") is None

    def test_program_facts_seed_evaluation(self):
        program = parse_program("""
            par(1, 2).
            par(2, 3).
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- par(X, Z), anc(Z, Y).
        """)
        output = seminaive_evaluate(program, Database())
        assert output.relation("anc").as_set() == {(1, 2), (2, 3), (1, 3)}

    def test_facts_for_derived_predicate(self):
        program = parse_program("""
            anc(7, 8).
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- par(X, Z), anc(Z, Y).
        """)
        database = Database.from_facts({"par": [(6, 7)]})
        output = seminaive_evaluate(program, database)
        assert (6, 8) in output.relation("anc")

    def test_multi_stratum_program(self, chain_db):
        program = parse_program("""
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- par(X, Z), anc(Z, Y).
            reach10(X) :- anc(X, 10).
            two_hop_reach(X, Y) :- reach10(X), anc(X, Y).
        """)
        output = seminaive_evaluate(program, chain_db)
        assert len(output.relation("reach10")) == 9
        assert output.relation("two_hop_reach")

    def test_mutual_recursion(self):
        program = parse_program("""
            even(X) :- zero(X).
            odd(Y) :- even(X), succ(X, Y).
            even(Y) :- odd(X), succ(X, Y).
        """)
        database = Database.from_facts({
            "zero": [(0,)],
            "succ": [(i, i + 1) for i in range(6)],
        })
        output = seminaive_evaluate(program, database)
        assert output.relation("even").as_set() == {(0,), (2,), (4,), (6,)}
        assert output.relation("odd").as_set() == {(1,), (3,), (5,)}

    def test_cyclic_data_terminates(self):
        program = parse_program("""
            tc(X, Y) :- edge(X, Y).
            tc(X, Y) :- edge(X, Z), tc(Z, Y).
        """)
        database = Database.from_facts({
            "edge": [(1, 2), (2, 3), (3, 1)],
        })
        output = seminaive_evaluate(program, database)
        assert len(output.relation("tc")) == 9  # complete digraph

    def test_iterations_counted(self, ancestor, chain_db):
        counters = EvalCounters()
        seminaive_evaluate(ancestor, chain_db, counters)
        assert counters.iterations == 10
