"""Tests for plan compilation and body ordering."""

import pytest

from repro.datalog import Atom, Constant, Variable, parse_rule
from repro.engine import compile_plan, order_body
from repro.errors import EvaluationError

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class _TrueConstraint:
    def __init__(self, *variables):
        self._variables = variables

    @property
    def variables(self):
        return self._variables

    def satisfied(self, binding):
        return True

    def __str__(self):
        return "true"


class TestOrderBody:
    def test_textual_order_when_disabled(self):
        rule = parse_rule("a(X, Y) :- b(X), c(X, Y), d(Y).")
        assert order_body(rule, reorder=False) == (0, 1, 2)

    def test_pinned_first_without_reorder(self):
        rule = parse_rule("a(X, Y) :- b(X), c(X, Y), d(Y).")
        assert order_body(rule, reorder=False, pinned_first=2) == (2, 0, 1)

    def test_greedy_prefers_bound_atoms(self):
        # After b(X) binds X, c(X, Y) has a bound position, d(W) has none.
        rule = parse_rule("a(X, Y) :- c(X, Y), d(W), b(X), e(W, Y).")
        order = order_body(rule, reorder=True, pinned_first=2)
        # b(X) pinned; then c(X, Y) scores better than d(W).
        assert order[0] == 2
        assert order[1] == 0

    def test_constants_count_as_bound(self):
        rule = parse_rule("a(X) :- b(X, Y), c(7, X).")
        order = order_body(rule, reorder=True)
        assert order[0] == 1  # c(7, X) has a constant-bound position

    def test_empty_body(self):
        rule = parse_rule("a(1).")
        assert order_body(rule) == ()


class TestCompilePlan:
    def test_rejects_fact_rule(self):
        with pytest.raises(EvaluationError):
            compile_plan(parse_rule("a(1)."))

    def test_rejects_unsafe_rule(self):
        from repro.datalog import Rule
        rule = Rule(Atom("a", (X, Y)), (Atom("b", (X,)),))
        with pytest.raises(EvaluationError):
            compile_plan(rule)

    def test_key_positions_reflect_bindings(self):
        rule = parse_rule("a(X, Y) :- b(X, Z), c(Z, Y).")
        plan = compile_plan(rule, reorder=False)
        assert plan.steps[0].key_positions == ()
        assert plan.steps[1].key_positions == (0,)  # Z bound by step 1

    def test_repeated_variable_within_atom_not_a_key(self):
        rule = parse_rule("a(X) :- b(X, X).")
        plan = compile_plan(rule)
        assert plan.steps[0].key_positions == ()

    def test_constraint_scheduled_at_earliest_step(self):
        from repro.datalog import Rule
        rule = Rule(Atom("a", (X, Y)),
                    (Atom("b", (X, Z)), Atom("c", (Z, Y))),
                    (_TrueConstraint(Z),))
        plan = compile_plan(rule, reorder=False)
        assert len(plan.steps[0].constraints) == 1
        assert len(plan.steps[1].constraints) == 0

    def test_variable_free_constraint_is_preapplied(self):
        from repro.datalog import Rule
        rule = Rule(Atom("a", (X,)), (Atom("b", (X,)),),
                    (_TrueConstraint(),))
        plan = compile_plan(rule)
        assert plan.pre_constraints
        assert not plan.steps[0].constraints

    def test_label_defaults_to_rule_text(self):
        rule = parse_rule("a(X) :- b(X).")
        assert compile_plan(rule).label == str(rule)
        assert compile_plan(rule, label="mine").label == "mine"

    def test_str_rendering(self):
        plan = compile_plan(parse_rule("a(X, Y) :- b(X, Z), c(Z, Y)."))
        text = str(plan)
        assert "plan for" in text
        assert "1." in text and "2." in text
