"""Equivalence of the specialized join kernels and the generic interpreter.

The compiled kernel (`RulePlan._execute_compiled`) and the vectorized
batch kernel (`RulePlan._execute_vectorized`) are the seed evaluator's
specialized replacements; these tests pin both to the reference
implementation exactly: identical fact sets, firing counts and probe
counts, over the workload generator (hypothesis) and over hand-built
corner cases (constants, repeated variables, constraints, full scans).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import Variable, parse_program
from repro.engine import (
    JOIN_KERNELS,
    EvalCounters,
    compile_plan,
    evaluate,
    join_kernel,
    join_kernel_enabled,
    set_join_kernel,
)
from repro.facts import Database
from repro.parallel import example3_scheme, run_parallel
from repro.workloads import make_workload, workload_kinds

edge_lists = st.lists(
    st.tuples(st.integers(1, 10), st.integers(1, 10)),
    min_size=0, max_size=30).map(lambda edges: sorted(set(edges)))


def _all_paths(program, database, method="seminaive"):
    """Evaluate under every kernel; returns {kernel: result}."""
    results = {}
    for kernel in JOIN_KERNELS:
        previous = set_join_kernel(kernel)
        try:
            results[kernel] = evaluate(program, database, method=method)
        finally:
            set_join_kernel(previous)
    return results


def _both_paths(program, database, method="seminaive"):
    results = _all_paths(program, database, method=method)
    return results["generic"], results


def _assert_equivalent(generic, results, predicates):
    for kernel, result in results.items():
        for predicate in predicates:
            assert (result.relation(predicate).as_set()
                    == generic.relation(predicate).as_set()), kernel
        assert (result.counters.total_firings()
                == generic.counters.total_firings()), kernel
        assert result.counters.probes == generic.counters.probes, kernel
        assert result.counters.iterations == generic.counters.iterations, kernel


class TestToggle:
    def test_set_join_kernel_returns_previous_name(self):
        original = join_kernel()
        assert set_join_kernel("generic") == original
        assert join_kernel() == "generic"
        assert join_kernel_enabled() is False
        assert set_join_kernel("vectorized") == "generic"
        assert join_kernel() == "vectorized"
        assert join_kernel_enabled() is True
        assert set_join_kernel(original) == "vectorized"
        assert join_kernel() == original

    def test_bool_arguments_coerce(self):
        # Back-compat: True/False map onto the compiled/generic kernels.
        original = set_join_kernel(False)
        try:
            assert join_kernel() == "generic"
            set_join_kernel(True)
            assert join_kernel() == "compiled"
        finally:
            set_join_kernel(original)

    def test_unknown_kernel_rejected(self):
        before = join_kernel()
        with pytest.raises(ValueError):
            set_join_kernel("simd")
        assert join_kernel() == before

    def test_per_call_override_beats_default(self):
        program = parse_program("""
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- par(X, Z), anc(Z, Y).
        """)
        database = Database.from_facts({"par": [(1, 2), (2, 3)]})
        working = Database.from_facts({"par": [(1, 2), (2, 3)]})
        working.declare("anc", 2)
        plan = compile_plan(program.proper_rules()[0])
        forced_generic = set(plan.execute(working, kernel=False))
        forced_kernel = set(plan.execute(working, kernel=True))
        forced_vectorized = set(plan.execute(working, kernel="vectorized"))
        assert (forced_generic == forced_kernel == forced_vectorized
                == {(1, 2), (2, 3)})


class TestWorkloadEquivalence:
    def test_all_workload_kinds_seminaive(self):
        for kind in workload_kinds():
            workload = make_workload(kind, 48, seed=5)
            generic, compiled = _both_paths(workload.program,
                                            workload.database)
            _assert_equivalent(generic, compiled,
                               workload.program.derived_predicates)

    def test_naive_method(self):
        workload = make_workload("dag", 40, seed=1)
        generic, compiled = _both_paths(workload.program, workload.database,
                                        method="naive")
        _assert_equivalent(generic, compiled,
                           workload.program.derived_predicates)

    @given(edge_lists, st.sampled_from(["chain", "tree", "dag"]))
    @settings(max_examples=40, deadline=None)
    def test_random_edges_ancestor(self, edges, kind):
        workload = make_workload(kind, 12, seed=0)
        database = Database()
        database.declare("par", 2).update(edges)
        generic, compiled = _both_paths(workload.program, database)
        _assert_equivalent(generic, compiled,
                           workload.program.derived_predicates)

    @given(st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_random_same_generation(self, seed):
        workload = make_workload("same-generation", 32, seed=seed)
        generic, compiled = _both_paths(workload.program, workload.database)
        _assert_equivalent(generic, compiled,
                           workload.program.derived_predicates)


class TestCornerCases:
    def test_constants_in_body_and_head(self):
        program = parse_program("""
            p(X, 7) :- e(X, 3).
            q(X) :- p(X, Y).
        """)
        database = Database.from_facts(
            {"e": [(1, 3), (2, 3), (5, 4)]})
        generic, results = _both_paths(program, database)
        _assert_equivalent(generic, results, ["p", "q"])
        for result in results.values():
            assert result.relation("p").as_set() == {(1, 7), (2, 7)}

    def test_repeated_variable_within_atom(self):
        program = parse_program("""
            loop(X) :- e(X, X).
            r(X, Y) :- e(X, Y), e(Y, X).
        """)
        database = Database.from_facts(
            {"e": [(1, 1), (1, 2), (2, 1), (3, 4)]})
        generic, results = _both_paths(program, database)
        _assert_equivalent(generic, results, ["loop", "r"])
        for result in results.values():
            assert result.relation("loop").as_set() == {(1,)}
            assert result.relation("r").as_set() == {(1, 1), (1, 2), (2, 1)}

    def test_hash_constraints_parallel_rewrite(self):
        # The rewritten programs carry HashConstraints, exercising the
        # kernel's satisfied_values fast path; the simulated cluster
        # must agree with sequential evaluation under both paths.
        workload = make_workload("dag", 40, seed=7)
        parallel_program = example3_scheme(workload.program,
                                           tuple(range(4)))
        previous = set_join_kernel("generic")
        try:
            generic = run_parallel(parallel_program, workload.database)
        finally:
            set_join_kernel(previous)
        for kernel in ("compiled", "vectorized"):
            previous = set_join_kernel(kernel)
            try:
                specialized = run_parallel(parallel_program, workload.database)
            finally:
                set_join_kernel(previous)
            for predicate in parallel_program.derived:
                assert (specialized.relation(predicate).as_set()
                        == generic.relation(predicate).as_set()), kernel
            assert (specialized.metrics.total_firings()
                    == generic.metrics.total_firings()), kernel
            assert (specialized.metrics.total_sent()
                    == generic.metrics.total_sent()), kernel

    def test_missing_relation_raises_same_error(self):
        from repro.errors import EvaluationError

        program = parse_program("p(X) :- q(X).", validate=False)
        plan = compile_plan(program.rules[0])
        empty = Database()
        for kernel in JOIN_KERNELS:
            with pytest.raises(EvaluationError, match="no relation"):
                list(plan.execute(empty, kernel=kernel))

    def test_counters_optional(self):
        program = parse_program("""
            anc(X, Y) :- par(X, Y).
        """, validate=False)
        database = Database.from_facts({"par": [(1, 2)]})
        plan = compile_plan(program.rules[0])
        for kernel in ("compiled", "vectorized"):
            assert list(plan.execute(database, kernel=kernel)) == [(1, 2)]
            counters = EvalCounters()
            assert (list(plan.execute(database, counters, kernel=kernel))
                    == [(1, 2)])
            assert counters.total_firings() == 1
            assert counters.probes == 1
