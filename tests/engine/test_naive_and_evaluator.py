"""Tests for naive evaluation and the evaluator facade."""

import pytest

from repro.datalog import parse_program
from repro.engine import EvalCounters, evaluate, naive_evaluate
from repro.errors import EvaluationError
from repro.facts import Database


class TestNaive:
    def test_matches_seminaive(self, ancestor, dag_db):
        naive = naive_evaluate(ancestor, dag_db)
        semi = evaluate(ancestor, dag_db).output
        assert naive.same_contents(semi, ["anc"])

    def test_more_redundant_than_seminaive(self, ancestor, chain_db):
        naive_counters = EvalCounters()
        semi_counters = EvalCounters()
        naive_evaluate(ancestor, chain_db, naive_counters)
        evaluate(ancestor, chain_db, counters=semi_counters)
        assert naive_counters.total_firings() > semi_counters.total_firings()

    def test_input_not_mutated(self, ancestor, chain_db):
        before = chain_db.relation("par").as_set()
        naive_evaluate(ancestor, chain_db)
        assert chain_db.relation("par").as_set() == before


class TestEvaluator:
    def test_method_selection(self, ancestor, chain_db):
        assert evaluate(ancestor, chain_db, method="naive").method == "naive"
        assert evaluate(ancestor, chain_db).method == "seminaive"

    def test_unknown_method(self, ancestor, chain_db):
        with pytest.raises(EvaluationError):
            evaluate(ancestor, chain_db, method="magic")

    def test_result_accessors(self, ancestor, chain_db):
        result = evaluate(ancestor, chain_db)
        assert len(result.relation("anc")) == 55
        assert result.total_firings() == result.counters.total_firings()

    def test_external_counters(self, ancestor, chain_db):
        counters = EvalCounters()
        result = evaluate(ancestor, chain_db, counters=counters)
        assert result.counters is counters

    def test_empty_database(self, ancestor):
        result = evaluate(ancestor, Database())
        assert len(result.relation("anc")) == 0

    def test_same_generation(self, sg_program, sg_db):
        result = evaluate(sg_program, sg_db)
        naive = evaluate(sg_program, sg_db, method="naive")
        assert result.output.same_contents(naive.output, ["sg"])
        assert len(result.relation("sg")) > 0


class TestCounters:
    def test_merge(self):
        left = EvalCounters()
        left.record_firing("r1", 3)
        left.record_probe(5)
        left.iterations = 2
        right = EvalCounters()
        right.record_firing("r1", 1)
        right.record_firing("r2", 2)
        right.iterations = 4
        merged = left.merged_with(right)
        assert merged.firings["r1"] == 4
        assert merged.total_firings() == 6
        assert merged.probes == 5
        assert merged.iterations == 4

    def test_sum(self):
        counters = []
        for count in (1, 2, 3):
            item = EvalCounters()
            item.record_firing("r", count)
            counters.append(item)
        assert EvalCounters.sum(counters).total_firings() == 6

    def test_as_dict(self):
        counters = EvalCounters()
        counters.record_firing("r")
        counters.record_new("r")
        snapshot = counters.as_dict()
        assert snapshot["total_firings"] == 1
        assert snapshot["firings"] == {"r": 1}
