"""Property tests: naive and semi-naive agree on the least model.

This is the engine's central correctness property — the two strategies
are completely different code paths, so agreement on random programs
and random data is strong evidence both compute the least model.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import parse_program
from repro.engine import EvalCounters, evaluate
from repro.facts import Database
from repro.workloads import (
    ancestor_program,
    nonlinear_ancestor_program,
    same_generation_program,
    transitive_closure_program,
)

edge_lists = st.lists(
    st.tuples(st.integers(1, 12), st.integers(1, 12)),
    min_size=0, max_size=40).map(lambda edges: sorted(set(edges)))


def _db(relation, edges):
    database = Database()
    database.declare(relation, 2).update(edges)
    return database


class TestNaiveSeminaiveAgreement:
    @given(edge_lists)
    @settings(max_examples=60, deadline=None)
    def test_ancestor(self, edges):
        database = _db("par", edges)
        program = ancestor_program()
        semi = evaluate(program, database)
        naive = evaluate(program, database, method="naive")
        assert semi.output.same_contents(naive.output, ["anc"])

    @given(edge_lists)
    @settings(max_examples=40, deadline=None)
    def test_nonlinear_ancestor(self, edges):
        database = _db("par", edges)
        program = nonlinear_ancestor_program()
        semi = evaluate(program, database)
        naive = evaluate(program, database, method="naive")
        assert semi.output.same_contents(naive.output, ["anc"])

    @given(edge_lists)
    @settings(max_examples=40, deadline=None)
    def test_linear_equals_nonlinear_ancestor(self, edges):
        database = _db("par", edges)
        linear = evaluate(ancestor_program(), database)
        nonlinear = evaluate(nonlinear_ancestor_program(), database)
        assert (linear.relation("anc").as_set()
                == nonlinear.relation("anc").as_set())

    @given(edge_lists, edge_lists, edge_lists)
    @settings(max_examples=30, deadline=None)
    def test_same_generation(self, up, down, flat):
        database = Database()
        database.declare("up", 2).update(up)
        database.declare("down", 2).update(down)
        database.declare("flat", 2).update(flat)
        program = same_generation_program()
        semi = evaluate(program, database)
        naive = evaluate(program, database, method="naive")
        assert semi.output.same_contents(naive.output, ["sg"])

    @given(edge_lists)
    @settings(max_examples=40, deadline=None)
    def test_seminaive_never_fires_more_than_naive(self, edges):
        database = _db("edge", edges)
        program = transitive_closure_program()
        semi_counters = EvalCounters()
        naive_counters = EvalCounters()
        evaluate(program, database, counters=semi_counters)
        evaluate(program, database, method="naive", counters=naive_counters)
        assert (semi_counters.total_firings()
                <= naive_counters.total_firings())

    @given(edge_lists)
    @settings(max_examples=40, deadline=None)
    def test_closure_is_transitive_and_contains_edges(self, edges):
        database = _db("edge", edges)
        closure = evaluate(transitive_closure_program(),
                           database).relation("tc").as_set()
        assert set(edges) <= closure
        for a, b in closure:
            for c, d in closure:
                if b == c:
                    assert (a, d) in closure
