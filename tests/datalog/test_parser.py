"""Tests for the tokenizer and parser."""

import pytest

from repro.datalog import (
    Atom,
    Constant,
    Variable,
    parse_atom,
    parse_program,
    parse_rule,
    tokenize,
)
from repro.errors import DatalogSyntaxError


class TestTokenizer:
    def test_kinds(self):
        tokens = tokenize("anc(X, bob) :- par(X, 42).")
        kinds = [t.kind for t in tokens]
        assert kinds == ["name", "punct", "variable", "punct", "name",
                         "punct", "punct", "name", "punct", "variable",
                         "punct", "integer", "punct", "punct", "eof"]

    def test_comments_ignored(self):
        tokens = tokenize("p(X). % trailing\n# full line\nq(X).")
        names = [t.text for t in tokens if t.kind == "name"]
        assert names == ["p", "q"]

    def test_line_and_column_tracking(self):
        tokens = tokenize("p(X).\n  q(Y).")
        q_token = [t for t in tokens if t.text == "q"][0]
        assert (q_token.line, q_token.column) == (2, 3)

    def test_quoted_strings(self):
        tokens = tokenize("p('hello world').")
        assert any(t.kind == "string" and t.text == "hello world"
                   for t in tokens)

    def test_negative_integer(self):
        tokens = tokenize("p(-3).")
        assert any(t.kind == "integer" and t.text == "-3" for t in tokens)

    def test_unterminated_string(self):
        with pytest.raises(DatalogSyntaxError):
            tokenize("p('oops).")

    def test_unexpected_character(self):
        with pytest.raises(DatalogSyntaxError) as info:
            tokenize("p(X) & q(X).")
        assert "&" in str(info.value)


class TestParser:
    def test_parse_atom(self):
        atom = parse_atom("par(X, bob)")
        assert atom == Atom("par", (Variable("X"), Constant("bob")))

    def test_parse_fact_rule(self):
        rule = parse_rule("par(1, 2).")
        assert rule.head == Atom.from_fact("par", (1, 2))
        assert rule.body == ()

    def test_parse_recursive_rule(self, ancestor):
        rule = ancestor.rules[1]
        assert str(rule) == "anc(X, Y) :- par(X, Z), anc(Z, Y)."

    def test_underscore_starts_variable(self):
        atom = parse_atom("p(_x)")
        assert atom.terms == (Variable("_x"),)

    def test_predicate_must_be_lowercase(self):
        with pytest.raises(DatalogSyntaxError):
            parse_atom("Par(X, Y)")

    def test_missing_period(self):
        with pytest.raises(DatalogSyntaxError):
            parse_program("p(X) :- q(X)")

    def test_missing_close_paren(self):
        with pytest.raises(DatalogSyntaxError):
            parse_atom("p(X, Y")

    def test_trailing_garbage_in_rule(self):
        with pytest.raises(DatalogSyntaxError):
            parse_rule("p(1). q(2).")

    def test_negation_rejected(self):
        with pytest.raises(DatalogSyntaxError):
            parse_program("p(X) :- q(X), !r(X).")

    def test_error_carries_position(self):
        with pytest.raises(DatalogSyntaxError) as info:
            parse_program("p(X) :- q(X).\np(X, :- q(X).")
        assert info.value.line == 2

    def test_empty_program(self):
        assert len(parse_program("")) == 0

    def test_mixed_constants(self):
        program = parse_program("p(alice, 'Bob Smith', 17, -4).")
        fact = program.facts()[0].to_fact()
        assert fact == ("alice", "Bob Smith", 17, -4)
