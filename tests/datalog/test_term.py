"""Tests for terms: variables and constants."""

import pytest

from repro.datalog import Constant, Variable, is_constant, is_variable


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")

    def test_hash_consistent_with_equality(self):
        assert hash(Variable("X")) == hash(Variable("X"))
        assert len({Variable("X"), Variable("X"), Variable("Y")}) == 2

    def test_str_is_name(self):
        assert str(Variable("Long_Name")) == "Long_Name"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_renamed_appends_suffix(self):
        assert Variable("X").renamed("_1") == Variable("X_1")

    def test_not_equal_to_constant_of_same_text(self):
        assert Variable("X") != Constant("X")
        assert hash(Variable("X")) != hash(Constant("X"))


class TestConstant:
    def test_equality_by_value(self):
        assert Constant(1) == Constant(1)
        assert Constant(1) != Constant(2)
        assert Constant("a") != Constant(1)

    def test_hashable_in_sets(self):
        assert len({Constant(1), Constant(1), Constant("1")}) == 2

    def test_str_of_identifier(self):
        assert str(Constant("alice")) == "alice"

    def test_str_of_non_identifier_quotes(self):
        assert str(Constant("two words")) == repr("two words")

    def test_str_of_int(self):
        assert str(Constant(42)) == "42"

    def test_predicates(self):
        assert is_constant(Constant(1))
        assert not is_constant(Variable("X"))
        assert is_variable(Variable("X"))
        assert not is_variable(Constant(1))
