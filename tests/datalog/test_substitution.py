"""Tests for substitutions."""

import pytest

from repro.datalog import Constant, Substitution, Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestSubstitution:
    def test_empty_binds_nothing(self):
        subst = Substitution.empty()
        assert subst.get(X) is None
        assert len(subst) == 0

    def test_bind_returns_extended_copy(self):
        base = Substitution.empty()
        extended = base.bind(X, Constant(1))
        assert extended.get(X) == Constant(1)
        assert base.get(X) is None  # immutability

    def test_rebind_same_value_is_noop(self):
        subst = Substitution.empty().bind(X, Constant(1))
        assert subst.bind(X, Constant(1)) == subst

    def test_rebind_conflicting_value_raises(self):
        subst = Substitution.empty().bind(X, Constant(1))
        with pytest.raises(ValueError):
            subst.bind(X, Constant(2))

    def test_apply_bound_and_unbound(self):
        subst = Substitution({X: Constant(1)})
        assert subst.apply(X) == Constant(1)
        assert subst.apply(Y) == Y
        assert subst.apply(Constant(9)) == Constant(9)

    def test_is_ground(self):
        assert Substitution({X: Constant(1)}).is_ground()
        assert not Substitution({X: Y}).is_ground()

    def test_compose_applies_right_to_left_result(self):
        first = Substitution({X: Y})
        second = Substitution({Y: Constant(3)})
        composed = first.compose(second)
        assert composed.apply(X) == Constant(3)
        assert composed.apply(Y) == Constant(3)

    def test_equality_and_hash(self):
        a = Substitution({X: Constant(1), Y: Constant(2)})
        b = Substitution({Y: Constant(2), X: Constant(1)})
        assert a == b
        assert hash(a) == hash(b)

    def test_domain_and_items(self):
        subst = Substitution({X: Constant(1)})
        assert list(subst.domain()) == [X]
        assert list(subst.items()) == [(X, Constant(1))]
        assert X in subst

    def test_repr_sorted_by_name(self):
        subst = Substitution({Y: Constant(2), X: Constant(1)})
        assert repr(subst) == "{X/1, Y/2}"
