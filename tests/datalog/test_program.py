"""Tests for programs."""

import pytest

from repro.datalog import Atom, Program, Rule, Variable, parse_program
from repro.errors import ProgramValidationError, UnsafeRuleError

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestProgram:
    def test_base_and_derived_split(self, ancestor):
        assert ancestor.derived_predicates == ("anc",)
        assert ancestor.base_predicates == ("par",)
        assert ancestor.predicates == ("anc", "par")

    def test_base_predicates_exclude_fact_defined(self):
        program = parse_program("""
            par(1, 2).
            anc(X, Y) :- par(X, Y).
        """)
        assert program.derived_predicates == ("anc",)
        assert "par" in program.base_predicates

    def test_arity_of(self, ancestor):
        assert ancestor.arity_of("anc") == 2
        with pytest.raises(KeyError):
            ancestor.arity_of("missing")

    def test_inconsistent_arity_rejected(self):
        with pytest.raises(ProgramValidationError):
            parse_program("""
                p(X) :- q(X).
                p(X, Y) :- q(X), q(Y).
            """)

    def test_unsafe_rule_rejected(self):
        with pytest.raises(UnsafeRuleError):
            parse_program("p(X, Y) :- q(X).")

    def test_validation_can_be_disabled(self):
        rule = Rule(Atom("p", (X, Y)), (Atom("q", (X,)),))
        program = Program([rule], validate=False)
        assert len(program) == 1

    def test_rules_for(self, ancestor):
        assert len(ancestor.rules_for("anc")) == 2
        assert ancestor.rules_for("par") == ()

    def test_facts_and_proper_rules(self):
        program = parse_program("""
            par(1, 2).
            anc(X, Y) :- par(X, Y).
        """)
        assert [str(a) for a in program.facts()] == ["par(1, 2)"]
        assert len(program.proper_rules()) == 1

    def test_extend(self, ancestor):
        extra = parse_program("top(X) :- anc(X, Y).").rules[0]
        extended = ancestor.extend([extra])
        assert len(extended) == 3
        assert "top" in extended.derived_predicates

    def test_iteration_and_equality(self, ancestor):
        assert list(ancestor) == list(ancestor.rules)
        assert ancestor == parse_program(str(ancestor))
