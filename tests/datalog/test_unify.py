"""Tests for unification, including hypothesis properties."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import (
    Atom,
    Constant,
    Substitution,
    Variable,
    mgu,
    unify_atoms,
    unify_terms,
)

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")

terms = st.one_of(
    st.sampled_from([Variable(n) for n in "XYZ"]),
    st.integers(0, 5).map(Constant),
)
atoms = st.tuples(st.integers(1, 3)).flatmap(
    lambda a: st.tuples(*([terms] * a[0])).map(lambda ts: Atom("p", ts)))


class TestUnifyTerms:
    def test_identical_constants(self):
        assert unify_terms(Constant(1), Constant(1)) == Substitution.empty()

    def test_distinct_constants_fail(self):
        assert unify_terms(Constant(1), Constant(2)) is None

    def test_variable_binds_constant(self):
        subst = unify_terms(X, Constant(1))
        assert subst.apply(X) == Constant(1)

    def test_constant_binds_variable_symmetrically(self):
        subst = unify_terms(Constant(1), X)
        assert subst.apply(X) == Constant(1)

    def test_two_variables_alias(self):
        subst = unify_terms(X, Y)
        # One of the two is bound to the other.
        assert subst.apply(X) == subst.apply(subst.apply(Y)) or \
            subst.apply(Y) == subst.apply(subst.apply(X))

    def test_respects_prior_binding(self):
        prior = Substitution({X: Constant(1)})
        assert unify_terms(X, Constant(2), prior) is None
        assert unify_terms(X, Constant(1), prior) == prior


class TestUnifyAtoms:
    def test_predicate_mismatch(self):
        assert unify_atoms(Atom("p", (X,)), Atom("q", (X,))) is None

    def test_arity_mismatch(self):
        assert unify_atoms(Atom("p", (X,)), Atom("p", (X, Y))) is None

    def test_binding_flows_across_positions(self):
        left = Atom("p", (X, X))
        right = Atom("p", (Constant(1), Y))
        subst = unify_atoms(left, right)
        assert subst.apply(Y) == Constant(1) or subst.apply(
            subst.apply(Y)) == Constant(1)

    def test_conflict_across_positions(self):
        left = Atom("p", (X, X))
        right = Atom("p", (Constant(1), Constant(2)))
        assert unify_atoms(left, right) is None

    def test_mgu_of_list(self):
        result = mgu([Atom("p", (X, Constant(1))),
                      Atom("p", (Constant(2), Y))])
        assert result.apply(X) == Constant(2)
        assert result.apply(Y) == Constant(1)

    def test_mgu_empty_list(self):
        assert mgu([]) == Substitution.empty()


def _resolve(term, subst):
    seen = 0
    while isinstance(term, Variable) and seen < 10:
        bound = subst.get(term)
        if bound is None:
            return term
        term = bound
        seen += 1
    return term


class TestUnifyProperties:
    @given(atoms, atoms)
    @settings(max_examples=200, deadline=None)
    def test_unifier_actually_unifies(self, left, right):
        subst = unify_atoms(left, right)
        if subst is None:
            return
        resolved_left = [_resolve(t, subst) for t in left.terms]
        resolved_right = [_resolve(t, subst) for t in right.terms]
        assert resolved_left == resolved_right

    @given(atoms, atoms)
    @settings(max_examples=200, deadline=None)
    def test_symmetry_of_success(self, left, right):
        assert (unify_atoms(left, right) is None) == (
            unify_atoms(right, left) is None)

    @given(atoms)
    @settings(max_examples=100, deadline=None)
    def test_self_unification_succeeds(self, atom):
        assert unify_atoms(atom, atom) is not None
