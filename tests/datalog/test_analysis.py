"""Tests for program analysis: dependencies, recursion, sirup detection."""

import pytest

from repro.datalog import (
    as_linear_sirup,
    dependency_graph,
    is_linear_sirup,
    is_recursive_rule,
    parse_program,
    recursion_components,
    recursive_predicates,
)
from repro.errors import NotASirupError


class TestDependencyGraph:
    def test_edges_point_from_body_to_head(self, ancestor):
        graph = dependency_graph(ancestor)
        assert graph.has_edge("par", "anc")
        assert graph.has_edge("anc", "anc")
        assert not graph.has_edge("anc", "par")

    def test_recursive_predicates_self_loop(self, ancestor):
        assert recursive_predicates(ancestor) == frozenset({"anc"})

    def test_mutual_recursion(self):
        program = parse_program("""
            even(X) :- zero(X).
            even(X) :- succ(Y, X), odd(Y).
            odd(X) :- succ(Y, X), even(X).
        """)
        assert recursive_predicates(program) == frozenset({"even", "odd"})

    def test_non_recursive_program(self):
        program = parse_program("grandpar(X, Y) :- par(X, Z), par(Z, Y).")
        assert recursive_predicates(program) == frozenset()

    def test_recursion_components_topological(self):
        program = parse_program("""
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- par(X, Z), anc(Z, Y).
            famous(X) :- anc(X, Y), celebrity(Y).
        """)
        components = recursion_components(program)
        anc_index = next(i for i, c in enumerate(components) if "anc" in c)
        famous_index = next(i for i, c in enumerate(components)
                            if "famous" in c)
        assert anc_index < famous_index


class TestRecursiveRule:
    def test_direct_recursion(self, ancestor):
        assert not is_recursive_rule(ancestor.rules[0], ancestor)
        assert is_recursive_rule(ancestor.rules[1], ancestor)

    def test_transitive_recursion(self):
        program = parse_program("""
            a(X) :- b(X).
            b(X) :- c(X).
            c(X) :- a(X).
        """)
        assert all(is_recursive_rule(rule, program) for rule in program)


class TestLinearSirup:
    def test_ancestor_decomposition(self, ancestor):
        sirup = as_linear_sirup(ancestor)
        assert sirup.predicate == "anc"
        assert [v.name for v in sirup.head_vars] == ["X", "Y"]
        assert [v.name for v in sirup.body_vars] == ["Z", "Y"]
        assert [v.name for v in sirup.exit_vars] == ["X", "Y"]
        assert len(sirup.base_atoms) == 1
        assert sirup.base_atoms[0].predicate == "par"
        assert sirup.arity == 2

    def test_rule_order_does_not_matter(self):
        program = parse_program("""
            anc(X, Y) :- par(X, Z), anc(Z, Y).
            anc(X, Y) :- par(X, Y).
        """)
        sirup = as_linear_sirup(program)
        assert sirup.exit_rule is program.rules[1]

    def test_is_linear_sirup(self, ancestor, nonlinear_ancestor):
        assert is_linear_sirup(ancestor)
        assert not is_linear_sirup(nonlinear_ancestor)

    def test_nonlinear_rejected(self, nonlinear_ancestor):
        with pytest.raises(NotASirupError):
            as_linear_sirup(nonlinear_ancestor)

    def test_wrong_rule_count_rejected(self):
        with pytest.raises(NotASirupError):
            as_linear_sirup(parse_program("p(X) :- q(X)."))

    def test_two_exit_rules_rejected(self):
        with pytest.raises(NotASirupError):
            as_linear_sirup(parse_program("""
                p(X) :- q(X).
                p(X) :- r(X).
            """))

    def test_different_heads_rejected(self):
        with pytest.raises(NotASirupError):
            as_linear_sirup(parse_program("""
                p(X) :- q(X).
                r(X) :- s(X), r(X).
            """))

    def test_constant_in_head_rejected(self):
        with pytest.raises(NotASirupError):
            as_linear_sirup(parse_program("""
                p(X, 1) :- q(X).
                p(X, Y) :- q(X), p(X, Y).
            """))

    def test_same_generation_is_sirup(self, sg_program):
        sirup = as_linear_sirup(sg_program)
        assert sirup.predicate == "sg"
        assert len(sirup.base_atoms) == 2
