"""Tests for atoms."""

import pytest

from repro.datalog import Atom, Constant, Substitution, Variable

X, Y = Variable("X"), Variable("Y")


class TestAtom:
    def test_arity(self):
        assert Atom("p", (X, Y)).arity == 2

    def test_is_ground(self):
        assert Atom.from_fact("p", (1, 2)).is_ground()
        assert not Atom("p", (X, Constant(1))).is_ground()

    def test_variables_in_first_occurrence_order(self):
        atom = Atom("p", (Y, X, Y))
        assert atom.variables() == (Y, X)

    def test_apply_substitution(self):
        atom = Atom("p", (X, Y))
        ground = atom.apply(Substitution({X: Constant(1), Y: Constant(2)}))
        assert ground == Atom.from_fact("p", (1, 2))

    def test_to_fact_requires_ground(self):
        assert Atom.from_fact("p", (1, "a")).to_fact() == (1, "a")
        with pytest.raises(ValueError):
            Atom("p", (X,)).to_fact()

    def test_match_binds_variables(self):
        binding = Atom("p", (X, Y)).match((1, 2))
        assert binding.get(X) == Constant(1)
        assert binding.get(Y) == Constant(2)

    def test_match_repeated_variable_requires_equal_values(self):
        atom = Atom("p", (X, X))
        assert atom.match((1, 1)) is not None
        assert atom.match((1, 2)) is None

    def test_match_constant_mismatch(self):
        atom = Atom("p", (Constant(5), Y))
        assert atom.match((5, 2)) is not None
        assert atom.match((4, 2)) is None

    def test_match_arity_mismatch(self):
        assert Atom("p", (X,)).match((1, 2)) is None

    def test_match_respects_existing_binding(self):
        existing = Substitution({X: Constant(9)})
        assert Atom("p", (X,)).match((9,), existing) is not None
        assert Atom("p", (X,)).match((8,), existing) is None

    def test_with_predicate(self):
        renamed = Atom("p", (X, Y)).with_predicate("p@out")
        assert renamed.predicate == "p@out"
        assert renamed.terms == (X, Y)

    def test_rename_variables(self):
        renamed = Atom("p", (X, Constant(1))).rename("_2")
        assert renamed == Atom("p", (Variable("X_2"), Constant(1)))

    def test_equality_and_hash(self):
        assert Atom("p", (X,)) == Atom("p", (X,))
        assert Atom("p", (X,)) != Atom("q", (X,))
        assert len({Atom("p", (X,)), Atom("p", (X,))}) == 1

    def test_str(self):
        assert str(Atom("p", (X, Constant(3)))) == "p(X, 3)"

    def test_empty_predicate_rejected(self):
        with pytest.raises(ValueError):
            Atom("", (X,))
