"""Tests for rules and the constraint protocol."""

import pytest

from repro.datalog import Atom, Constant, Rule, Substitution, Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
HEAD = Atom("anc", (X, Y))
BODY = (Atom("par", (X, Z)), Atom("anc", (Z, Y)))


class _EvenConstraint:
    """A toy constraint: the value bound to its variable is even."""

    def __init__(self, variable):
        self._variable = variable

    @property
    def variables(self):
        return (self._variable,)

    def satisfied(self, binding):
        term = binding.get(self._variable)
        return isinstance(term, Constant) and term.value % 2 == 0

    def __str__(self):
        return f"even({self._variable})"


class TestRule:
    def test_variables_head_first(self):
        rule = Rule(HEAD, BODY)
        assert rule.variables() == (X, Y, Z)

    def test_body_variables_in_order(self):
        rule = Rule(HEAD, BODY)
        assert rule.body_variables() == (X, Z, Y)

    def test_safety(self):
        assert Rule(HEAD, BODY).is_safe()
        unsafe = Rule(Atom("p", (X, Y)), (Atom("q", (X,)),))
        assert not unsafe.is_safe()

    def test_constraint_safety(self):
        rule = Rule(HEAD, BODY, (_EvenConstraint(Z),))
        assert rule.is_safe()
        dangling = Rule(HEAD, BODY, (_EvenConstraint(Variable("W")),))
        assert not dangling.is_safe()

    def test_fact_rule_must_be_ground(self):
        Rule(Atom.from_fact("p", (1,)))  # fine
        with pytest.raises(ValueError):
            Rule(Atom("p", (X,)))

    def test_predicates_with_duplicates(self):
        rule = Rule(HEAD, (Atom("par", (X, Z)), Atom("par", (Z, Y))))
        assert rule.predicates() == ("par", "par")

    def test_body_atoms_of(self):
        rule = Rule(HEAD, BODY)
        assert rule.body_atoms_of("anc") == (BODY[1],)
        assert rule.body_atoms_of("nope") == ()

    def test_with_constraints_appends(self):
        constraint = _EvenConstraint(Z)
        rule = Rule(HEAD, BODY).with_constraints((constraint,))
        assert rule.constraints == (constraint,)

    def test_with_body_and_with_head(self):
        rule = Rule(HEAD, BODY)
        assert rule.with_body(BODY[:1]).body == BODY[:1]
        new_head = Atom("anc2", (X, Y))
        assert rule.with_head(new_head).head == new_head

    def test_str_formats(self):
        assert str(Rule(Atom.from_fact("p", (1,)))) == "p(1)."
        rule = Rule(HEAD, BODY)
        assert str(rule) == "anc(X, Y) :- par(X, Z), anc(Z, Y)."

    def test_equality(self):
        assert Rule(HEAD, BODY) == Rule(HEAD, BODY)
        assert Rule(HEAD, BODY) != Rule(HEAD, BODY[:1])
