"""Tests for the pretty-printer, including the parse/format round-trip."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import (
    Atom,
    Constant,
    Program,
    Rule,
    Variable,
    format_atom,
    format_program,
    format_rule,
    format_term,
    parse_program,
)

# ---------------------------------------------------------------------------
# Hypothesis strategies for random (valid, safe) programs.
# ---------------------------------------------------------------------------

variables = st.sampled_from([Variable(n) for n in "XYZUVW"])
constants = st.one_of(
    st.integers(-50, 50).map(Constant),
    st.sampled_from(["a", "bob", "n1", "some_value"]).map(Constant),
)
terms = st.one_of(variables, constants)


@st.composite
def safe_rules(draw):
    """A random safe rule: head variables drawn from the body."""
    body_count = draw(st.integers(1, 3))
    body = []
    for index in range(body_count):
        arity = draw(st.integers(1, 3))
        name = draw(st.sampled_from(["q", "r", "s"]))
        body.append(Atom(f"{name}{arity}", tuple(draw(terms)
                                                 for _ in range(arity))))
    body_vars = [v for atom in body for v in atom.variables()]
    head_arity = draw(st.integers(1, 3))
    if body_vars:
        head_terms = tuple(
            draw(st.one_of(st.sampled_from(body_vars), constants))
            for _ in range(head_arity))
    else:
        head_terms = tuple(draw(constants) for _ in range(head_arity))
    return Rule(Atom(f"p{head_arity}", head_terms), body)


@st.composite
def safe_programs(draw):
    rules = draw(st.lists(safe_rules(), min_size=1, max_size=5))
    try:
        return Program(rules)
    except Exception:
        # Arity clashes between randomly drawn rules: discard.
        from hypothesis import assume
        assume(False)


class TestFormatting:
    def test_format_term_variable(self):
        assert format_term(Variable("X")) == "X"

    def test_format_term_quotes_uppercase_strings(self):
        assert format_term(Constant("Bob")) == "'Bob'"

    def test_format_atom(self):
        atom = Atom("p", (Variable("X"), Constant(3)))
        assert format_atom(atom) == "p(X, 3)"

    def test_format_rule_with_constraint_comment(self):
        class _Marker:
            variables = ()

            def satisfied(self, binding):
                return True

            def __str__(self):
                return "h() = 0"

        rule = Rule(Atom("p", (Constant(1),)), (Atom("q", (Constant(1),)),),
                    (_Marker(),))
        text = format_rule(rule)
        assert text.startswith("p(1) :- q(1).")
        assert "h() = 0" in text

    def test_format_program_line_per_rule(self, ancestor):
        assert format_program(ancestor).count("\n") == 1


class TestRoundTrip:
    @given(safe_programs())
    @settings(max_examples=120, deadline=None)
    def test_parse_format_roundtrip(self, program):
        reparsed = parse_program(format_program(program))
        assert reparsed == program

    def test_roundtrip_fixture(self, ancestor):
        assert parse_program(format_program(ancestor)) == ancestor
