"""Unit tests for naming conventions and rewritten-program structures."""

import pytest

from repro.facts import Database, Relation
from repro.parallel import FragmentSpec, HashDiscriminator
from repro.parallel.naming import (
    channel_name,
    fragment_name,
    in_name,
    out_name,
    processor_tag,
    strip_decoration,
)


class TestNaming:
    def test_processor_tags(self):
        assert processor_tag(3) == "3"
        assert processor_tag((0, 1)) == "0_1"
        assert processor_tag(-1) == "m1"
        assert processor_tag("node-a") == "nodema"

    def test_in_out_names(self):
        assert in_name("anc") == "anc@in"
        assert in_name("anc", 2) == "anc@in@2"
        assert out_name("anc") == "anc@out"
        assert out_name("anc", (0, 1)) == "anc@out@0_1"

    def test_channel_name(self):
        assert channel_name("anc", 1, 2) == "anc@ch@1@2"

    def test_fragment_name(self):
        assert fragment_name("par", 3) == "par@frag@3"

    def test_strip_decoration(self):
        for decorated in ("anc@in@2", "anc@out", "anc@ch@1@2", "anc"):
            assert strip_decoration(decorated) == "anc"

    def test_decorated_names_unparseable(self):
        """The @ decoration cannot collide with user predicates."""
        from repro.datalog import parse_program
        from repro.errors import DatalogSyntaxError
        with pytest.raises(DatalogSyntaxError):
            parse_program("anc@in(X, Y) :- par(X, Y).")


class TestFragmentSpec:
    def _relation(self):
        return Relation("par", 2, [(i, i % 3) for i in range(9)])

    def test_shared_fragment_is_full_copy(self):
        spec = FragmentSpec(predicate="par", arity=2, local_name="par",
                            kind="shared")
        fragment = spec.local_fragment(self._relation(), 0)
        assert len(fragment) == 9
        assert fragment.name == "par"

    def test_hash_fragment_selects_owned_tuples(self):
        h = HashDiscriminator((0, 1, 2))
        spec = FragmentSpec(predicate="par", arity=2, local_name="par@frag@0",
                            kind="hash", positions=(1,), discriminator=h)
        fragments = [spec.local_fragment(self._relation(), proc)
                     for proc in (0, 1, 2)]
        assert sum(len(f) for f in fragments) == 9
        for proc, fragment in zip((0, 1, 2), fragments):
            assert all(h((fact[1],)) == proc for fact in fragment)

    def test_fragment_renames_relation(self):
        spec = FragmentSpec(predicate="par", arity=2, local_name="par@frag@1",
                            kind="shared")
        assert spec.local_fragment(self._relation(), 0).name == "par@frag@1"


class TestParallelProgramHelpers:
    def test_local_database_missing_relation_is_empty(self):
        from repro.parallel import example3_scheme
        from repro.workloads import ancestor_program

        parallel = example3_scheme(ancestor_program(), (0, 1))
        local = parallel.local_database(0, Database())
        names = local.names()
        assert any(name.startswith("par") for name in names)
        assert all(len(local.relation(name)) == 0 for name in names)

    def test_routes_for_filters_by_predicate(self):
        from repro.parallel import example3_scheme
        from repro.workloads import ancestor_program

        parallel = example3_scheme(ancestor_program(), (0, 1))
        processor = parallel.program_for(0)
        assert len(processor.routes_for("anc")) == 1
        assert processor.routes_for("par") == ()
