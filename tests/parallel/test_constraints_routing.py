"""Tests for hash constraints and tuple routing."""

import pytest

from repro.datalog import Atom, Constant, Substitution, Variable
from repro.errors import RoutingError
from repro.facts import ArbitraryFragmentation
from repro.parallel import (
    HashConstraint,
    HashDiscriminator,
    PartitionDiscriminator,
    Route,
    route_positions,
)

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestHashConstraint:
    def test_satisfied_at_exactly_one_target(self):
        h = HashDiscriminator((0, 1, 2))
        binding = Substitution({Y: Constant(7)})
        matches = [target for target in (0, 1, 2)
                   if HashConstraint(h, (Y,), target).satisfied(binding)]
        assert matches == [h((7,))]

    def test_variables_deduplicated(self):
        h = HashDiscriminator((0, 1))
        constraint = HashConstraint(h, (Y, Y, Z), 0)
        assert constraint.variables == (Y, Z)

    def test_sequence_order_matters_for_hash(self):
        h = HashDiscriminator((0, 1, 2, 3, 4, 5, 6, 7))
        binding = Substitution({Y: Constant(1), Z: Constant(2)})
        forward = HashConstraint(h, (Y, Z), h((1, 2))).satisfied(binding)
        assert forward

    def test_unbound_variable_raises(self):
        constraint = HashConstraint(HashDiscriminator((0,)), (Y,), 0)
        with pytest.raises(RoutingError):
            constraint.satisfied(Substitution.empty())

    def test_partition_discriminator_unknown_tuple_is_false(self):
        h = PartitionDiscriminator(ArbitraryFragmentation({}), (0,))
        constraint = HashConstraint(h, (Y,), 0)
        binding = Substitution({Y: Constant(9)})
        assert constraint.satisfied(binding) is False

    def test_str(self):
        constraint = HashConstraint(HashDiscriminator((0,)), (Y, Z), 0)
        assert str(constraint) == "h(Y, Z) = 0"


class TestRoutePositions:
    def test_all_present(self):
        assert route_positions((Y,), Atom("anc", (Z, Y))) == (1,)
        assert route_positions((Z, Y), Atom("anc", (Z, Y))) == (0, 1)

    def test_missing_variable_means_broadcast(self):
        assert route_positions((X, Z), Atom("anc", (Z, Y))) is None

    def test_empty_sequence(self):
        assert route_positions((), Atom("anc", (Z, Y))) == ()


class TestRoute:
    def _route(self, positions):
        return Route(predicate="anc", pattern=Atom("anc", (Z, Y)),
                     positions=positions,
                     discriminator=HashDiscriminator((0, 1, 2)))

    def test_point_to_point(self):
        route = self._route((0,))
        targets = route.targets((5, 6))
        assert targets == (HashDiscriminator((0, 1, 2))((5,)),)

    def test_broadcast(self):
        route = self._route(None)
        assert set(route.targets((5, 6))) == {0, 1, 2}
        assert route.is_broadcast()

    def test_arity_mismatch_no_targets(self):
        assert self._route((0,)).targets((5, 6, 7)) == ()

    def test_constant_pattern_filters(self):
        route = Route(predicate="p", pattern=Atom("p", (Constant(1), Y)),
                      positions=(1,),
                      discriminator=HashDiscriminator((0, 1)))
        assert route.targets((1, 5)) != ()
        assert route.targets((2, 5)) == ()

    def test_repeated_variable_pattern_filters(self):
        route = Route(predicate="p", pattern=Atom("p", (Y, Y)),
                      positions=(0,),
                      discriminator=HashDiscriminator((0, 1)))
        assert route.targets((3, 3)) != ()
        assert route.targets((3, 4)) == ()

    def test_partition_discriminator_unknown_tuple_no_targets(self):
        h = PartitionDiscriminator(ArbitraryFragmentation({(9,): 0}), (0, 1))
        route = Route(predicate="p", pattern=Atom("p", (Y,)),
                      positions=(0,), discriminator=h)
        assert route.targets((9,)) == (0,)
        assert route.targets((7,)) == ()
