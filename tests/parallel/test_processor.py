"""Unit tests for the per-processor runtime."""

import pytest

from repro.datalog import as_linear_sirup
from repro.facts import Database, pack_facts
from repro.parallel import HashDiscriminator, hash_scheme, rewrite_linear_sirup
from repro.parallel.processor import ProcessorRuntime
from repro.workloads import ancestor_program


def _runtime(processors=(0,), proc=0, edges=((1, 2), (2, 3), (3, 4))):
    program = ancestor_program()
    sirup = as_linear_sirup(program)
    h = HashDiscriminator(processors)
    parallel = rewrite_linear_sirup(
        program, processors,
        v_r=sirup.recursive_atom.variables(),
        v_e=sirup.exit_rule.head.variables(), h=h)
    database = Database.from_facts({"par": list(edges)})
    local = parallel.local_database(proc, database)
    return ProcessorRuntime(parallel.program_for(proc), local), parallel


class TestProcessorRuntime:
    def test_initialize_emits_hashed_subset(self):
        runtime, _parallel = _runtime(processors=(0,))
        emissions = runtime.initialize()
        # Single processor: all par tuples pass the h'(...) = 0 filter.
        assert sorted(fact for _pred, fact in emissions) == [
            (1, 2), (2, 3), (3, 4)]
        assert all(pred == "anc" for pred, _fact in emissions)

    def test_initialize_partitions_across_processors(self):
        first, _ = _runtime(processors=(0, 1), proc=0)
        second, _ = _runtime(processors=(0, 1), proc=1)
        got = ({fact for _p, fact in first.initialize()}
               | {fact for _p, fact in second.initialize()})
        assert got == {(1, 2), (2, 3), (3, 4)}
        overlap = ({fact for _p, fact in first.initialize()}
                   & {fact for _p, fact in second.initialize()})
        assert overlap == set()  # second initialize() emits nothing new

    def test_receive_packed_matches_plain_receive(self):
        plain, _ = _runtime(processors=(0,))
        packed, _ = _runtime(processors=(0,))
        plain.initialize()
        packed.initialize()
        batch = [(2, 3), (2, 4), (2, 3)]
        plain.receive("anc", batch)
        packed.receive_packed("anc", pack_facts(batch))
        assert packed.staged_size() == plain.staged_size() == 3
        assert packed.has_pending_input()
        assert sorted(packed.step()) == sorted(plain.step())
        assert packed.duplicates_dropped == plain.duplicates_dropped
        assert packed.received_total == plain.received_total == 3

    def test_export_state_decodes_packed_staged(self):
        runtime, _parallel = _runtime(processors=(0,))
        runtime.initialize()
        runtime.receive_packed("anc", pack_facts([(5, 6)] * 9))
        _ins, _outs, staged = runtime.export_state()
        assert staged["anc"] == [(5, 6)] * 9

    def test_step_without_input_is_idle(self):
        runtime, _parallel = _runtime()
        runtime.initialize()
        assert runtime.step() == []
        assert not runtime.has_pending_input()

    def test_step_fires_on_received_tuples(self):
        runtime, _parallel = _runtime(processors=(0,))
        runtime.initialize()
        runtime.receive("anc", [(2, 3)])
        emissions = runtime.step()
        assert ("anc", (1, 3)) in emissions

    def test_duplicate_receives_dropped(self):
        runtime, _parallel = _runtime(processors=(0,))
        runtime.initialize()
        runtime.receive("anc", [(2, 3), (2, 3)])
        runtime.step()
        assert runtime.duplicates_dropped == 1
        runtime.receive("anc", [(2, 3)])
        assert runtime.step() == []  # already known: idle round
        assert runtime.duplicates_dropped == 2

    def test_emissions_deduplicated_against_out(self):
        runtime, _parallel = _runtime(processors=(0,))
        emissions = runtime.initialize()
        runtime.receive("anc", [(1, 2)])  # would re-derive nothing new
        assert all(fact != (1, 2)
                   for _pred, fact in runtime.step())
        assert (1, 2) in runtime.output_relation("anc")
        assert len(emissions) == 3

    def test_remote_vs_local_receive_counters(self):
        runtime, _parallel = _runtime(processors=(0,))
        runtime.receive("anc", [(2, 3)], remote=True)
        runtime.receive("anc", [(3, 4)], remote=False)
        assert runtime.received_total == 2
        assert runtime.received_remote == 1

    def test_work_done_monotone(self):
        runtime, _parallel = _runtime(processors=(0,))
        before = runtime.work_done()
        runtime.initialize()
        after_init = runtime.work_done()
        runtime.receive("anc", [(2, 3)])
        runtime.step()
        assert before <= after_init <= runtime.work_done()

    def test_output_size(self):
        runtime, _parallel = _runtime(processors=(0,))
        runtime.initialize()
        assert runtime.output_size() == 3
