"""Tests for the Section 3/6 linear-sirup rewrites."""

import pytest

from repro.datalog import Variable, as_linear_sirup, parse_program
from repro.errors import RewriteError
from repro.parallel import (
    HashDiscriminator,
    LocalRetentionFamily,
    UniformFamily,
    rewrite_linear_family,
    rewrite_linear_sirup,
)
from repro.parallel.naming import in_name, out_name

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


@pytest.fixture
def sirup(ancestor):
    return as_linear_sirup(ancestor)


def _rewrite(sirup, processors=(0, 1, 2), v_r=(Y,), v_e=(Y,), **kwargs):
    h = HashDiscriminator(processors)
    return rewrite_linear_sirup(sirup, processors, v_r, v_e, h, **kwargs)


class TestRewriteLinear:
    def test_one_program_per_processor(self, sirup):
        program = _rewrite(sirup)
        assert set(program.programs) == {0, 1, 2}
        assert program.derived == ("anc",)

    def test_processing_rule_structure(self, sirup):
        program = _rewrite(sirup)
        processing = program.program_for(1).processing_rules[0]
        assert processing.head.predicate == out_name("anc")
        body_preds = [atom.predicate for atom in processing.body]
        assert in_name("anc") in body_preds
        assert len(processing.constraints) == 1
        assert processing.constraints[0].target == 1

    def test_init_rule_structure(self, sirup):
        program = _rewrite(sirup)
        init = program.program_for(2).init_rules[0]
        assert init.head.predicate == out_name("anc")
        assert init.constraints[0].target == 2

    def test_example1_choice_shares_base(self, sirup):
        # v(r) = <Y> does not occur in par(X, Z): par must be shared.
        program = _rewrite(sirup, v_r=(Y,), v_e=(Y,))
        assert program.fragmentation.requirements["par"] == "shared"
        shared_specs = [s for s in program.fragments if s.predicate == "par"]
        assert all(spec.kind == "shared" for spec in shared_specs)

    def test_example3_choice_fragments_base(self, sirup):
        # v(r) = <Z> occurs in par(X, Z): par is hash-fragmented.
        program = _rewrite(sirup, v_r=(Z,), v_e=(X,))
        assert program.fragmentation.requirements["par"] == "hash-partitioned"
        kinds = {spec.kind for spec in program.fragments
                 if spec.predicate == "par"}
        assert kinds == {"hash"}

    def test_fragments_partition_the_relation(self, sirup, tree_db):
        program = _rewrite(sirup, v_r=(Z,), v_e=(X,))
        total = len(tree_db.relation("par"))
        for spec in program.fragments:
            sizes = sum(
                len(spec.local_fragment(tree_db.relation("par"), proc))
                for proc in program.processors)
            assert sizes == total

    def test_replication_factor(self, sirup, tree_db):
        shared = _rewrite(sirup, v_r=(Y,), v_e=(Y,))
        fragmented = _rewrite(sirup, v_r=(Z,), v_e=(X,))
        assert shared.replication_factor(tree_db) == pytest.approx(3.0)
        # Exit fragment + recursion fragment: each a full partition.
        assert fragmented.replication_factor(tree_db) == pytest.approx(2.0)

    def test_route_point_to_point_when_vr_in_body_atom(self, sirup):
        program = _rewrite(sirup, v_r=(Y,), v_e=(Y,))
        (route,) = program.program_for(0).routes
        assert not route.is_broadcast()
        assert route.positions == (1,)

    def test_route_broadcast_when_vr_missing(self, sirup):
        program = _rewrite(sirup, v_r=(X, Z), v_e=(X, Y))
        (route,) = program.program_for(0).routes
        assert route.is_broadcast()

    def test_unknown_discriminating_variable_rejected(self, sirup):
        with pytest.raises(RewriteError):
            _rewrite(sirup, v_r=(Variable("Nope"),))

    def test_head_only_variable_rejected(self):
        # W appears in the head of the exit rule only... construct a
        # sirup where a variable is missing from the recursive body.
        program = parse_program("""
            p(X, Y) :- q(X, Y).
            p(X, Y) :- r(X, Z), p(Z, Y).
        """)
        sirup = as_linear_sirup(program)
        with pytest.raises(RewriteError):
            rewrite_linear_sirup(sirup, (0, 1), (Variable("W"),), (Y,),
                                 HashDiscriminator((0, 1)))

    def test_empty_processors_rejected(self, sirup):
        h = HashDiscriminator((0,))
        with pytest.raises(RewriteError):
            rewrite_linear_sirup(sirup, (), (Y,), (Y,), h)

    def test_duplicate_processors_rejected(self, sirup):
        with pytest.raises(RewriteError):
            _rewrite(sirup, processors=(0, 0))

    def test_union_program_is_valid_datalog(self, sirup):
        program = _rewrite(sirup, processors=(0, 1))
        union = program.union
        # init + processing + N sending + N receiving + pooling, per processor
        assert len(union.rules) == 2 * (1 + 1 + 2 + 2 + 1)

    def test_unknown_processor_lookup(self, sirup):
        program = _rewrite(sirup)
        with pytest.raises(RewriteError):
            program.program_for(99)


class TestRewriteFamily:
    def test_processing_unconstrained(self, sirup):
        base = HashDiscriminator((0, 1))
        family = LocalRetentionFamily(base, keep_fraction=0.5)
        program = rewrite_linear_family(sirup, (0, 1), v_e=(X, Y),
                                        family=family, h_prime=base)
        processing = program.program_for(0).processing_rules[0]
        assert processing.constraints == ()

    def test_bases_shared(self, sirup):
        base = HashDiscriminator((0, 1))
        program = rewrite_linear_family(
            sirup, (0, 1), v_e=(X, Y),
            family=UniformFamily(base), h_prime=base)
        assert program.fragmentation.requirements["par"] == "shared"

    def test_routes_resolved_per_sender(self, sirup):
        base = HashDiscriminator((0, 1))
        family = LocalRetentionFamily(base, keep_fraction=1.0)
        program = rewrite_linear_family(sirup, (0, 1), v_e=(X, Y),
                                        family=family, h_prime=base)
        route0 = program.program_for(0).routes[0]
        route1 = program.program_for(1).routes[0]
        assert route0.targets((4, 5)) == (0,)
        assert route1.targets((4, 5)) == (1,)

    def test_vr_must_be_within_recursive_atom(self, sirup):
        base = HashDiscriminator((0, 1))
        with pytest.raises(RewriteError):
            rewrite_linear_family(sirup, (0, 1), v_e=(X, Y),
                                  family=UniformFamily(base), h_prime=base,
                                  v_r=(X,))
