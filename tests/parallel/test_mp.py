"""Tests for the real multiprocessing executor."""

import pytest

from repro.engine import evaluate
from repro.parallel import (
    example1_scheme,
    example2_scheme,
    example3_scheme,
    hash_scheme,
    rewrite_general,
    wolfson_scheme,
)
from repro.parallel.mp import run_multiprocessing


@pytest.mark.mp
class TestMultiprocessing:
    def test_example3_matches_sequential(self, ancestor, tree_db):
        result = run_multiprocessing(
            example3_scheme(ancestor, (0, 1, 2)), tree_db, timeout=60)
        expected = evaluate(ancestor, tree_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())
        assert result.wall_seconds > 0

    def test_example1_no_data_messages(self, ancestor, chain_db):
        result = run_multiprocessing(
            example1_scheme(ancestor, (0, 1)), chain_db, timeout=60)
        expected = evaluate(ancestor, chain_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())
        assert result.metrics.total_sent() == 0

    def test_example2_broadcasts(self, ancestor, chain_db):
        result = run_multiprocessing(
            example2_scheme(ancestor, (0, 1, 2), chain_db), chain_db,
            timeout=60)
        expected = evaluate(ancestor, chain_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())
        assert result.metrics.total_sent() > 0

    def test_wolfson_redundant_but_correct(self, ancestor, dag_db):
        result = run_multiprocessing(
            wolfson_scheme(ancestor, (0, 1)), dag_db, timeout=60)
        expected = evaluate(ancestor, dag_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())

    def test_general_scheme_nonlinear(self, nonlinear_ancestor, tree_db):
        result = run_multiprocessing(
            rewrite_general(nonlinear_ancestor, (0, 1)), tree_db, timeout=60)
        expected = evaluate(nonlinear_ancestor, tree_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())

    def test_firings_match_simulator(self, ancestor, tree_db):
        from repro.parallel import run_parallel
        program = example3_scheme(ancestor, (0, 1, 2))
        mp_result = run_multiprocessing(program, tree_db, timeout=60)
        sim_result = run_parallel(program, tree_db)
        assert (mp_result.metrics.total_firings()
                == sim_result.metrics.total_firings())
        assert (mp_result.metrics.total_sent()
                == sim_result.metrics.total_sent())

    def test_single_processor(self, ancestor, chain_db):
        result = run_multiprocessing(hash_scheme(ancestor, (0,)), chain_db,
                                     timeout=60)
        expected = evaluate(ancestor, chain_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())

    def test_empty_database(self, ancestor):
        from repro.facts import Database
        result = run_multiprocessing(example3_scheme(ancestor, (0, 1)),
                                     Database(), timeout=60)
        assert len(result.relation("anc")) == 0

    def test_probe_overhead_reported(self, ancestor, chain_db):
        result = run_multiprocessing(example3_scheme(ancestor, (0, 1)),
                                     chain_db, timeout=60)
        assert result.metrics.control_messages >= 4  # >= two probe waves
