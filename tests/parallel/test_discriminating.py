"""Tests for discriminating functions."""

import pytest

from repro.errors import RoutingError
from repro.facts import ArbitraryFragmentation
from repro.parallel import (
    ConstantDiscriminator,
    HashDiscriminator,
    LinearDiscriminator,
    LocalRetentionFamily,
    ModuloDiscriminator,
    PartitionDiscriminator,
    TupleDiscriminator,
    UniformFamily,
    binary_g,
    stable_hash,
)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash(("a", 1)) == stable_hash(("a", 1))

    def test_salt_changes_value(self):
        assert stable_hash("x", salt=0) != stable_hash("x", salt=1)

    def test_binary_g_range(self):
        assert all(binary_g(value) in (0, 1) for value in range(100))


class TestHashDiscriminator:
    def test_maps_into_processor_set(self):
        h = HashDiscriminator(("a", "b", "c"))
        assert all(h((value,)) in ("a", "b", "c") for value in range(50))

    def test_deterministic(self):
        h = HashDiscriminator((0, 1, 2, 3))
        assert h((5, 6)) == h((5, 6))

    def test_roughly_uniform(self):
        h = HashDiscriminator(range(4))
        counts = {p: 0 for p in range(4)}
        for value in range(4000):
            counts[h((value,))] += 1
        assert all(700 < count < 1300 for count in counts.values())

    def test_empty_processors_rejected(self):
        with pytest.raises(RoutingError):
            HashDiscriminator(())


class TestModuloDiscriminator:
    def test_integer_sum(self):
        h = ModuloDiscriminator((0, 1, 2))
        assert h((4,)) == 1
        assert h((1, 1)) == 2

    def test_symmetric_under_permutation(self):
        h = ModuloDiscriminator(range(5))
        assert h((3, 7, 11)) == h((11, 3, 7))

    def test_non_integer_values(self):
        h = ModuloDiscriminator(range(3))
        assert h(("a", "b")) == h(("b", "a"))


class TestTupleDiscriminator:
    def test_processor_set_is_tuple_space(self):
        h = TupleDiscriminator(2)
        assert set(h.processors) == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_result_is_g_tuple(self):
        h = TupleDiscriminator(2)
        result = h(("a", "b"))
        assert result == (binary_g("a"), binary_g("b"))

    def test_wrong_length_rejected(self):
        with pytest.raises(RoutingError):
            TupleDiscriminator(2)(("a",))

    def test_compose_g(self):
        assert TupleDiscriminator(3).compose_g((1, 0, 1)) == (1, 0, 1)


class TestLinearDiscriminator:
    def test_range_is_exact(self):
        h = LinearDiscriminator((1, -1, 1))
        assert set(h.processors) == {-1, 0, 1, 2}

    def test_value_matches_paper_formula(self):
        h = LinearDiscriminator((1, -1, 1))
        expected = binary_g("a") - binary_g("b") + binary_g("c")
        assert h(("a", "b", "c")) == expected

    def test_modulus_folds_range(self):
        h = LinearDiscriminator((1, 1), modulus=2)
        assert set(h.processors) <= {0, 1}

    def test_compose_g(self):
        h = LinearDiscriminator((1, -1, 1))
        assert h.compose_g((1, 1, 0)) == 0
        assert h.compose_g((1, 0, 1)) == 2


class TestPartitionDiscriminator:
    def test_owner_matches_partition(self):
        partition = ArbitraryFragmentation({(1, 2): "a", (3, 4): "b"})
        h = PartitionDiscriminator(partition, ("a", "b"))
        assert h((1, 2)) == "a"
        assert h((3, 4)) == "b"

    def test_unknown_tuple_raises(self):
        h = PartitionDiscriminator(ArbitraryFragmentation({}), ("a",))
        with pytest.raises(RoutingError):
            h((9, 9))
        assert not h.contains((9, 9))


class TestConstantDiscriminator:
    def test_always_target(self):
        h = ConstantDiscriminator((0, 1, 2), target=1)
        assert all(h((value,)) == 1 for value in range(10))

    def test_target_must_be_processor(self):
        with pytest.raises(RoutingError):
            ConstantDiscriminator((0, 1), target=9)


class TestFamilies:
    def test_uniform_family(self):
        h = HashDiscriminator((0, 1))
        family = UniformFamily(h)
        assert family.member(0) is h
        assert family.member(1) is h
        assert family.is_uniform()

    def test_retention_zero_is_uniform(self):
        base = HashDiscriminator((0, 1))
        family = LocalRetentionFamily(base, keep_fraction=0.0)
        assert family.is_uniform()
        assert family.member(0) is base

    def test_retention_one_keeps_everything_local(self):
        base = HashDiscriminator((0, 1, 2))
        family = LocalRetentionFamily(base, keep_fraction=1.0)
        member = family.member(2)
        assert all(member((value,)) == 2 for value in range(20))

    def test_retention_fraction_roughly_respected(self):
        base = HashDiscriminator(range(4))
        family = LocalRetentionFamily(base, keep_fraction=0.5, salt=3)
        member = family.member(0)
        kept = sum(1 for value in range(2000) if member((value,)) == 0)
        # 50% retention plus ~25% of the remainder hashing home anyway.
        assert 1000 < kept < 1500

    def test_invalid_fraction_rejected(self):
        with pytest.raises(RoutingError):
            LocalRetentionFamily(HashDiscriminator((0,)), keep_fraction=1.5)
