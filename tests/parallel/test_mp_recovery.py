"""Checkpoint-based recovery against the real multiprocessing executor.

Extends ``test_mp_faults.py`` (which pins the ``fail`` and ``restart``
policies) to ``recovery="checkpoint"``: workers ship periodic snapshots
to the coordinator, a SIGKILLed worker is respawned *from its last
checkpoint*, survivors truncate their sent-logs at the acknowledged
watermarks and replay only the suffix.  The contract under test:

* exactness survives anywhere the kill lands (Theorem 1 under failure,
  now from a mid-run snapshot instead of the base fragment);
* total firings still equal an undisturbed sequential run — the
  restored counters plus post-restore work add up, so recovery is
  invisible in the gated cost counters;
* checkpoint recovery replays strictly fewer facts than
  restart-from-base on a bursty workload (the headline of
  docs/FAULT_TOLERANCE.md, gated numerically in the bench matrix);
* a kill landing *during* another worker's recovery (cascading
  failure) is survived and marked in the trace.
"""

import pytest

from repro.engine import evaluate
from repro.errors import ConfigurationError
from repro.facts.database import Database
from repro.obs import (
    CHECKPOINT,
    LOG_TRUNCATE,
    RESTORE,
    RUN_START,
    WORKER_DOWN,
    InMemorySink,
    Tracer,
)
from repro.parallel import (
    build_fault_plan,
    example2_scheme,
    example3_scheme,
    hash_scheme,
    wolfson_scheme,
)
from repro.parallel.mp import run_multiprocessing
from repro.parallel.mp.runner import default_ack_deadline


def _chain_db(length):
    return Database.from_facts(
        {"par": [(i, i + 1) for i in range(1, length + 1)]})


@pytest.mark.mp
@pytest.mark.faultinjection
class TestCheckpointRecovery:
    @pytest.mark.parametrize("kill_at", [1, 10, 25, 60])
    def test_exact_and_firings_identical_any_kill_point(
            self, ancestor, tree_db, kill_at):
        """Answers AND firings equal sequential wherever the kill lands.

        The firings half is the sharp edge: the restored worker resumes
        from checkpointed counters and dedups against checkpointed
        output, so restored-plus-new firings must equal an undisturbed
        run — re-deriving anything would show up here.
        """
        program = example3_scheme(ancestor, (0, 1, 2))
        plan = build_fault_plan([f"kill:1@{kill_at}"])
        result = run_multiprocessing(program, tree_db, faults=plan,
                                     recovery="checkpoint",
                                     checkpoint_interval=1, timeout=60)
        expected = evaluate(ancestor, tree_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())
        assert (result.metrics.total_firings()
                == expected.counters.total_firings())

    @pytest.mark.parametrize("scheme", ["example2", "hash", "wolfson"])
    def test_exact_across_schemes(self, ancestor, tree_db, scheme):
        if scheme == "example2":
            program = example2_scheme(ancestor, (0, 1, 2), tree_db)
        elif scheme == "hash":
            program = hash_scheme(ancestor, (0, 1, 2))
        else:
            program = wolfson_scheme(ancestor, (0, 1))
        from repro.parallel.naming import processor_tag
        victim = processor_tag(program.processors[-1])
        plan = build_fault_plan([f"kill:{victim}@8"])
        result = run_multiprocessing(program, tree_db, faults=plan,
                                     recovery="checkpoint",
                                     checkpoint_interval=1, timeout=60)
        expected = evaluate(ancestor, tree_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())

    def test_truncation_and_restore_happen(self, ancestor, tree_db):
        """A late kill with frequent checkpoints actually exercises the
        machinery: snapshots shipped, sent-logs truncated at the
        watermarks, and the respawn resumes from a checkpoint."""
        sink = InMemorySink()
        program = example3_scheme(ancestor, (0, 1, 2))
        plan = build_fault_plan(["kill:1@60"])
        result = run_multiprocessing(program, tree_db, faults=plan,
                                     recovery="checkpoint",
                                     checkpoint_interval=1,
                                     tracer=Tracer(sink), timeout=60)
        expected = evaluate(ancestor, tree_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())
        assert result.metrics.checkpoint_bytes > 0
        assert result.metrics.log_truncated > 0
        kinds = {event.kind for event in sink.events}
        assert CHECKPOINT in kinds
        assert LOG_TRUNCATE in kinds
        assert RESTORE in kinds

    def test_replays_fewer_than_restart(self, ancestor):
        """The headline claim, as a strict inequality on one seeded
        run pair: same chain workload, same late kill, checkpoint
        recovery replays strictly fewer facts than restart-from-base
        — with answers and firings identical to sequential for both.
        (The bench matrix gates the same pair numerically across
        commits; see mp-recovery-* in repro/bench/scenarios.py.)"""
        database = _chain_db(96)
        program = example3_scheme(ancestor, (0, 1, 2))
        expected = evaluate(ancestor, database)
        replayed = {}
        for recovery in ("restart", "checkpoint"):
            plan = build_fault_plan(["kill:1@400"])
            result = run_multiprocessing(program, database, faults=plan,
                                         recovery=recovery,
                                         checkpoint_interval=1, timeout=120)
            assert (result.relation("anc").as_set()
                    == expected.relation("anc").as_set())
            assert (result.metrics.total_firings()
                    == expected.counters.total_firings())
            assert result.restarts == 1
            replayed[recovery] = result.metrics.recovery_replayed_facts
        assert replayed["checkpoint"] < replayed["restart"], replayed

    def test_drop_faults_healed_by_retry(self, ancestor, tree_db):
        """Dropped sends are re-driven by the unsent-retry path at probe
        time — exactness despite a lossy channel, visible in the
        ``retried`` counter."""
        program = example3_scheme(ancestor, (0, 1, 2))
        plan = build_fault_plan(["drop:0.3"], seed=11)
        result = run_multiprocessing(program, tree_db, faults=plan,
                                     recovery="checkpoint",
                                     checkpoint_interval=2, timeout=60)
        expected = evaluate(ancestor, tree_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())
        assert result.metrics.retried > 0

    def test_kill_plus_drop_compose(self, ancestor, tree_db):
        program = example3_scheme(ancestor, (0, 1, 2))
        plan = build_fault_plan(["kill:1@10", "drop:0.2"], seed=4)
        result = run_multiprocessing(program, tree_db, faults=plan,
                                     recovery="checkpoint",
                                     checkpoint_interval=1, timeout=60)
        expected = evaluate(ancestor, tree_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())


@pytest.mark.mp
@pytest.mark.faultinjection
class TestCascadingFailure:
    def test_kill_during_recovery_is_survived_and_marked(self, ancestor,
                                                         tree_db):
        """A second death landing inside the first recovery window is a
        *cascading* failure: survived, recovered exactly, and marked
        ``cascading=True`` on its worker_down trace event.

        The overlap is timing-dependent (the second victim races the
        first recovery's probe wave), so the test retries a bounded
        number of times — every attempt must be exact with both
        restarts; at least one must observe the cascading mark.
        """
        program = example3_scheme(ancestor, (0, 1, 2))
        expected = evaluate(ancestor, tree_db).relation("anc").as_set()
        saw_cascading = False
        for _ in range(4):
            sink = InMemorySink()
            plan = build_fault_plan(["kill:0@3", "kill:2@6"])
            result = run_multiprocessing(program, tree_db, faults=plan,
                                         recovery="checkpoint",
                                         checkpoint_interval=1,
                                         tracer=Tracer(sink), timeout=60)
            assert result.relation("anc").as_set() == expected
            assert result.restarts == 2
            downs = [event for event in sink.events
                     if event.kind == WORKER_DOWN]
            assert all("cascading" in event.data for event in downs)
            if any(event.data["cascading"] for event in downs):
                saw_cascading = True
                break
        assert saw_cascading, "no cascading death observed in 4 attempts"


@pytest.mark.mp
@pytest.mark.faultinjection
class TestRecoveryTracing:
    def test_report_renders_checkpoint_lifecycle(self, ancestor, tree_db):
        from repro.obs.report import TraceReport
        sink = InMemorySink()
        program = example3_scheme(ancestor, (0, 1, 2))
        plan = build_fault_plan(["kill:1@60"])
        run_multiprocessing(program, tree_db, faults=plan,
                            recovery="checkpoint", checkpoint_interval=1,
                            tracer=Tracer(sink), timeout=60)
        report = TraceReport(sink.events)
        text = report.render()
        assert "failures and recovery:" in text
        assert "CHECKPT" in text
        assert "RESTORE" in text
        assert "TRUNCATE" in text
        summary = report.summary()
        assert summary["checkpoints"] > 0
        assert summary["restores"] == 1
        assert summary["log_truncated"] > 0

    def test_run_start_logs_policy_and_derived_deadline(self, ancestor,
                                                        chain_db):
        """Satellite: the derived ack deadline is visible at startup."""
        sink = InMemorySink()
        program = example3_scheme(ancestor, (0, 1))
        run_multiprocessing(program, chain_db, recovery="checkpoint",
                            tracer=Tracer(sink), timeout=60)
        starts = [event for event in sink.events
                  if event.kind == RUN_START]
        assert len(starts) == 1
        data = starts[0].data
        assert data["recovery"] == "checkpoint"
        assert data["ack_deadline"] == pytest.approx(
            default_ack_deadline(2), abs=1e-6)


class TestKnobValidation:
    def test_default_ack_deadline_scales_with_processors(self):
        assert default_ack_deadline(2) == pytest.approx(16.0)
        assert default_ack_deadline(8) == pytest.approx(19.0)
        # SSP lets workers run ahead by `staleness` bursts, so the
        # deadline stretches with the bound.
        assert (default_ack_deadline(4, sync="ssp", staleness=4)
                > default_ack_deadline(4))

    def test_unknown_recovery_policy_rejected(self, ancestor, chain_db):
        program = example3_scheme(ancestor, (0, 1))
        with pytest.raises(ConfigurationError, match="recovery"):
            run_multiprocessing(program, chain_db, recovery="bogus")

    def test_negative_max_restarts_rejected(self, ancestor, chain_db):
        program = example3_scheme(ancestor, (0, 1))
        with pytest.raises(ConfigurationError, match="max_restarts"):
            run_multiprocessing(program, chain_db, recovery="restart",
                                max_restarts=-1)

    def test_bad_checkpoint_interval_rejected(self, ancestor, chain_db):
        program = example3_scheme(ancestor, (0, 1))
        with pytest.raises(ConfigurationError, match="checkpoint_interval"):
            run_multiprocessing(program, chain_db, recovery="checkpoint",
                                checkpoint_interval=0)

    def test_bad_ack_deadline_rejected(self, ancestor, chain_db):
        program = example3_scheme(ancestor, (0, 1))
        with pytest.raises(ConfigurationError, match="ack deadline"):
            run_multiprocessing(program, chain_db, ack_timeout=0.0)
