"""Fault injection against the round-synchronous simulator.

The simulator and the mp executor consume the same
:class:`~repro.parallel.faults.FaultPlan`, so Theorem-1-under-failure
can be exercised cheaply here (no process spawns) across many kill
points and schemes, including a Hypothesis property test.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import evaluate
from repro.errors import ExecutionError
from repro.facts import Database
from repro.parallel import (
    build_fault_plan,
    example2_scheme,
    example3_scheme,
    hash_scheme,
    run_parallel,
    wolfson_scheme,
)
from repro.workloads import ancestor_program, random_tree_edges


@pytest.mark.faultinjection
class TestSimulatorKills:
    def test_fail_policy_raises_naming_processor(self, ancestor, tree_db):
        program = example3_scheme(ancestor, (0, 1, 2))
        plan = build_fault_plan(["kill:1@3"])
        with pytest.raises(ExecutionError) as excinfo:
            run_parallel(program, tree_db, faults=plan, recovery="fail")
        assert "'1'" in str(excinfo.value)
        assert "injected" in str(excinfo.value)

    def test_restart_matches_sequential(self, ancestor, tree_db):
        program = example3_scheme(ancestor, (0, 1, 2))
        plan = build_fault_plan(["kill:1@10"])
        result = run_parallel(program, tree_db, faults=plan,
                              recovery="restart")
        expected = evaluate(ancestor, tree_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())
        assert result.metrics.restarts == 1

    def test_restart_counts_replayed_tuples(self, ancestor, tree_db):
        program = example3_scheme(ancestor, (0, 1, 2))
        plan = build_fault_plan(["kill:1@40"])
        result = run_parallel(program, tree_db, faults=plan,
                              recovery="restart")
        assert sum(result.metrics.replayed.values()) > 0
        assert result.metrics.summary()["restarts"] == 1

    def test_unknown_kill_tag_rejected(self, ancestor, tree_db):
        program = example3_scheme(ancestor, (0, 1))
        plan = build_fault_plan(["kill:nosuch@3"])
        with pytest.raises(ExecutionError):
            run_parallel(program, tree_db, faults=plan)

    def test_invalid_recovery_policy_rejected(self, ancestor, tree_db):
        program = example3_scheme(ancestor, (0, 1))
        with pytest.raises(ExecutionError):
            run_parallel(program, tree_db, recovery="shrug")


@pytest.mark.faultinjection
class TestSimulatorChannelFaults:
    def test_duplicates_are_harmless(self, ancestor, tree_db):
        program = example3_scheme(ancestor, (0, 1, 2))
        result = run_parallel(program, tree_db,
                              faults=build_fault_plan(["dup:0.5"], seed=3))
        expected = evaluate(ancestor, tree_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())

    def test_certain_duplication_terminates(self, ancestor, chain_db):
        """dup:1.0 must still quiesce (copies delivered, not re-rolled)."""
        program = example3_scheme(ancestor, (0, 1, 2))
        result = run_parallel(program, chain_db,
                              faults=build_fault_plan(["dup:1.0"]))
        expected = evaluate(ancestor, chain_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())

    def test_delays_are_harmless(self, ancestor, tree_db):
        program = example3_scheme(ancestor, (0, 1, 2))
        result = run_parallel(program, tree_db,
                              faults=build_fault_plan(["delay:0.4"], seed=5))
        expected = evaluate(ancestor, tree_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())

    def test_drops_lose_answers(self, ancestor, tree_db):
        """Dropping tuples demonstrates why the paper assumes reliable
        channels: the result is a strict subset of the true answer."""
        program = example3_scheme(ancestor, (0, 1, 2))
        result = run_parallel(program, tree_db,
                              faults=build_fault_plan(["drop:0.5"], seed=1))
        expected = evaluate(ancestor, tree_db)
        got = result.relation("anc").as_set()
        want = expected.relation("anc").as_set()
        assert got <= want
        assert got < want

    def test_same_seed_same_result(self, ancestor, tree_db):
        program = example3_scheme(ancestor, (0, 1, 2))
        first = run_parallel(program, tree_db,
                             faults=build_fault_plan(["drop:0.3"], seed=9))
        second = run_parallel(program, tree_db,
                              faults=build_fault_plan(["drop:0.3"], seed=9))
        assert (first.relation("anc").as_set()
                == second.relation("anc").as_set())
        assert first.metrics.rounds == second.metrics.rounds


def _scheme(name, program, database):
    if name == "example2":
        return example2_scheme(program, (0, 1, 2), database)
    if name == "example3":
        return example3_scheme(program, (0, 1, 2))
    if name == "hash":
        return hash_scheme(program, (0, 1, 2))
    return wolfson_scheme(program, (0, 1))


@pytest.mark.faultinjection
@settings(max_examples=25, deadline=None)
@given(scheme=st.sampled_from(["example2", "example3", "hash", "wolfson"]),
       victim=st.integers(min_value=0, max_value=1),
       kill_at=st.integers(min_value=0, max_value=80),
       tree_seed=st.integers(min_value=0, max_value=5))
def test_theorem1_under_single_kill_property(scheme, victim, kill_at,
                                             tree_seed):
    """Property: for any scheme, victim, kill point and input tree, a
    single injected kill with restart recovery yields exactly the
    sequential least model."""
    program = ancestor_program()
    database = Database.from_facts(
        {"par": random_tree_edges(40, seed=tree_seed)})
    parallel_program = _scheme(scheme, program, database)
    from repro.parallel.naming import processor_tag
    tag = processor_tag(parallel_program.processors[victim])
    plan = build_fault_plan([f"kill:{tag}@{kill_at}"])
    result = run_parallel(parallel_program, database, faults=plan,
                          recovery="restart")
    expected = evaluate(program, database)
    assert (result.relation("anc").as_set()
            == expected.relation("anc").as_set())
