"""Tests for multiprocessing internals: protocol, stats, crash handling."""

import dataclasses

import pytest

from repro.errors import ExecutionError
from repro.parallel import example3_scheme
from repro.parallel.mp import WorkerStats, run_multiprocessing
from repro.workloads import ancestor_program


class TestWorkerStats:
    def test_total_sent(self):
        stats = WorkerStats()
        stats.sent_by_target = {1: 5, 2: 3}
        assert stats.total_sent() == 8

    def test_defaults(self):
        stats = WorkerStats()
        assert stats.firings == 0
        assert stats.received == 0
        assert stats.total_sent() == 0


@pytest.mark.mp
class TestCrashHandling:
    def test_worker_crash_surfaces_as_execution_error(self, chain_db):
        from repro.datalog import Atom, Rule, Variable
        from repro.parallel.naming import out_name

        parallel = example3_scheme(ancestor_program(), (0, 1))
        # Sabotage processor 1: its init rule reads a relation that no
        # fragment spec provides, so the worker crashes at start-up.
        X, Y = Variable("X"), Variable("Y")
        broken_rule = Rule(Atom(out_name("anc"), (X, Y)),
                           (Atom("nowhere", (X, Y)),))
        victim = parallel.programs[1]
        parallel.programs[1] = dataclasses.replace(
            victim, init_rules=(broken_rule,))
        with pytest.raises(ExecutionError) as info:
            run_multiprocessing(parallel, chain_db, timeout=30)
        assert "crashed" in str(info.value)

    def test_timeout_raises(self, chain_db):
        parallel = example3_scheme(ancestor_program(), (0, 1))
        with pytest.raises(ExecutionError):
            run_multiprocessing(parallel, chain_db, timeout=0.000001)
