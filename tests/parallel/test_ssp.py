"""Stale-synchronous execution on the simulated cluster.

Theorem 1 does not mention barriers: the discriminating-function
argument only needs every tuple to eventually reach its owner, so the
answer under ``sync="ssp"`` must equal the barriered answer and the
sequential least model for *any* staleness bound — including when
composed with delay injection, channel faults and kill/restart
recovery.  The tests here pin that, plus the two things SSP is *for*:
the staleness bound is actually enforced (a slow worker throttles its
peers instead of watching them run away) and skewed workloads see
higher worker utilisation than under BSP.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import evaluate
from repro.errors import ExecutionError
from repro.facts import Database
from repro.parallel import (
    build_fault_plan,
    example2_scheme,
    example3_scheme,
    hash_scheme,
    rewrite_general,
    run_parallel,
    wolfson_scheme,
)
from repro.workloads import ancestor_program, make_workload, random_tree_edges


def _skewed(size=60, seed=3, processors=4):
    workload = make_workload("skewed", size, seed=seed)
    program = hash_scheme(workload.program, tuple(range(processors)))
    return workload, program


class TestSSPValidation:
    def test_unknown_sync_rejected(self, ancestor, chain_db):
        program = example3_scheme(ancestor, (0, 1))
        with pytest.raises(ExecutionError, match="unknown sync mode"):
            run_parallel(program, chain_db, sync="async")

    def test_zero_staleness_rejected(self, ancestor, chain_db):
        program = example3_scheme(ancestor, (0, 1))
        with pytest.raises(ExecutionError, match="staleness >= 1"):
            run_parallel(program, chain_db, sync="ssp", staleness=0)

    def test_safra_requires_bsp(self, ancestor, chain_db):
        program = example3_scheme(ancestor, (0, 1))
        with pytest.raises(ExecutionError, match="barriered rounds"):
            run_parallel(program, chain_db, sync="ssp",
                         detect_termination=True)

    def test_capacity_requires_ssp(self, ancestor, chain_db):
        program = example3_scheme(ancestor, (0, 1))
        with pytest.raises(ExecutionError, match="capacity"):
            run_parallel(program, chain_db, capacity={"0": 0.5})

    def test_capacity_unknown_tag_rejected(self, ancestor, chain_db):
        program = example3_scheme(ancestor, (0, 1))
        with pytest.raises(ExecutionError, match="unknown processor"):
            run_parallel(program, chain_db, sync="ssp",
                         capacity={"nosuch": 0.5})

    def test_capacity_must_be_positive(self, ancestor, chain_db):
        program = example3_scheme(ancestor, (0, 1))
        with pytest.raises(ExecutionError, match="positive"):
            run_parallel(program, chain_db, sync="ssp",
                         capacity={"0": 0.0})


class TestSSPAnswerEquality:
    def test_matches_sequential_on_chain(self, ancestor, chain_db):
        program = example3_scheme(ancestor, (0, 1, 2))
        result = run_parallel(program, chain_db, sync="ssp", staleness=2)
        expected = evaluate(ancestor, chain_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())

    def test_matches_bsp_firings_on_dag(self, ancestor, dag_db):
        program = hash_scheme(ancestor, (0, 1, 2, 3))
        bsp = run_parallel(program, dag_db)
        ssp = run_parallel(program, dag_db, sync="ssp", staleness=3)
        assert (ssp.relation("anc").as_set()
                == bsp.relation("anc").as_set())
        # Non-redundant derivations: staleness moves firings in time,
        # never in number.
        assert ssp.metrics.total_firings() == bsp.metrics.total_firings()

    def test_deterministic(self, ancestor, dag_db):
        program = example3_scheme(ancestor, (0, 1, 2))
        first = run_parallel(program, dag_db, sync="ssp", staleness=2)
        second = run_parallel(program, dag_db, sync="ssp", staleness=2)
        assert first.metrics.summary() == second.metrics.summary()

    def test_single_processor_ssp(self, ancestor, chain_db):
        result = run_parallel(hash_scheme(ancestor, (0,)), chain_db,
                              sync="ssp", staleness=1)
        expected = evaluate(ancestor, chain_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())

    def test_empty_database(self, ancestor):
        result = run_parallel(example3_scheme(ancestor, (0, 1)), Database(),
                              sync="ssp", staleness=2)
        assert len(result.relation("anc")) == 0

    def test_metrics_report_ssp_mode(self, ancestor, chain_db):
        program = example3_scheme(ancestor, (0, 1))
        result = run_parallel(program, chain_db, sync="ssp", staleness=3)
        summary = result.metrics.summary()
        assert summary["sync"] == "ssp(3)"
        assert result.metrics.ticks > 0
        bsp = run_parallel(program, chain_db)
        assert bsp.metrics.summary()["sync"] == "bsp"


class TestStalenessEnforcement:
    """A slowed worker must throttle its peers, not watch them run away."""

    @pytest.mark.parametrize("staleness", [1, 2, 3])
    def test_bound_holds_with_slow_worker(self, staleness):
        workload, program = _skewed()
        result = run_parallel(program, workload.database, sync="ssp",
                              staleness=staleness, capacity={"0": 0.25})
        metrics = result.metrics
        assert metrics.max_staleness_lag <= staleness
        # The bound must actually bite: fast peers spend time throttled.
        assert metrics.total_stalled() > 0
        expected = evaluate(workload.program, workload.database)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())

    def test_larger_bound_stalls_no_more(self):
        """Relaxing the bound can only reduce time spent throttled."""
        workload, program = _skewed()
        tight = run_parallel(program, workload.database, sync="ssp",
                             staleness=1, capacity={"0": 0.25})
        loose = run_parallel(program, workload.database, sync="ssp",
                             staleness=8, capacity={"0": 0.25})
        assert (loose.metrics.total_stalled()
                <= tight.metrics.total_stalled())


class TestSkewedUtilisation:
    """The acceptance scenario: power-law skew under hash partitioning.

    Hub nodes concentrate firings on one processor; under BSP its peers
    idle at every barrier, under SSP they run ahead within the bound.
    Pinned on the seeded workload the bench matrix measures (T11)."""

    def test_ssp_beats_bsp_utilisation(self):
        workload, program = _skewed()
        bsp = run_parallel(program, workload.database)
        ssp = run_parallel(program, workload.database, sync="ssp",
                           staleness=4)
        assert (ssp.relation("anc").as_set()
                == bsp.relation("anc").as_set())
        assert ssp.metrics.total_firings() == bsp.metrics.total_firings()
        # Measured on this seed: 0.853 (bsp) vs 0.944 (ssp, s=4).
        assert bsp.metrics.mean_utilisation() < 0.87
        assert ssp.metrics.mean_utilisation() > 0.93
        assert ssp.metrics.ticks <= bsp.metrics.ticks

    def test_bsp_busy_idle_accounting_consistent(self):
        workload, program = _skewed()
        result = run_parallel(program, workload.database)
        metrics = result.metrics
        # busy + idle partitions each round's peak across processors.
        for proc in metrics.processors:
            assert metrics.busy.get(proc, 0) >= 0
            assert metrics.idle.get(proc, 0) >= 0
        assert sum(metrics.busy.values()) > 0
        assert 0.0 < metrics.mean_utilisation() <= 1.0


def _scheme(name, program, database, processors):
    if name == "example2":
        return example2_scheme(program, processors, database)
    if name == "example3":
        return example3_scheme(program, processors)
    if name == "hash":
        return hash_scheme(program, processors)
    if name == "general":
        return rewrite_general(program, processors)
    return wolfson_scheme(program, processors[:2])


@settings(max_examples=30, deadline=None)
@given(scheme=st.sampled_from(["example2", "example3", "hash", "general",
                               "wolfson"]),
       staleness=st.sampled_from([1, 2, 3, 8]),
       count=st.integers(2, 4),
       tree_seed=st.integers(0, 5))
def test_theorem1_holds_under_ssp_property(scheme, staleness, count,
                                           tree_seed):
    """Property: any scheme x staleness bound x input yields exactly the
    sequential least model under stale-synchronous execution."""
    program = ancestor_program()
    database = Database.from_facts(
        {"par": random_tree_edges(30, seed=tree_seed)})
    parallel_program = _scheme(scheme, program, database,
                               tuple(range(count)))
    result = run_parallel(parallel_program, database, sync="ssp",
                          staleness=staleness)
    expected = evaluate(program, database)
    assert (result.relation("anc").as_set()
            == expected.relation("anc").as_set())
    assert result.metrics.max_staleness_lag <= staleness


@pytest.mark.faultinjection
@settings(max_examples=20, deadline=None)
@given(staleness=st.sampled_from([1, 2, 4]),
       kill_at=st.integers(0, 60),
       victim=st.integers(0, 2),
       tree_seed=st.integers(0, 4))
def test_ssp_exact_under_kill_restart_property(staleness, kill_at, victim,
                                               tree_seed):
    """Property: SSP composed with a kill + restart still yields the
    exact answer — replay and clock reset are sound under staleness."""
    program = ancestor_program()
    database = Database.from_facts(
        {"par": random_tree_edges(35, seed=tree_seed)})
    parallel_program = hash_scheme(program, (0, 1, 2))
    plan = build_fault_plan([f"kill:{victim}@{kill_at}"])
    result = run_parallel(parallel_program, database, sync="ssp",
                          staleness=staleness, faults=plan,
                          recovery="restart")
    expected = evaluate(program, database)
    assert (result.relation("anc").as_set()
            == expected.relation("anc").as_set())


@pytest.mark.faultinjection
class TestSSPChannelFaults:
    def test_duplicates_are_harmless(self, ancestor, tree_db):
        program = example3_scheme(ancestor, (0, 1, 2))
        result = run_parallel(program, tree_db, sync="ssp", staleness=2,
                              faults=build_fault_plan(["dup:0.5"], seed=3))
        expected = evaluate(ancestor, tree_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())

    def test_delays_are_harmless(self, ancestor, tree_db):
        program = example3_scheme(ancestor, (0, 1, 2))
        result = run_parallel(program, tree_db, sync="ssp", staleness=2,
                              faults=build_fault_plan(["delay:0.4"], seed=5))
        expected = evaluate(ancestor, tree_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())

    def test_drops_lose_answers(self, ancestor, tree_db):
        program = example3_scheme(ancestor, (0, 1, 2))
        result = run_parallel(program, tree_db, sync="ssp", staleness=2,
                              faults=build_fault_plan(["drop:0.5"], seed=1))
        expected = evaluate(ancestor, tree_db)
        got = result.relation("anc").as_set()
        want = expected.relation("anc").as_set()
        assert got <= want
        assert got < want

    def test_delay_injection_composes(self, ancestor, dag_db):
        program = hash_scheme(ancestor, (0, 1, 2))
        result = run_parallel(program, dag_db, sync="ssp", staleness=3,
                              delay_probability=0.4, seed=11)
        expected = evaluate(ancestor, dag_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())
