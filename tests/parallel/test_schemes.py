"""Tests for the named Section 4 / Section 6 schemes."""

import pytest

from repro.datalog import parse_program
from repro.engine import evaluate
from repro.errors import RewriteError
from repro.facts import ArbitraryFragmentation
from repro.parallel import (
    example1_scheme,
    example2_scheme,
    example3_scheme,
    hash_scheme,
    position_scheme,
    run_parallel,
    tradeoff_scheme,
    wolfson_scheme,
)
from repro.workloads import chain3_program

PROCESSORS = (0, 1, 2, 3)


def _check(program, parallel_program, database):
    result = run_parallel(parallel_program, database)
    expected = evaluate(program, database)
    predicate = parallel_program.derived[0]
    assert (result.relation(predicate).as_set()
            == expected.relation(predicate).as_set())
    return result


class TestExample1:
    def test_zero_communication(self, ancestor, dag_db):
        result = _check(ancestor, example1_scheme(ancestor, PROCESSORS),
                        dag_db)
        assert result.metrics.total_sent() == 0
        assert result.metrics.used_channels() == set()

    def test_base_relation_shared(self, ancestor):
        program = example1_scheme(ancestor, PROCESSORS)
        assert program.fragmentation.requirements["par"] == "shared"

    def test_left_linear_variant_also_communication_free(self, dag_db):
        program_text = parse_program("""
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- anc(X, Z), par(Z, Y).
        """)
        result = _check(program_text,
                        example1_scheme(program_text, PROCESSORS), dag_db)
        assert result.metrics.total_sent() == 0

    def test_acyclic_dataflow_rejected(self):
        with pytest.raises(RewriteError):
            example1_scheme(chain3_program(), PROCESSORS)


class TestExample2:
    def test_arbitrary_partition_and_broadcast(self, ancestor, dag_db):
        program = example2_scheme(ancestor, PROCESSORS, dag_db)
        result = _check(ancestor, program, dag_db)
        assert (program.fragmentation.requirements["par"]
                == "arbitrary-partition")
        # Every transmitted tuple is broadcast to all other processors.
        assert result.metrics.broadcast_tuples > 0
        assert result.metrics.total_sent() == (
            result.metrics.broadcast_tuples * (len(PROCESSORS) - 1))

    def test_respects_explicit_partition(self, ancestor, chain_db):
        facts = sorted(chain_db.relation("par"))
        partition = ArbitraryFragmentation(
            {fact: PROCESSORS[index % 2] for index, fact in enumerate(facts)})
        program = example2_scheme(ancestor, PROCESSORS, chain_db,
                                  partition=partition)
        _check(ancestor, program, chain_db)

    def test_replication_factor_is_one(self, ancestor, dag_db):
        program = example2_scheme(ancestor, PROCESSORS, dag_db)
        assert program.replication_factor(dag_db) == pytest.approx(1.0)

    def test_needs_single_base_atom(self, sg_program, sg_db):
        with pytest.raises(RewriteError):
            example2_scheme(sg_program, PROCESSORS, sg_db)

    def test_missing_relation_rejected(self, ancestor):
        from repro.facts import Database
        with pytest.raises(RewriteError):
            example2_scheme(ancestor, PROCESSORS, Database())


class TestExample3:
    def test_point_to_point_and_disjoint_fragments(self, ancestor, dag_db):
        program = example3_scheme(ancestor, PROCESSORS)
        result = _check(ancestor, program, dag_db)
        assert result.metrics.broadcast_tuples == 0
        assert program.fragmentation.requirements["par"] == "hash-partitioned"
        assert result.metrics.total_sent() > 0

    def test_communication_between_extremes(self, ancestor, dag_db):
        ex2 = _check(ancestor, example2_scheme(ancestor, PROCESSORS, dag_db),
                     dag_db)
        ex3 = _check(ancestor, example3_scheme(ancestor, PROCESSORS), dag_db)
        assert 0 < ex3.metrics.total_sent() < ex2.metrics.total_sent()

    def test_explicit_position(self, ancestor, chain_db):
        program = example3_scheme(ancestor, PROCESSORS, position=1)
        _check(ancestor, program, chain_db)

    def test_no_base_variable_rejected(self):
        program_text = parse_program("""
            p(X, Y) :- q(X, Y).
            p(X, Y) :- p(Y, X), r(W, W).
        """)
        with pytest.raises(RewriteError):
            example3_scheme(program_text, PROCESSORS)


class TestPositionScheme:
    def test_out_of_range_position(self, ancestor):
        with pytest.raises(RewriteError):
            position_scheme(ancestor, PROCESSORS, (3,))

    def test_chain3_position_scheme_correct(self, chain3):
        from repro.facts import Database
        database = Database.from_facts({
            "s": [(1, 2, 3), (2, 3, 4)],
            "q": [(0, 4), (1, 5), (9, 3)],
        })
        program = position_scheme(chain3, PROCESSORS, (2,))
        _check(chain3, program, database)


class TestWolfsonAndTradeoff:
    def test_wolfson_zero_communication_but_redundant(self, ancestor, dag_db):
        result = _check(ancestor, wolfson_scheme(ancestor, PROCESSORS),
                        dag_db)
        sequential = evaluate(ancestor, dag_db)
        assert result.metrics.total_sent() == 0
        assert result.metrics.redundancy_vs(
            sequential.counters.total_firings()) > 0

    def test_tradeoff_zero_matches_section3(self, ancestor, dag_db):
        result = _check(ancestor, tradeoff_scheme(ancestor, PROCESSORS, 0.0),
                        dag_db)
        sequential = evaluate(ancestor, dag_db)
        assert result.metrics.redundancy_vs(
            sequential.counters.total_firings()) == 0

    def test_communication_decreases_with_retention(self, ancestor, dag_db):
        sent = []
        for fraction in (0.0, 0.5, 1.0):
            program = tradeoff_scheme(ancestor, PROCESSORS, fraction)
            result = run_parallel(program, dag_db)
            sent.append(result.metrics.total_sent())
        assert sent[0] > sent[1] > sent[2] == 0

    def test_hash_scheme_non_redundant(self, ancestor, dag_db):
        result = _check(ancestor, hash_scheme(ancestor, PROCESSORS), dag_db)
        sequential = evaluate(ancestor, dag_db)
        assert result.metrics.redundancy_vs(
            sequential.counters.total_firings()) == 0
