"""Round-trip properties of the worker checkpoint wire format.

``encode_checkpoint`` / ``decode_checkpoint`` must be exact inverses on
:class:`~repro.parallel.mp.checkpoint.WorkerCheckpoint` — the restored
worker's dedup sets, counters and (crucially) the fact → stamp
association inside the sent-log all come straight out of the decoder,
so any loss here silently corrupts recovery.  The encoding leans on the
packed column format, which kicks in only for batches of
``PACK_MIN_FACTS`` or more; the strategies below deliberately straddle
that threshold so both the packed and the plain path are property
tested, under both fact backends.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.facts import set_fact_backend
from repro.facts.packing import PACK_MIN_FACTS, is_packed
from repro.parallel.mp.checkpoint import (
    CHECKPOINT_VERSION,
    WorkerCheckpoint,
    approx_checkpoint_bytes,
    decode_checkpoint,
    encode_checkpoint,
)

# Values that survive a fact tuple: ints (including beyond int64, which
# forces the non-int column fallback), strings, and None.
_values = st.one_of(
    st.integers(-2 ** 70, 2 ** 70),
    st.text(max_size=6),
    st.none(),
)


def _fact_lists(min_size=0, max_size=PACK_MIN_FACTS + 4):
    """Fixed-arity fact batches straddling the packing threshold."""
    return st.integers(1, 3).flatmap(
        lambda arity: st.lists(
            st.tuples(*[_values] * arity),
            min_size=min_size, max_size=max_size,
            unique=True))


_relations = st.dictionaries(
    st.sampled_from(("anc", "sg", "path")), _fact_lists(), max_size=2)

_stamps = st.one_of(
    st.none(),
    st.tuples(st.integers(0, 5), st.integers(0, 1000)))


@st.composite
def _sent_logs(draw):
    log = {}
    for target in draw(st.sets(st.integers(0, 3), max_size=2)):
        by_pred = {}
        for pred in draw(st.sets(st.sampled_from(("anc", "sg")),
                                 max_size=2)):
            facts = draw(_fact_lists(max_size=PACK_MIN_FACTS + 2))
            by_pred[pred] = {fact: draw(_stamps) for fact in facts}
        log[target] = by_pred
    return log


@st.composite
def _checkpoints(draw):
    return WorkerCheckpoint(
        epoch=draw(st.integers(0, 4)),
        in_facts=draw(_relations),
        out_facts=draw(_relations),
        staged=draw(_relations),
        counters={"firings": draw(st.integers(0, 10 ** 6)),
                  "iterations": draw(st.integers(0, 100))},
        duplicates_dropped=draw(st.integers(0, 1000)),
        received=draw(st.integers(0, 10 ** 6)),
        self_delivered=draw(st.integers(0, 10 ** 6)),
        sent_log=draw(_sent_logs()),
        watermarks={sender: (draw(st.integers(0, 5)),
                             draw(st.integers(0, 1000)))
                    for sender in draw(st.sets(st.integers(0, 3),
                                               max_size=3))},
    )


@pytest.fixture(params=["tuple", "columnar"])
def fact_backend(request):
    previous = set_fact_backend(request.param)
    yield request.param
    set_fact_backend(previous)


class TestRoundTrip:
    @given(_checkpoints())
    @settings(max_examples=60, deadline=None)
    def test_decode_inverts_encode(self, checkpoint):
        assert decode_checkpoint(encode_checkpoint(checkpoint)) == checkpoint

    @given(_checkpoints())
    @settings(max_examples=25, deadline=None)
    def test_round_trip_under_both_backends(self, checkpoint):
        """The payload is backend-agnostic: encode under one backend,
        decode under the other, and nothing changes (no interner state
        crosses the boundary — see repro/facts/packing.py)."""
        previous = set_fact_backend("columnar")
        try:
            payload = encode_checkpoint(checkpoint)
        finally:
            set_fact_backend(previous)
        assert decode_checkpoint(payload) == checkpoint

    def test_empty_checkpoint(self, fact_backend):
        checkpoint = WorkerCheckpoint()
        payload = encode_checkpoint(checkpoint)
        assert payload["version"] == CHECKPOINT_VERSION
        assert decode_checkpoint(payload) == checkpoint
        assert approx_checkpoint_bytes(payload) > 0

    def test_large_batches_travel_packed(self, fact_backend):
        facts = [(i, i + 1) for i in range(4 * PACK_MIN_FACTS)]
        checkpoint = WorkerCheckpoint(
            in_facts={"anc": facts},
            sent_log={1: {"anc": {fact: (0, i)
                                  for i, fact in enumerate(facts)}}})
        payload = encode_checkpoint(checkpoint)
        assert is_packed(payload["in"]["anc"])
        assert is_packed(payload["sent_log"][1]["anc"][0])
        decoded = decode_checkpoint(payload)
        assert decoded == checkpoint
        # The stamp association survives the packed detour exactly.
        assert decoded.sent_log[1]["anc"][facts[7]] == (0, 7)

    def test_unknown_version_rejected(self):
        payload = encode_checkpoint(WorkerCheckpoint())
        payload["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(ValueError, match="checkpoint version"):
            decode_checkpoint(payload)


class TestSizeModel:
    @given(_checkpoints())
    @settings(max_examples=25, deadline=None)
    def test_size_is_deterministic_and_positive(self, checkpoint):
        payload = encode_checkpoint(checkpoint)
        size = approx_checkpoint_bytes(payload)
        assert size > 0
        assert size == approx_checkpoint_bytes(payload)

    def test_size_grows_with_content(self):
        small = encode_checkpoint(WorkerCheckpoint(
            in_facts={"anc": [(1, 2)]}))
        large = encode_checkpoint(WorkerCheckpoint(
            in_facts={"anc": [(i, i + 1) for i in range(200)]}))
        assert (approx_checkpoint_bytes(large)
                > approx_checkpoint_bytes(small))

    def test_fact_count_sums_all_sections(self):
        checkpoint = WorkerCheckpoint(
            in_facts={"anc": [(1, 2), (2, 3)]},
            out_facts={"anc": [(1, 3)]},
            staged={"anc": [(0, 1)]})
        assert checkpoint.fact_count() == 4
