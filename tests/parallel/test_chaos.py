"""The chaos soak harness: deterministic derivation plus live soaks.

Two layers.  The cheap layer pins the *harness itself*: seeds derive
cases deterministically, consecutive seeds alternate the recovery
policy (the axis under soak), and a failing case is recorded — never
raised — so a soak always reports every seed.  The live layer runs a
small band of consecutive seeds against real worker processes, one
test per seed; the ids carry the recovery policy so CI can split the
soak into one leg per policy (``-k "chaos and restart"`` /
``-k "chaos and checkpoint"``, see the chaos-smoke job).
"""

import dataclasses

import pytest

from repro.parallel.chaos import build_case, run_case, run_chaos, summarize

# Three consecutive seeds per policy: recovery cycles fastest through
# the grid, so evens are restart and odds are checkpoint, and the six
# seeds together cover three rewriting schemes under each policy.
_SOAK_SEEDS = range(6)


class TestCaseDerivation:
    def test_same_seed_same_case(self):
        assert build_case(17) == build_case(17)

    def test_consecutive_seeds_alternate_recovery(self):
        policies = [build_case(seed).recovery for seed in range(6)]
        assert policies == ["restart", "checkpoint"] * 3

    def test_cases_always_include_a_kill(self):
        for seed in range(24):
            case = build_case(seed)
            assert any(spec.startswith("kill:")
                       for spec in case.fault_specs), case

    def test_describe_names_the_whole_configuration(self):
        case = build_case(1)
        text = case.describe()
        assert "seed 1" in text
        assert case.scheme in text
        assert case.recovery in text


@pytest.mark.mp
@pytest.mark.faultinjection
class TestChaosSoak:
    @pytest.mark.parametrize(
        "seed", _SOAK_SEEDS,
        ids=[f"seed{seed}-{build_case(seed).recovery}"
             for seed in _SOAK_SEEDS])
    def test_seed_is_exact_under_its_fault_schedule(self, seed):
        case = build_case(seed)
        outcome = run_case(case, timeout=60)
        assert outcome.ok, outcome.describe()

    def test_budget_exhaustion_is_recorded_not_raised(self):
        """A case whose restart budget cannot cover its kills must come
        back as a recorded failure — the soak never crashes."""
        case = dataclasses.replace(build_case(0), max_restarts=0)
        outcome = run_case(case, timeout=60)
        assert not outcome.ok
        assert "max_restarts" in outcome.detail

    def test_run_chaos_reports_every_seed(self):
        lines = []
        outcomes = run_chaos(seeds=2, timeout=60, progress=lines.append)
        assert len(outcomes) == 2
        assert len(lines) == 2
        text = summarize(outcomes)
        assert "2 case(s)" in text
        assert "checkpoint: 1" in text and "restart: 1" in text
