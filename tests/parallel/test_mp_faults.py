"""Fault injection against the real multiprocessing executor.

These tests SIGKILL genuine worker processes mid-run and check the two
halves of the fault-tolerance contract:

* ``recovery="fail"`` — the coordinator's liveness probing notices the
  death within a couple of probe intervals and raises a precise
  :class:`~repro.errors.ExecutionError` naming the dead worker, instead
  of hanging until the global timeout (the regression this suite
  guards: a silent SIGKILL used to block the run for the full
  deadline).
* ``recovery="restart"`` — the worker is restarted from its base
  fragment, peers replay their sent-logs, and the final answer is
  *identical* to an undisturbed sequential evaluation (Theorem 1 under
  failure).
"""

import time

import pytest

from repro.engine import evaluate
from repro.errors import ExecutionError
from repro.obs import REPLAY, WORKER_DOWN, WORKER_RESTART, InMemorySink, Tracer
from repro.parallel import (
    build_fault_plan,
    example2_scheme,
    example3_scheme,
    hash_scheme,
    wolfson_scheme,
)
from repro.parallel.mp import run_multiprocessing


@pytest.mark.mp
@pytest.mark.faultinjection
class TestFailFast:
    def test_sigkill_raises_quickly_naming_worker(self, ancestor, tree_db):
        """Regression: a SIGKILLed worker must fail the run fast.

        Before liveness detection the coordinator blocked on acks until
        the global timeout; now the death is noticed within a couple of
        probe intervals, far under the 5 s acceptance bound.
        """
        program = example3_scheme(ancestor, (0, 1, 2))
        plan = build_fault_plan(["kill:1@3"])
        started = time.monotonic()
        with pytest.raises(ExecutionError) as excinfo:
            run_multiprocessing(program, tree_db, faults=plan,
                                recovery="fail", timeout=60)
        elapsed = time.monotonic() - started
        assert elapsed < 5.0, f"fail-fast took {elapsed:.1f}s"
        assert "'1'" in str(excinfo.value)
        assert "-9" in str(excinfo.value)  # SIGKILL exit code

    def test_unknown_kill_tag_rejected(self, ancestor, tree_db):
        program = example3_scheme(ancestor, (0, 1))
        plan = build_fault_plan(["kill:nosuch@3"])
        with pytest.raises(ExecutionError):
            run_multiprocessing(program, tree_db, faults=plan, timeout=60)

    def test_max_restarts_exhausted(self, ancestor, tree_db):
        """With max_restarts=0 even the restart policy fails fast."""
        program = example3_scheme(ancestor, (0, 1, 2))
        plan = build_fault_plan(["kill:1@3"])
        with pytest.raises(ExecutionError):
            run_multiprocessing(program, tree_db, faults=plan,
                                recovery="restart", max_restarts=0,
                                timeout=60)


@pytest.mark.mp
@pytest.mark.faultinjection
class TestRecovery:
    def test_restart_matches_sequential(self, ancestor, tree_db):
        program = example3_scheme(ancestor, (0, 1, 2))
        plan = build_fault_plan(["kill:1@10"])
        result = run_multiprocessing(program, tree_db, faults=plan,
                                     recovery="restart", timeout=60)
        expected = evaluate(ancestor, tree_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())
        assert result.restarts == 1

    def test_restart_two_workers(self, ancestor, tree_db):
        program = example3_scheme(ancestor, (0, 1, 2))
        plan = build_fault_plan(["kill:0@5", "kill:2@15"])
        result = run_multiprocessing(program, tree_db, faults=plan,
                                     recovery="restart", timeout=60)
        expected = evaluate(ancestor, tree_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())
        assert result.restarts == 2

    @pytest.mark.parametrize("kill_at", [1, 5, 25, 60])
    def test_theorem1_under_failure_any_kill_point(self, ancestor, tree_db,
                                                   kill_at):
        """Property: exactness holds wherever the kill lands.

        A sweep over kill points (from 'before anything was sent' to
        'nearly quiescent') — recovered output must equal semi-naive
        exactly every time.
        """
        program = example3_scheme(ancestor, (0, 1, 2))
        plan = build_fault_plan([f"kill:1@{kill_at}"])
        result = run_multiprocessing(program, tree_db, faults=plan,
                                     recovery="restart", timeout=60)
        expected = evaluate(ancestor, tree_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())

    @pytest.mark.parametrize("scheme", ["example2", "hash", "wolfson"])
    def test_theorem1_under_failure_across_schemes(self, ancestor, tree_db,
                                                   scheme):
        if scheme == "example2":
            program = example2_scheme(ancestor, (0, 1, 2), tree_db)
        elif scheme == "hash":
            program = hash_scheme(ancestor, (0, 1, 2))
        else:
            program = wolfson_scheme(ancestor, (0, 1))
        from repro.parallel.naming import processor_tag
        victim = processor_tag(program.processors[-1])
        plan = build_fault_plan([f"kill:{victim}@8"])
        result = run_multiprocessing(program, tree_db, faults=plan,
                                     recovery="restart", timeout=60)
        expected = evaluate(ancestor, tree_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())

    def test_kill_before_any_firing(self, ancestor, tree_db):
        """kill:@0 dies immediately after initialization routing."""
        program = example3_scheme(ancestor, (0, 1, 2))
        plan = build_fault_plan(["kill:2@0"])
        result = run_multiprocessing(program, tree_db, faults=plan,
                                     recovery="restart", timeout=60)
        expected = evaluate(ancestor, tree_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())


@pytest.mark.mp
@pytest.mark.faultinjection
class TestChannelFaults:
    def test_duplicates_are_harmless(self, ancestor, tree_db):
        """Monotonicity: duplicated deliveries cannot change the answer."""
        program = example3_scheme(ancestor, (0, 1, 2))
        plan = build_fault_plan(["dup:0.5"], seed=3)
        result = run_multiprocessing(program, tree_db, faults=plan,
                                     timeout=60)
        expected = evaluate(ancestor, tree_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())

    def test_delays_are_harmless(self, ancestor, tree_db):
        """Asynchronous channels: late delivery cannot change the answer."""
        program = example3_scheme(ancestor, (0, 1, 2))
        plan = build_fault_plan(["delay:0.4"], seed=5)
        result = run_multiprocessing(program, tree_db, faults=plan,
                                     timeout=60)
        expected = evaluate(ancestor, tree_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())


@pytest.mark.mp
@pytest.mark.faultinjection
class TestFaultTracing:
    def test_recovery_events_reach_trace(self, ancestor, tree_db):
        sink = InMemorySink()
        program = example3_scheme(ancestor, (0, 1, 2))
        plan = build_fault_plan(["kill:1@40"])
        run_multiprocessing(program, tree_db, faults=plan,
                            recovery="restart", tracer=Tracer(sink),
                            timeout=60)
        kinds = {event.kind for event in sink.events}
        assert WORKER_DOWN in kinds
        assert WORKER_RESTART in kinds
        # A kill this late happens after peers have sent to the victim,
        # so at least one survivor replays its log.
        assert REPLAY in kinds

    def test_report_renders_fault_section(self, ancestor, tree_db):
        from repro.obs.report import TraceReport
        sink = InMemorySink()
        program = example3_scheme(ancestor, (0, 1, 2))
        plan = build_fault_plan(["kill:1@10"])
        run_multiprocessing(program, tree_db, faults=plan,
                            recovery="restart", tracer=Tracer(sink),
                            timeout=60)
        text = TraceReport(sink.events).render()
        assert "failures and recovery:" in text
        assert "DOWN" in text and "RESTART" in text
