"""Tests for the simulated cluster and the processor runtime."""

import pytest

from repro.engine import evaluate
from repro.errors import ExecutionError
from repro.parallel import (
    CostModel,
    example1_scheme,
    example3_scheme,
    hash_scheme,
    run_parallel,
    wolfson_scheme,
)
from repro.parallel.simulator import SimulatedCluster


class TestSimulatedCluster:
    def test_single_processor_degenerates_to_sequential(self, ancestor,
                                                        chain_db):
        result = run_parallel(hash_scheme(ancestor, (0,)), chain_db)
        expected = evaluate(ancestor, chain_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())
        assert result.metrics.total_sent() == 0
        assert result.metrics.total_firings() == (
            expected.counters.total_firings())

    def test_empty_database(self, ancestor):
        from repro.facts import Database
        result = run_parallel(example3_scheme(ancestor, (0, 1)), Database())
        assert len(result.relation("anc")) == 0
        assert result.metrics.rounds <= 1

    def test_deterministic_metrics(self, ancestor, dag_db):
        first = run_parallel(example3_scheme(ancestor, (0, 1, 2)), dag_db)
        second = run_parallel(example3_scheme(ancestor, (0, 1, 2)), dag_db)
        assert first.metrics.summary() == second.metrics.summary()

    def test_delay_injection_preserves_answer(self, ancestor, dag_db):
        baseline = run_parallel(example3_scheme(ancestor, (0, 1, 2)), dag_db)
        for seed in range(3):
            delayed = run_parallel(example3_scheme(ancestor, (0, 1, 2)),
                                   dag_db, delay_probability=0.5, seed=seed)
            assert (delayed.relation("anc").as_set()
                    == baseline.relation("anc").as_set())
            assert delayed.metrics.rounds >= baseline.metrics.rounds

    def test_max_rounds_guard(self, ancestor, chain_db):
        with pytest.raises(ExecutionError):
            run_parallel(example3_scheme(ancestor, (0, 1)), chain_db,
                         max_rounds=2)

    def test_per_round_accounting_sums_to_totals(self, ancestor, dag_db):
        result = run_parallel(example3_scheme(ancestor, (0, 1, 2)), dag_db)
        metrics = result.metrics
        per_round_sent = sum(sum(row.values())
                             for row in metrics.per_round_sent)
        # Initialization sends happen before round 1; they are delivered
        # (and thus received) during the rounds.
        per_round_received = sum(sum(row.values())
                                 for row in metrics.per_round_received)
        assert per_round_received == metrics.total_sent()
        assert per_round_sent <= metrics.total_sent()

    def test_counters_per_processor(self, ancestor, dag_db):
        result = run_parallel(example3_scheme(ancestor, (0, 1, 2)), dag_db)
        assert set(result.counters) == {0, 1, 2}
        assert sum(c.total_firings() for c in result.counters.values()) == (
            result.metrics.total_firings())

    def test_pooled_tuples_counted(self, ancestor, chain_db):
        result = run_parallel(example3_scheme(ancestor, (0, 1)), chain_db)
        assert result.metrics.pooled_tuples == 55


class TestSafraDetection:
    def test_detects_only_after_quiescence(self, ancestor, chain_db):
        result = run_parallel(example3_scheme(ancestor, (0, 1, 2)), chain_db,
                              detect_termination=True)
        metrics = result.metrics
        assert metrics.control_messages > 0
        assert metrics.detection_rounds >= 0
        # Detection adds idle rounds but never changes the answer.
        baseline = run_parallel(example3_scheme(ancestor, (0, 1, 2)),
                                chain_db)
        assert (result.relation("anc").as_set()
                == baseline.relation("anc").as_set())

    def test_single_processor_detection(self, ancestor, chain_db):
        result = run_parallel(hash_scheme(ancestor, (0,)), chain_db,
                              detect_termination=True)
        assert result.metrics.control_messages >= 1

    def test_control_messages_scale_with_ring(self, ancestor, chain_db):
        small = run_parallel(example3_scheme(ancestor, (0, 1)), chain_db,
                             detect_termination=True)
        large = run_parallel(example3_scheme(ancestor, tuple(range(8))),
                             chain_db, detect_termination=True)
        assert (large.metrics.control_messages
                > small.metrics.control_messages)


class TestCostModel:
    def test_makespan_grows_with_comm_cost(self, ancestor, dag_db):
        result = run_parallel(example3_scheme(ancestor, (0, 1, 2)), dag_db)
        cheap = result.metrics.makespan(CostModel(send_cost=0.0,
                                                  recv_cost=0.0))
        expensive = result.metrics.makespan(CostModel(send_cost=10.0,
                                                      recv_cost=10.0))
        assert expensive > cheap

    def test_no_communication_scheme_insensitive_to_comm_cost(self, ancestor,
                                                              dag_db):
        result = run_parallel(example1_scheme(ancestor, (0, 1, 2)), dag_db)
        cheap = result.metrics.makespan(CostModel(send_cost=0.0))
        expensive = result.metrics.makespan(CostModel(send_cost=100.0))
        assert cheap == expensive

    def test_speedup_definition(self, ancestor, dag_db):
        result = run_parallel(example1_scheme(ancestor, (0, 1, 2)), dag_db)
        span = result.metrics.makespan()
        assert result.metrics.speedup_vs(span * 2) == pytest.approx(2.0)

    def test_load_balance_bounds(self, ancestor, dag_db):
        result = run_parallel(example3_scheme(ancestor, (0, 1, 2, 3)), dag_db)
        index = result.metrics.load_balance()
        assert 0.25 <= index <= 1.0

    def test_utilisation_bounds(self, ancestor, dag_db):
        result = run_parallel(example3_scheme(ancestor, (0, 1, 2, 3)), dag_db)
        assert 0.0 < result.metrics.utilisation() <= 1.0


class TestClusterInternals:
    def test_cluster_reusable_state_isolated(self, ancestor, chain_db):
        program = example3_scheme(ancestor, (0, 1))
        cluster = SimulatedCluster(program, chain_db)
        first = cluster.run()
        fresh = SimulatedCluster(program, chain_db).run()
        assert (first.relation("anc").as_set()
                == fresh.relation("anc").as_set())

    def test_wolfson_duplicates_dropped_zero(self, ancestor, dag_db):
        # Nothing is ever transmitted, so nothing can be received twice.
        result = run_parallel(wolfson_scheme(ancestor, (0, 1, 2)), dag_db)
        assert sum(result.metrics.duplicates_dropped.values()) == 0
