"""Tests for the fault-injection harness (`repro.parallel.faults`)."""

import pytest

from repro.errors import ReproError
from repro.parallel.faults import (
    DELAY,
    DELIVER,
    DROP,
    DUPLICATE,
    ChannelFault,
    FaultPlan,
    KillFault,
    build_fault_plan,
    parse_fault_spec,
)


class TestParsing:
    def test_kill_spec(self):
        fault = parse_fault_spec("kill:p1@50")
        assert isinstance(fault, KillFault)
        assert fault.processor == "p1"
        assert fault.after_firings == 50

    def test_kill_numeric_tag(self):
        fault = parse_fault_spec("kill:1@3")
        assert fault.processor == "1"
        assert fault.after_firings == 3

    def test_channel_specs(self):
        for action, name in ((DROP, "drop"), (DELAY, "delay"),
                             (DUPLICATE, "dup")):
            fault = parse_fault_spec(f"{name}:0.25")
            assert isinstance(fault, ChannelFault)
            assert fault.action == action
            assert fault.probability == 0.25
            assert fault.src is None and fault.dst is None

    def test_channel_spec_with_endpoints(self):
        fault = parse_fault_spec("drop:0.5@p0->p2")
        assert fault.src == "p0" and fault.dst == "p2"
        assert fault.applies("p0", "p2")
        assert not fault.applies("p0", "p1")
        assert not fault.applies("p2", "p0")

    def test_wildcard_endpoints(self):
        fault = parse_fault_spec("delay:0.1@*->p1")
        assert fault.applies("anything", "p1")
        assert not fault.applies("anything", "p2")

    @pytest.mark.parametrize("bad", [
        "", "kill", "kill:p1", "kill:p1@", "kill:p1@x", "kill:@5",
        "drop", "drop:", "drop:2.0", "drop:-0.1", "drop:x",
        "dup:0.5@p0", "explode:p1@3",
    ])
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ReproError):
            parse_fault_spec(bad)

    def test_duplicate_kill_tags_rejected(self):
        with pytest.raises(ReproError):
            build_fault_plan(["kill:p1@5", "kill:p1@9"])


class TestFaultPlan:
    def test_worker_faults_slice(self):
        plan = build_fault_plan(
            ["kill:p1@5", "drop:0.5@p0->p2", "dup:0.3"], seed=42)
        p1 = plan.worker_faults("p1")
        assert p1.kill_after == 5
        # p1 only carries channel faults it can apply as a sender.
        assert all(f.src is None or f.src == "p1"
                   for f in p1.channel_faults)
        p0 = plan.worker_faults("p0")
        assert p0.kill_after is None
        assert any(f.action == DROP for f in p0.channel_faults)

    def test_kill_for(self):
        plan = build_fault_plan(["kill:p1@5"])
        assert plan.kill_for("p1").after_firings == 5
        assert plan.kill_for("p0") is None

    def test_bool(self):
        assert not FaultPlan()
        assert build_fault_plan(["dup:0.1"])

    def test_empty_specs(self):
        assert build_fault_plan([]) == FaultPlan()


class TestChannelFaultState:
    def test_deterministic_per_seed(self):
        a_state = build_fault_plan(["drop:0.5"], seed=7).channel_state()
        a = [a_state.decide("p0", "p1") for _ in range(50)]
        b_state = build_fault_plan(["drop:0.5"], seed=7).channel_state()
        b = [b_state.decide("p0", "p1") for _ in range(50)]
        assert a == b
        assert DROP in a and DELIVER in a

    def test_different_seeds_differ(self):
        seq_a = build_fault_plan(["drop:0.5"], seed=1).channel_state()
        seq_b = build_fault_plan(["drop:0.5"], seed=2).channel_state()
        assert ([seq_a.decide("p0", "p1") for _ in range(100)]
                != [seq_b.decide("p0", "p1") for _ in range(100)])

    def test_zero_probability_always_delivers(self):
        state = build_fault_plan(["drop:0.0"]).channel_state()
        assert all(state.decide("a", "b") == DELIVER for _ in range(20))

    def test_certain_fault_always_fires(self):
        state = build_fault_plan(["dup:1.0"]).channel_state()
        assert all(state.decide("a", "b") == DUPLICATE for _ in range(20))
        assert state.duplicated == 20

    def test_scoped_fault_ignores_other_channels(self):
        state = build_fault_plan(["drop:1.0@p0->p1"]).channel_state()
        assert state.decide("p0", "p1") == DROP
        assert state.decide("p1", "p0") == DELIVER
        assert state.decide("p0", "p2") == DELIVER
        assert state.dropped == 1
