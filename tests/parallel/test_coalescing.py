"""Send coalescing and channel accounting in the communication path.

The mp worker buffers outbound tuples across inner-loop steps and
flushes whole multi-predicate batches — one queue put, one pickle per
peer — while the simulator partitions emission lists per channel.  Both
report the new channel counters (``channel_messages`` /
``channel_bytes``); these tests assert the batching actually happens,
that it is invisible to answers and tuple-level cost counters, and that
the deduplicated sent-log stays bounded.

``channel_messages`` is deterministic in the simulator but
timing-dependent in the mp executor (burst boundaries move), so mp
assertions use wide margins (observed batching factor ~12 on the
broadcast-heavy example2 scenario; we require >= 2).
"""

import pytest

from repro.engine import evaluate
from repro.facts import Database
from repro.parallel import (
    build_fault_plan,
    example2_scheme,
    example3_scheme,
    run_parallel,
)
from repro.parallel.mp import run_multiprocessing
from repro.parallel.mp.protocol import typed_sort_key
from repro.workloads import ancestor_program


class TestTypedSortKey:
    def test_ints_sort_numerically_not_by_repr(self):
        facts = [(10,), (9,), (2,)]
        assert sorted(facts, key=typed_sort_key) == [(2,), (9,), (10,)]
        # repr order would have put "10" before "9".
        assert sorted(facts, key=repr) != sorted(facts, key=typed_sort_key)

    def test_mixed_types_sort_without_type_error(self):
        facts = [(1, "b"), ("a", 2), (1, "a"), ("a", 1)]
        ordered = sorted(facts, key=typed_sort_key)
        assert ordered == [(1, "a"), (1, "b"), ("a", 1), ("a", 2)]

    def test_total_order_is_deterministic(self):
        facts = [("x",), (3,), (None,), (2.5,), (True,)]
        assert (sorted(facts, key=typed_sort_key)
                == sorted(reversed(facts), key=typed_sort_key))


class TestSimulatorChannelCounters:
    def test_messages_strictly_fewer_than_tuples(self, ancestor, tree_db):
        """Deterministic reduction: batches carry > 1 tuple on average."""
        parallel = example2_scheme(ancestor, (0, 1, 2), tree_db)
        result = run_parallel(parallel, tree_db)
        metrics = result.metrics
        assert metrics.total_sent() > 0
        assert 0 < metrics.total_channel_messages() < metrics.total_sent()
        assert metrics.total_channel_bytes() > 0
        summary = metrics.summary()
        assert summary["channel_messages"] == metrics.total_channel_messages()
        assert summary["channel_bytes"] == metrics.total_channel_bytes()

    def test_counters_are_deterministic(self, ancestor, chain_db):
        parallel = example2_scheme(ancestor, (0, 1, 2), chain_db)
        first = run_parallel(parallel, chain_db).metrics
        second = run_parallel(parallel, chain_db).metrics
        assert first.channel_messages == second.channel_messages
        assert first.channel_bytes == second.channel_bytes


@pytest.mark.mp
class TestMpCoalescing:
    def test_example2_batches_and_matches_sequential(self, ancestor, tree_db):
        parallel = example2_scheme(ancestor, (0, 1, 2), tree_db)
        result = run_multiprocessing(parallel, tree_db, timeout=60)
        expected = evaluate(ancestor, tree_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())
        metrics = result.metrics
        assert metrics.total_channel_messages() > 0
        assert metrics.total_channel_bytes() > 0
        factor = metrics.total_sent() / metrics.total_channel_messages()
        assert factor >= 2.0
        assert "channel_messages" in metrics.summary()

    def test_fault_free_sent_log_equals_sent(self, ancestor, tree_db):
        """Without faults each (predicate, fact) pair is put on a channel
        exactly once, so the deduplicated replay log holds exactly the
        tuples sent — the bound of the satellite is tight here."""
        parallel = example2_scheme(ancestor, (0, 1, 2), tree_db)
        result = run_multiprocessing(parallel, tree_db, timeout=60)
        assert result.stats
        for stats in result.stats.values():
            assert stats.sent_log_facts == stats.total_sent()

    def test_duplicate_faults_keep_log_bounded(self, ancestor, tree_db):
        """Channel duplication inflates ``sent`` but not the dedup'd log."""
        parallel = example3_scheme(ancestor, (0, 1, 2))
        plan = build_fault_plan(["dup:0.6"], seed=5)
        result = run_multiprocessing(parallel, tree_db, faults=plan,
                                     timeout=60)
        expected = evaluate(ancestor, tree_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())
        total_log = sum(s.sent_log_facts for s in result.stats.values())
        total_sent = sum(s.total_sent() for s in result.stats.values())
        assert 0 < total_log < total_sent

    def test_coalescing_off_is_equivalent_but_chattier(
            self, ancestor, tree_db, monkeypatch):
        parallel = example2_scheme(ancestor, (0, 1, 2), tree_db)
        on = run_multiprocessing(parallel, tree_db, timeout=60)
        monkeypatch.setenv("REPRO_MP_COALESCE", "off")
        off = run_multiprocessing(parallel, tree_db, timeout=60)
        assert (on.relation("anc").as_set() == off.relation("anc").as_set())
        # Tuple-level cost counters are independent of batching.
        assert on.metrics.total_sent() == off.metrics.total_sent()
        assert on.metrics.total_firings() == off.metrics.total_firings()
        assert (on.metrics.total_channel_messages()
                <= off.metrics.total_channel_messages())

    def test_mixed_type_constants_pool_correctly(self, ancestor):
        """End-to-end guard for the typed RESULT sort: pooling worker
        outputs with mixed int/str columns must not raise and must match
        the sequential answer."""
        database = Database.from_facts(
            {"par": [(1, "a"), ("a", 2), (2, "b"), ("b", 3), (3, "c")]})
        parallel = example3_scheme(ancestor, (0, 1))
        result = run_multiprocessing(parallel, database, timeout=60)
        expected = evaluate(ancestor, database)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())
