"""The columnar backend under the parallel executors.

The simulator must be counter-identical across backends (it is fully
deterministic); the mp executor must agree on answers, firings and
tuples sent, with only the wire accounting (``channel_bytes``,
``channel_messages``) allowed to differ — and ``channel_bytes`` must
differ *downward*: the packed column format exists to shrink it.
"""

import pytest

from repro.engine import evaluate
from repro.facts import set_fact_backend
from repro.parallel import example2_scheme, example3_scheme, run_parallel
from repro.workloads import random_tree_edges


@pytest.fixture
def columnar_backend():
    previous = set_fact_backend("columnar")
    yield
    set_fact_backend(previous)


def _sim_snapshot(program, database, sync="bsp"):
    result = run_parallel(program, database, sync=sync)
    metrics = result.metrics
    return {
        "answers": result.relation("anc").as_set(),
        "firings": metrics.total_firings(),
        "sent": metrics.total_sent(),
        "rounds": metrics.rounds,
        "messages": metrics.total_channel_messages(),
        "bytes": metrics.total_channel_bytes(),
    }


class TestSimulatorColumnar:
    def test_matches_sequential(self, ancestor, tree_db, columnar_backend):
        result = run_parallel(example3_scheme(ancestor, (0, 1, 2)), tree_db)
        expected = evaluate(ancestor, tree_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())

    def test_counter_identical_to_tuple_backend(self, ancestor, tree_db):
        program = example3_scheme(ancestor, (0, 1, 2))
        tuple_run = _sim_snapshot(program, tree_db)
        previous = set_fact_backend("columnar")
        try:
            columnar_run = _sim_snapshot(program, tree_db)
        finally:
            set_fact_backend(previous)
        assert columnar_run == tuple_run

    def test_broadcast_scheme_agrees(self, ancestor, chain_db):
        program = example2_scheme(ancestor, (0, 1, 2), chain_db)
        tuple_run = _sim_snapshot(program, chain_db)
        previous = set_fact_backend("columnar")
        try:
            columnar_run = _sim_snapshot(program, chain_db)
        finally:
            set_fact_backend(previous)
        assert columnar_run == tuple_run


@pytest.mark.mp
class TestMultiprocessingColumnar:
    def test_matches_sequential(self, ancestor, columnar_backend):
        from repro.facts import Database
        from repro.parallel.mp import run_multiprocessing

        database = Database.from_facts(
            {"par": random_tree_edges(60, seed=7)})
        result = run_multiprocessing(
            example3_scheme(ancestor, (0, 1, 2)), database, timeout=60)
        expected = evaluate(ancestor, database)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())

    def test_packed_wire_shrinks_channel_bytes(self, ancestor):
        from repro.facts import Database
        from repro.parallel.mp import run_multiprocessing

        database = Database.from_facts(
            {"par": [(i, i + 1) for i in range(1, 50)]})
        program = example3_scheme(ancestor, (0, 1, 2))
        previous = set_fact_backend("tuple")
        try:
            tuple_result = run_multiprocessing(program, database, timeout=60)
            set_fact_backend("columnar")
            columnar_result = run_multiprocessing(program, database,
                                                  timeout=60)
        finally:
            set_fact_backend(previous)
        assert (columnar_result.relation("anc").as_set()
                == tuple_result.relation("anc").as_set())
        assert (columnar_result.metrics.total_sent()
                == tuple_result.metrics.total_sent())
        assert (columnar_result.metrics.total_channel_bytes()
                < tuple_result.metrics.total_channel_bytes())
