"""Tests for the Section 7 general rewrite."""

import pytest

from repro.datalog import Variable, parse_program
from repro.errors import RewriteError
from repro.parallel import (
    HashDiscriminator,
    RuleSpec,
    auto_specs,
    rewrite_general,
    run_parallel,
)
from repro.parallel.naming import in_name, out_name

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestAutoSpecs:
    def test_recursive_rule_uses_recursive_atom_vars(self, nonlinear_ancestor):
        specs = auto_specs(nonlinear_ancestor, (0, 1))
        recursive_spec = specs[1]
        assert recursive_spec.sequence == (X, Z)

    def test_exit_rule_uses_head_vars(self, nonlinear_ancestor):
        specs = auto_specs(nonlinear_ancestor, (0, 1))
        assert specs[0].sequence == (X, Y)

    def test_shared_discriminator(self, nonlinear_ancestor):
        specs = auto_specs(nonlinear_ancestor, (0, 1))
        assert specs[0].discriminator is specs[1].discriminator


class TestRewriteGeneral:
    def test_example8_structure(self, nonlinear_ancestor):
        """The paper's Example 8: v(r1) = <Y>, v(r2) = <Z>, shared h."""
        h = HashDiscriminator((0, 1, 2))
        specs = {0: RuleSpec((Y,), h), 1: RuleSpec((Z,), h)}
        program = rewrite_general(nonlinear_ancestor, (0, 1, 2), specs)

        processor = program.program_for(1)
        # r1 has no derived body atom: it is an init rule.
        assert len(processor.init_rules) == 1
        assert len(processor.processing_rules) == 1
        processing = processor.processing_rules[0]
        assert processing.head.predicate == out_name("anc")
        assert [a.predicate for a in processing.body] == [
            in_name("anc"), in_name("anc")]
        # Two sending rules, one per recursive occurrence, routing on
        # position 2 (X, Z) and position 1 (Z, Y) respectively.
        routes = processor.routes
        assert len(routes) == 2
        assert sorted(route.positions for route in routes) == [(0,), (1,)]

    def test_example8_base_fragmented_by_y(self, nonlinear_ancestor):
        h = HashDiscriminator((0, 1))
        specs = {0: RuleSpec((Y,), h), 1: RuleSpec((Z,), h)}
        program = rewrite_general(nonlinear_ancestor, (0, 1), specs)
        assert program.fragmentation.requirements["par"] == "hash-partitioned"

    def test_auto_specs_round_trip_correctness(self, nonlinear_ancestor,
                                               dag_db):
        from repro.engine import evaluate
        program = rewrite_general(nonlinear_ancestor, (0, 1, 2))
        result = run_parallel(program, dag_db)
        expected = evaluate(nonlinear_ancestor, dag_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())

    def test_multi_stratum_program(self, chain_db):
        from repro.engine import evaluate
        program_text = parse_program("""
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- par(X, Z), anc(Z, Y).
            reach10(X) :- anc(X, 10).
        """)
        program = rewrite_general(program_text, (0, 1))
        result = run_parallel(program, chain_db)
        expected = evaluate(program_text, chain_db)
        for predicate in ("anc", "reach10"):
            assert (result.relation(predicate).as_set()
                    == expected.relation(predicate).as_set())

    def test_mutually_recursive_program(self):
        from repro.engine import evaluate
        from repro.facts import Database
        program_text = parse_program("""
            even(X) :- zero(X).
            odd(Y) :- even(X), succ(X, Y).
            even(Y) :- odd(X), succ(X, Y).
        """)
        database = Database.from_facts({
            "zero": [(0,)],
            "succ": [(i, i + 1) for i in range(8)],
        })
        program = rewrite_general(program_text, (0, 1, 2))
        result = run_parallel(program, database)
        expected = evaluate(program_text, database)
        for predicate in ("even", "odd"):
            assert (result.relation(predicate).as_set()
                    == expected.relation(predicate).as_set())

    def test_same_generation(self, sg_program, sg_db):
        from repro.engine import evaluate
        program = rewrite_general(sg_program, (0, 1))
        result = run_parallel(program, sg_db)
        expected = evaluate(sg_program, sg_db)
        assert result.relation("sg").as_set() == expected.relation(
            "sg").as_set()

    def test_missing_spec_rejected(self, nonlinear_ancestor):
        h = HashDiscriminator((0,))
        with pytest.raises(RewriteError):
            rewrite_general(nonlinear_ancestor, (0,), {0: RuleSpec((Y,), h)})

    def test_unknown_rule_index_rejected(self, nonlinear_ancestor):
        h = HashDiscriminator((0,))
        specs = {0: RuleSpec((Y,), h), 1: RuleSpec((Z,), h),
                 7: RuleSpec((Y,), h)}
        with pytest.raises(RewriteError):
            rewrite_general(nonlinear_ancestor, (0,), specs)

    def test_sequence_variable_not_in_body_rejected(self, nonlinear_ancestor):
        h = HashDiscriminator((0,))
        specs = {0: RuleSpec((Variable("Q"),), h), 1: RuleSpec((Z,), h)}
        with pytest.raises(RewriteError):
            rewrite_general(nonlinear_ancestor, (0,), specs)

    def test_empty_sequence_pins_rule_to_one_processor(self, chain_db):
        from repro.engine import evaluate
        program_text = parse_program("""
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- par(X, Z), anc(Z, Y).
        """)
        h = HashDiscriminator((0, 1))
        specs = {0: RuleSpec((), h), 1: RuleSpec((Z,), h)}
        program = rewrite_general(program_text, (0, 1), specs)
        result = run_parallel(program, chain_db)
        expected = evaluate(program_text, chain_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())
