"""The paper's theorems as executable properties.

* Theorem 1 — the union program ``∪ Q_i`` has the same least model as
  the source sirup (checked by evaluating the union sequentially) and
  the operational parallel execution pools the same answer.
* Theorem 2 — the Section 3 scheme is semi-naive non-redundant.
* Theorem 3 — the dataflow-cycle choice yields zero communication.
* Theorem 4 — the Section 6 family rewriting is correct for any choice.
* Theorem 5 — the Section 7 general rewriting is correct.
* Theorem 6 — the general rewriting never fires more than sequential
  semi-naive evaluation when a shared ``h`` is used.

All are checked over random databases and random discriminating
choices via hypothesis.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.datalog import as_linear_sirup
from repro.engine import evaluate
from repro.facts import Database
from repro.parallel import (
    HashDiscriminator,
    LocalRetentionFamily,
    example1_scheme,
    rewrite_general,
    rewrite_linear_family,
    rewrite_linear_sirup,
    run_parallel,
    tradeoff_scheme,
)
from repro.workloads import (
    ancestor_program,
    nonlinear_ancestor_program,
    same_generation_program,
)

edge_lists = st.lists(
    st.tuples(st.integers(1, 10), st.integers(1, 10)),
    min_size=0, max_size=30).map(lambda edges: sorted(set(edges)))
processor_counts = st.integers(1, 5)
salts = st.integers(0, 1000)


def _par_db(edges):
    database = Database()
    database.declare("par", 2).update(edges)
    return database


@st.composite
def discriminating_choices(draw):
    """A random legal (v_r, v_e) pair for the ancestor sirup.

    v(r) draws from the recursive body variables {X, Z, Y}; v(e) from
    the exit body variables {X, Y}.  Sequences may repeat variables.
    """
    sirup = as_linear_sirup(ancestor_program())
    body_vars = list(sirup.recursive_rule.body_variables())
    exit_vars = list(sirup.exit_rule.body_variables())
    v_r = tuple(draw(st.lists(st.sampled_from(body_vars),
                              min_size=1, max_size=3)))
    v_e = tuple(draw(st.lists(st.sampled_from(exit_vars),
                              min_size=1, max_size=2)))
    return v_r, v_e


class TestTheorem1:
    @given(edge_lists, processor_counts, discriminating_choices(), salts)
    @settings(max_examples=40, deadline=None)
    def test_union_program_least_model(self, edges, count, choice, salt):
        program = ancestor_program()
        database = _par_db(edges)
        v_r, v_e = choice
        processors = tuple(range(count))
        parallel = rewrite_linear_sirup(
            program, processors, v_r, v_e,
            HashDiscriminator(processors, salt=salt))
        union_result = evaluate(parallel.union, database)
        expected = evaluate(program, database)
        assert (union_result.relation("anc").as_set()
                == expected.relation("anc").as_set())

    @given(edge_lists, processor_counts, discriminating_choices(), salts)
    @settings(max_examples=40, deadline=None)
    def test_operational_execution_pools_same_answer(self, edges, count,
                                                     choice, salt):
        program = ancestor_program()
        database = _par_db(edges)
        v_r, v_e = choice
        processors = tuple(range(count))
        parallel = rewrite_linear_sirup(
            program, processors, v_r, v_e,
            HashDiscriminator(processors, salt=salt))
        result = run_parallel(parallel, database)
        expected = evaluate(program, database)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())


class TestTheorem2:
    @given(edge_lists, processor_counts, discriminating_choices(), salts)
    @settings(max_examples=40, deadline=None)
    def test_seminaive_non_redundancy(self, edges, count, choice, salt):
        program = ancestor_program()
        database = _par_db(edges)
        v_r, v_e = choice
        processors = tuple(range(count))
        parallel = rewrite_linear_sirup(
            program, processors, v_r, v_e,
            HashDiscriminator(processors, salt=salt))
        result = run_parallel(parallel, database)
        sequential = evaluate(program, database)
        assert (result.metrics.total_firings()
                <= sequential.counters.total_firings())


class TestTheorem3:
    @given(edge_lists, processor_counts)
    @settings(max_examples=40, deadline=None)
    def test_cycle_choice_never_communicates(self, edges, count):
        program = ancestor_program()
        database = _par_db(edges)
        parallel = example1_scheme(program, tuple(range(count)))
        result = run_parallel(parallel, database)
        assert result.metrics.total_sent() == 0
        expected = evaluate(program, database)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())


class TestTheorem4:
    @given(edge_lists, st.integers(2, 4),
           st.sampled_from([0.0, 0.3, 0.7, 1.0]), salts)
    @settings(max_examples=40, deadline=None)
    def test_family_rewriting_correct(self, edges, count, fraction, salt):
        program = ancestor_program()
        database = _par_db(edges)
        parallel = tradeoff_scheme(program, tuple(range(count)), fraction,
                                   salt=salt)
        result = run_parallel(parallel, database)
        expected = evaluate(program, database)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())

    @given(edge_lists, st.integers(2, 4),
           st.sampled_from([0.0, 0.5, 1.0]), salts)
    @settings(max_examples=25, deadline=None)
    def test_family_union_program(self, edges, count, fraction, salt):
        program = ancestor_program()
        sirup = as_linear_sirup(program)
        database = _par_db(edges)
        processors = tuple(range(count))
        base = HashDiscriminator(processors, salt=salt)
        family = LocalRetentionFamily(base, keep_fraction=fraction, salt=salt)
        parallel = rewrite_linear_family(
            sirup, processors, v_e=sirup.exit_rule.head.variables(),
            family=family, h_prime=base)
        union_result = evaluate(parallel.union, database)
        expected = evaluate(program, database)
        assert (union_result.relation("anc").as_set()
                == expected.relation("anc").as_set())


class TestTheorem5:
    @given(edge_lists, processor_counts, salts)
    @settings(max_examples=30, deadline=None)
    def test_general_rewriting_correct_nonlinear(self, edges, count, salt):
        program = nonlinear_ancestor_program()
        database = _par_db(edges)
        parallel = rewrite_general(program, tuple(range(count)),
                                   scheme="t5")
        result = run_parallel(parallel, database)
        expected = evaluate(program, database)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())

    @given(edge_lists, st.integers(2, 3))
    @settings(max_examples=15, deadline=None)
    def test_general_union_program(self, edges, count):
        program = nonlinear_ancestor_program()
        database = _par_db(edges)
        parallel = rewrite_general(program, tuple(range(count)))
        union_result = evaluate(parallel.union, database)
        expected = evaluate(program, database)
        assert (union_result.relation("anc").as_set()
                == expected.relation("anc").as_set())

    @given(edge_lists, edge_lists, edge_lists, st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_general_rewriting_same_generation(self, up, down, flat, count):
        program = same_generation_program()
        database = Database()
        database.declare("up", 2).update(up)
        database.declare("down", 2).update(down)
        database.declare("flat", 2).update(flat)
        parallel = rewrite_general(program, tuple(range(count)))
        result = run_parallel(parallel, database)
        expected = evaluate(program, database)
        assert (result.relation("sg").as_set()
                == expected.relation("sg").as_set())


class TestTheorem6:
    @given(edge_lists, processor_counts, salts)
    @settings(max_examples=30, deadline=None)
    def test_general_scheme_non_redundant(self, edges, count, salt):
        program = nonlinear_ancestor_program()
        database = _par_db(edges)
        parallel = rewrite_general(program, tuple(range(count)))
        result = run_parallel(parallel, database)
        sequential = evaluate(program, database)
        assert (result.metrics.total_firings()
                <= sequential.counters.total_firings())
