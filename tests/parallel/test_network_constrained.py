"""Tests for executing on an imposed network graph (Section 5).

The paper's Definition 3: an absent edge means the processors may not
communicate, directly or indirectly.  Running a rewritten program on
its own *derived* minimal network must succeed; running it on a
topology missing a needed channel must fail loudly, not silently route
around it.
"""

import pytest

from repro.datalog import Variable
from repro.engine import evaluate
from repro.errors import ExecutionError
from repro.facts import Database
from repro.network import NetworkGraph, complete_topology, derive_network
from repro.parallel import TupleDiscriminator, rewrite_linear_sirup, run_parallel
from repro.workloads import example6_program, random_tree_edges

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


@pytest.fixture
def setting():
    program = example6_program()
    h = TupleDiscriminator(2)
    parallel = rewrite_linear_sirup(program, tuple(h.processors),
                                    v_r=(Y, Z), v_e=(X, Y), h=h)
    database = Database.from_facts({
        "q": random_tree_edges(20, seed=3),
        "r": random_tree_edges(20, seed=4),
    })
    return program, parallel, database, h


class TestNetworkConstrainedExecution:
    def test_runs_on_derived_minimal_network(self, setting):
        program, parallel, database, h = setting
        derived = derive_network(program, v_r=(Y, Z), v_e=(X, Y), h=h)
        result = run_parallel(parallel, database, network=derived)
        expected = evaluate(program, database)
        assert result.relation("p").as_set() == expected.relation(
            "p").as_set()

    def test_runs_on_complete_topology(self, setting):
        _program, parallel, database, _h = setting
        topo = complete_topology(parallel.processors)
        run_parallel(parallel, database, network=topo)  # no error

    def test_fails_on_missing_channel(self, setting):
        _program, parallel, database, _h = setting
        empty = NetworkGraph(parallel.processors)  # no channels at all
        with pytest.raises(ExecutionError) as info:
            run_parallel(parallel, database, network=empty)
        assert "Definition 3" in str(info.value)

    def test_zero_communication_scheme_runs_on_empty_network(self):
        from repro.parallel import example1_scheme
        from repro.workloads import ancestor_program

        program = ancestor_program()
        parallel = example1_scheme(program, (0, 1, 2))
        database = Database.from_facts(
            {"par": random_tree_edges(20, seed=5)})
        empty = NetworkGraph(parallel.processors)
        result = run_parallel(parallel, database, network=empty)
        expected = evaluate(program, database)
        assert result.relation("anc").as_set() == expected.relation(
            "anc").as_set()
