"""Equivalence of the compiled route kernel and its reference interpreter.

The :class:`~repro.parallel.routing.RouterTable` has two partitioning
paths: the compiled kernel (default) and the generic per-fact
``Route.targets`` aggregation (``set_route_kernel(False)`` /
``REPRO_ROUTE_KERNEL=generic``).  Theorems 1 and 2 rest on routing
being *exactly* the sending rules, so the two paths must agree on
buckets, bucket order, and the broadcast count — over random routes and
fragments (Hypothesis) and over the paper's schemes end-to-end.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.atom import Atom
from repro.datalog.term import Constant, Variable
from repro.engine import evaluate
from repro.errors import RoutingError
from repro.parallel import (
    ConstantDiscriminator,
    HashDiscriminator,
    Route,
    RouterTable,
    example2_scheme,
    example3_scheme,
    hash_scheme,
    route_kernel_enabled,
    run_parallel,
    set_route_kernel,
    wolfson_scheme,
)
from repro.parallel.discriminating import Discriminator
from repro.workloads import ancestor_program, random_tree_edges
from repro.facts import Database


class _OddRejector(Discriminator):
    """Routes even sums, raises RoutingError on odd — exercises the
    partition-defined path where a tuple belongs to no fragment."""

    def __call__(self, values):
        total = sum(v if isinstance(v, int) else len(str(v))
                    for v in values)
        if total % 2:
            raise RoutingError(f"no fragment for {values!r}")
        return self.processors[total % len(self.processors)]


def _reference_partition(routes, facts):
    """Straight-line transcription of the historical per-fact walk."""
    buckets = {}
    broadcasts = 0
    for fact in facts:
        seen = set()
        for route in routes:
            targets = route.targets(fact)
            if targets and route.is_broadcast():
                broadcasts += 1
            for target in targets:
                if target not in seen:
                    seen.add(target)
                    buckets.setdefault(target, []).append(fact)
    return buckets, broadcasts


_VALUES = st.one_of(st.integers(min_value=-5, max_value=20),
                    st.sampled_from(["a", "b", "xyz", ""]))


@st.composite
def _route_for(draw, predicate, arity, processors):
    variables = [Variable(name) for name in ("X", "Y", "Z")]
    terms = [draw(st.one_of(st.sampled_from(variables),
                            st.builds(Constant, _VALUES)))
             for _ in range(arity)]
    pattern = Atom(predicate, terms)
    discriminator = draw(st.one_of(
        st.builds(lambda salt: HashDiscriminator(processors, salt=salt),
                  st.integers(min_value=0, max_value=3)),
        st.sampled_from([ConstantDiscriminator(processors, processors[0]),
                         _OddRejector(processors)])))
    broadcast = draw(st.booleans())
    if broadcast:
        positions = None
    else:
        positions = tuple(draw(st.lists(
            st.integers(min_value=0, max_value=arity - 1),
            min_size=1, max_size=arity)))
    return Route(predicate=predicate, pattern=pattern,
                 positions=positions, discriminator=discriminator)


@st.composite
def _case(draw):
    processors = tuple(range(draw(st.integers(min_value=1, max_value=4))))
    arity = draw(st.integers(min_value=1, max_value=3))
    routes = draw(st.lists(_route_for("t", arity, processors),
                           min_size=1, max_size=3))
    facts = draw(st.lists(
        st.tuples(*[_VALUES] * draw(st.integers(min_value=1, max_value=4))),
        min_size=0, max_size=25))
    return routes, [tuple(fact) for fact in facts]


class TestKernelEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(case=_case())
    def test_partition_matches_reference(self, case):
        routes, facts = case
        table = RouterTable(routes)
        compiled = table.partition("t", facts)
        previous = set_route_kernel(False)
        try:
            generic = table.partition("t", facts)
        finally:
            set_route_kernel(previous)
        # Bucket *lists* compare ordered, so these equalities also pin
        # down per-target emission order, not just membership.
        assert compiled == generic
        assert compiled == _reference_partition(routes, facts)

    def test_unknown_predicate_routes_nowhere(self):
        pattern = Atom("t", [Variable("X")])
        table = RouterTable([Route("t", pattern, (0,),
                                   HashDiscriminator((0, 1)))])
        assert table.partition("other", [(1,)]) == ({}, 0)
        assert table.routes_for("t") and not table.routes_for("other")


class TestKernelToggle:
    def test_set_route_kernel_returns_previous(self):
        assert route_kernel_enabled()
        previous = set_route_kernel(False)
        try:
            assert previous is True
            assert not route_kernel_enabled()
        finally:
            set_route_kernel(previous)
        assert route_kernel_enabled()

    @pytest.mark.parametrize("scheme", ["example2", "example3", "hash",
                                        "wolfson"])
    def test_schemes_identical_under_both_kernels(self, scheme):
        """End-to-end: simulator metrics and answers must not depend on
        which routing path is active."""
        program = ancestor_program()
        database = Database.from_facts(
            {"par": random_tree_edges(40, seed=3)})
        if scheme == "example2":
            parallel = example2_scheme(program, (0, 1, 2), database)
        elif scheme == "example3":
            parallel = example3_scheme(program, (0, 1, 2))
        elif scheme == "hash":
            parallel = hash_scheme(program, (0, 1, 2))
        else:
            parallel = wolfson_scheme(program, (0, 1))
        compiled = run_parallel(parallel, database)
        previous = set_route_kernel(False)
        try:
            generic = run_parallel(parallel, database)
        finally:
            set_route_kernel(previous)
        assert (compiled.relation("anc").as_set()
                == generic.relation("anc").as_set()
                == evaluate(program, database).relation("anc").as_set())
        assert compiled.metrics.summary() == generic.metrics.summary()
