"""Further randomised properties of the parallelisation schemes."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import parse_program
from repro.engine import evaluate
from repro.facts import ArbitraryFragmentation, Database
from repro.parallel import (
    HashDiscriminator,
    RuleSpec,
    example1_scheme,
    example2_scheme,
    rewrite_general,
    run_parallel,
)
from repro.workloads import (
    nonlinear_ancestor_program,
    reverse_chain_program,
    same_generation_program,
)

edge_lists = st.lists(
    st.tuples(st.integers(1, 10), st.integers(1, 10)),
    min_size=1, max_size=25).map(lambda edges: sorted(set(edges)))


def _par_db(edges):
    database = Database()
    database.declare("par", 2).update(edges)
    return database


class TestExample2RandomPartitions:
    @given(edge_lists, st.integers(2, 4), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_any_partition_is_correct(self, edges, count, seed):
        """Example 2's headline: correctness on ARBITRARY fragmentations."""
        program = parse_program("""
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- par(X, Z), anc(Z, Y).
        """)
        database = _par_db(edges)
        processors = tuple(range(count))
        rng = random.Random(seed)
        partition = ArbitraryFragmentation(
            {fact: rng.choice(processors)
             for fact in database.relation("par")})
        parallel = example2_scheme(program, processors, database,
                                   partition=partition)
        result = run_parallel(parallel, database)
        expected = evaluate(program, database)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())
        # Still non-redundant despite the broadcast (paper, Example 2).
        assert (result.metrics.total_firings()
                <= expected.counters.total_firings())


class TestTheorem3OtherCycles:
    @given(edge_lists, st.integers(2, 5))
    @settings(max_examples=25, deadline=None)
    def test_left_linear_self_loop(self, edges, count):
        """Left-linear ancestor: cycle at position 1, not 2."""
        program = reverse_chain_program()
        database = _par_db(edges)
        parallel = example1_scheme(program, tuple(range(count)))
        result = run_parallel(parallel, database)
        assert result.metrics.total_sent() == 0
        expected = evaluate(program, database)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())

    @given(edge_lists, st.integers(2, 4))
    @settings(max_examples=20, deadline=None)
    def test_rotation_three_cycle(self, edges, count):
        """A rule whose dataflow graph is the 3-cycle 1 -> 2 -> 3 -> 1:
        Theorem 3's construction needs the shift-invariant hash."""
        program = parse_program("""
            p(X, Y, Z) :- q(X, Y, Z).
            p(X, Y, Z) :- p(Y, Z, X), r(X).
        """)
        database = Database()
        database.declare("q", 3).update(
            [(a, b, a + b) for a, b in edges])
        database.declare("r", 1).update(
            [(a,) for a, _b in edges] + [(b,) for _a, b in edges])
        parallel = example1_scheme(program, tuple(range(count)))
        result = run_parallel(parallel, database)
        assert result.metrics.total_sent() == 0
        expected = evaluate(program, database)
        assert (result.relation("p").as_set()
                == expected.relation("p").as_set())


@st.composite
def random_general_specs(draw, program, processors):
    """Random legal per-rule specs for the general rewrite."""
    shared_h = HashDiscriminator(processors, salt=draw(st.integers(0, 50)))
    specs = {}
    for index, rule in enumerate(program.proper_rules()):
        body_vars = list(rule.body_variables())
        sequence = tuple(draw(st.lists(st.sampled_from(body_vars),
                                       min_size=0, max_size=2)))
        specs[index] = RuleSpec(sequence, shared_h)
    return specs


class TestGeneralSchemeRandomSpecs:
    @given(st.data(), edge_lists, st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_any_specs_correct_and_nonredundant(self, data, edges, count):
        program = nonlinear_ancestor_program()
        processors = tuple(range(count))
        specs = data.draw(random_general_specs(program, processors))
        database = _par_db(edges)
        parallel = rewrite_general(program, processors, specs)
        result = run_parallel(parallel, database)
        expected = evaluate(program, database)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())
        assert (result.metrics.total_firings()
                <= expected.counters.total_firings())

    @given(edge_lists, edge_lists, st.integers(2, 3), st.integers(0, 30))
    @settings(max_examples=20, deadline=None)
    def test_same_generation_with_delay(self, up_down, flat, count, seed):
        """Asynchrony injection never changes the pooled answer."""
        program = same_generation_program()
        database = Database()
        database.declare("up", 2).update(up_down)
        database.declare("down", 2).update(
            [(b, a) for a, b in up_down])
        database.declare("flat", 2).update(flat)
        parallel = rewrite_general(program, tuple(range(count)))
        delayed = run_parallel(parallel, database, delay_probability=0.4,
                               seed=seed)
        expected = evaluate(program, database)
        assert (delayed.relation("sg").as_set()
                == expected.relation("sg").as_set())
