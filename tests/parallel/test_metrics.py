"""Unit tests for parallel metrics and the cost model."""

import pytest

from repro.parallel import CostModel, ParallelMetrics


def _metrics() -> ParallelMetrics:
    metrics = ParallelMetrics(scheme="test", processors=(0, 1))
    metrics.rounds = 2
    metrics.firings = {0: 10, 1: 6}
    metrics.probes = {0: 4, 1: 2}
    metrics.sent[(0, 1)] = 5
    metrics.sent[(1, 0)] = 0
    metrics.self_delivered[0] = 3
    metrics.per_round_work = [{0: 8.0, 1: 2.0}, {0: 6.0, 1: 6.0}]
    metrics.per_round_sent = [{0: 3, 1: 0}, {0: 2, 1: 0}]
    metrics.per_round_received = [{1: 3}, {1: 2}]
    return metrics


class TestAggregates:
    def test_totals(self):
        metrics = _metrics()
        assert metrics.total_firings() == 16
        assert metrics.total_work() == 22
        assert metrics.total_sent() == 5
        assert metrics.total_self_delivered() == 3

    def test_used_channels_excludes_empty(self):
        assert _metrics().used_channels() == {(0, 1)}

    def test_redundancy(self):
        metrics = _metrics()
        assert metrics.redundancy_vs(16) == 0
        assert metrics.redundancy_vs(10) == 6
        assert metrics.redundancy_vs(20) == -4


class TestCostModel:
    def test_makespan_is_sum_of_round_peaks(self):
        metrics = _metrics()
        # Round 1: max(8 + 3, 2 + 3) = 11; round 2: max(6+2, 6+2) = 8.
        assert metrics.makespan(CostModel(send_cost=1.0, recv_cost=1.0)) == 19

    def test_round_overhead(self):
        metrics = _metrics()
        base = metrics.makespan(CostModel())
        assert metrics.makespan(CostModel(round_overhead=5.0)) == base + 10

    def test_speedup(self):
        metrics = _metrics()
        span = metrics.makespan()
        assert metrics.speedup_vs(2 * span) == pytest.approx(2.0)

    def test_speedup_zero_span(self):
        metrics = ParallelMetrics(scheme="x", processors=(0,))
        assert metrics.speedup_vs(10) == float("inf")
        assert metrics.speedup_vs(0) == 1.0

    def test_asymmetric_send_recv_costs(self):
        metrics = _metrics()
        # Round 1: max(8 + 2*3, 2 + 0.5*3) = 14;
        # round 2: max(6 + 2*2, 6 + 0.5*2) = 10.
        cost = CostModel(send_cost=2.0, recv_cost=0.5)
        assert metrics.makespan(cost) == pytest.approx(24.0)

    def test_free_communication_reduces_to_work_peaks(self):
        metrics = _metrics()
        # Round peaks on raw work alone: max(8, 2) + max(6, 6) = 14.
        cost = CostModel(send_cost=0.0, recv_cost=0.0)
        assert metrics.makespan(cost) == pytest.approx(14.0)

    def test_critical_processor_may_differ_per_round(self):
        metrics = ParallelMetrics(scheme="x", processors=(0, 1))
        metrics.per_round_work = [{0: 10.0, 1: 1.0}, {0: 1.0, 1: 10.0}]
        metrics.per_round_sent = [{}, {}]
        metrics.per_round_received = [{}, {}]
        # Each round is paced by a different processor: 10 + 10, not
        # the per-processor sums 11 and 11.
        assert metrics.makespan(CostModel()) == pytest.approx(20.0)

    def test_no_rounds_means_zero_makespan(self):
        metrics = ParallelMetrics(scheme="x", processors=(0, 1))
        assert metrics.makespan(CostModel(round_overhead=99.0)) == 0.0

    def test_makespan_monotone_in_costs(self):
        metrics = _metrics()
        cheap = metrics.makespan(CostModel(send_cost=0.5, recv_cost=0.5))
        dear = metrics.makespan(CostModel(send_cost=2.0, recv_cost=2.0))
        assert cheap < metrics.makespan(CostModel()) < dear


class TestFairness:
    def test_perfect_balance(self):
        metrics = ParallelMetrics(scheme="x", processors=(0, 1))
        metrics.firings = {0: 5, 1: 5}
        metrics.probes = {0: 0, 1: 0}
        assert metrics.load_balance() == pytest.approx(1.0)

    def test_total_imbalance(self):
        metrics = ParallelMetrics(scheme="x", processors=(0, 1))
        metrics.firings = {0: 10, 1: 0}
        assert metrics.load_balance() == pytest.approx(0.5)

    def test_no_work_is_balanced(self):
        metrics = ParallelMetrics(scheme="x", processors=(0, 1))
        assert metrics.load_balance() == 1.0

    def test_utilisation_no_rounds(self):
        metrics = ParallelMetrics(scheme="x", processors=(0, 1))
        assert metrics.utilisation() == 1.0

    def test_utilisation_mixed(self):
        metrics = _metrics()
        # Round 1: mean 5 / peak 8; round 2: mean 6 / peak 6.
        assert metrics.utilisation() == pytest.approx((5 / 8 + 1.0) / 2)


class TestSummary:
    def test_summary_keys(self):
        summary = _metrics().summary()
        for key in ("scheme", "processors", "rounds", "firings", "sent",
                    "self_delivered", "channels_used", "load_balance"):
            assert key in summary
        assert summary["processors"] == 2
        assert summary["sent"] == 5
