"""Stale-synchronous execution on the multiprocessing executor.

Two layers.  The ``mp``-marked tests spawn real worker processes and
check that ``sync="ssp"`` never changes the pooled answer — alone,
under channel faults, and under kill + restart recovery.  Real mp runs
are too fast and too racy to pin *throttling* behaviour, so the
enforcement test drives :func:`~repro.parallel.mp.worker.worker_main`
in-process instead: a thread, plain ``queue.Queue`` objects, and
fabricated ``(probe, seq, horizon)`` messages.  The worker trusts
whatever horizon the coordinator broadcasts, which makes the bound
deterministic to test: feed a horizon, watch the clock stop at
``horizon + staleness``.
"""

import queue
import threading
import time

import pytest

from repro.engine import evaluate
from repro.errors import ExecutionError
from repro.facts import Database
from repro.parallel import (
    build_fault_plan,
    example3_scheme,
    hash_scheme,
    rewrite_general,
)
from repro.parallel.mp import run_multiprocessing
from repro.parallel.mp.protocol import ACK, PROBE, RESULT, STOP
from repro.parallel.mp.runner import _picklable_local
from repro.parallel.mp.worker import worker_main
from repro.workloads import (
    ancestor_program,
    random_dag_edges,
    same_generation_database,
    same_generation_program,
)


class TestValidation:
    def test_unknown_sync_rejected(self, ancestor, chain_db):
        program = example3_scheme(ancestor, (0, 1))
        with pytest.raises(ExecutionError, match="unknown sync mode"):
            run_multiprocessing(program, chain_db, sync="async")

    def test_zero_staleness_rejected(self, ancestor, chain_db):
        program = example3_scheme(ancestor, (0, 1))
        with pytest.raises(ExecutionError, match="staleness >= 1"):
            run_multiprocessing(program, chain_db, sync="ssp", staleness=0)


@pytest.mark.mp
class TestMpSSPAnswers:
    def test_matches_sequential_on_dag(self, ancestor):
        database = Database.from_facts(
            {"par": random_dag_edges(40, parents=2, seed=5)})
        program = example3_scheme(ancestor, (0, 1, 2))
        result = run_multiprocessing(program, database, timeout=60,
                                     sync="ssp", staleness=2)
        expected = evaluate(ancestor, database)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())
        assert result.metrics.sync == "ssp"
        assert result.metrics.staleness == 2
        assert result.metrics.summary()["sync"] == "ssp(2)"

    def test_tight_bound_same_generation(self):
        program = same_generation_program()
        database = same_generation_database(pairs=3, depth=2, seed=5)
        parallel = rewrite_general(program, (0, 1))
        result = run_multiprocessing(parallel, database, timeout=60,
                                     sync="ssp", staleness=1)
        expected = evaluate(program, database)
        assert (result.relation("sg").as_set()
                == expected.relation("sg").as_set())

    def test_legacy_mode_reports_bsp(self, ancestor, chain_db):
        program = example3_scheme(ancestor, (0, 1))
        result = run_multiprocessing(program, chain_db, timeout=60)
        assert result.metrics.sync == "bsp"
        assert result.metrics.staleness is None


@pytest.mark.mp
@pytest.mark.faultinjection
class TestMpSSPUnderFaults:
    def test_exact_under_kill_restart(self, ancestor, tree_db):
        program = hash_scheme(ancestor, (0, 1, 2))
        plan = build_fault_plan(["kill:1@10"])
        result = run_multiprocessing(program, tree_db, faults=plan,
                                     recovery="restart", timeout=60,
                                     sync="ssp", staleness=2)
        expected = evaluate(ancestor, tree_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())
        assert result.metrics.restarts == 1

    def test_exact_under_channel_faults(self, ancestor, tree_db):
        program = example3_scheme(ancestor, (0, 1, 2))
        plan = build_fault_plan(["dup:0.3", "delay:0.3"], seed=7)
        result = run_multiprocessing(program, tree_db, faults=plan,
                                     timeout=60, sync="ssp", staleness=2)
        expected = evaluate(ancestor, tree_db)
        assert (result.relation("anc").as_set()
                == expected.relation("anc").as_set())


class _InProcessWorker:
    """Drive ``worker_main`` in a thread over plain ``queue.Queue``s.

    Single-processor programs route every derivation to themselves, so
    the worker holds pending input for as many semi-naive steps as the
    recursion is deep — long enough to observe throttling — without any
    real peer or process machinery.
    """

    def __init__(self, parallel, database, sync="ssp", staleness=1):
        proc = parallel.processors[0]
        self.inbox = queue.Queue()
        self.coordinator = queue.Queue()
        self.thread = threading.Thread(
            target=worker_main,
            args=(parallel.program_for(proc),
                  _picklable_local(parallel, proc, database),
                  self.inbox, {proc: self.inbox}, self.coordinator,
                  False, None, 0, sync, staleness),
            daemon=True)

    def start(self):
        self.thread.start()

    def probe(self, seq, horizon):
        self.inbox.put((PROBE, seq, horizon))

    def next_ack(self, timeout=10.0):
        while True:
            message = self.coordinator.get(timeout=timeout)
            if message[0] == ACK:
                return message

    def stop(self, timeout=10.0):
        self.inbox.put((STOP,))
        while True:
            message = self.coordinator.get(timeout=timeout)
            if message[0] == RESULT:
                self.thread.join(timeout=timeout)
                return message


class TestThrottleEnforcement:
    def _chain_setup(self, length=24):
        program = ancestor_program()
        database = Database.from_facts(
            {"par": [(i, i + 1) for i in range(length)]})
        parallel = hash_scheme(program, (0,))
        return program, database, parallel

    @pytest.mark.parametrize("staleness", [1, 3])
    def test_clock_never_exceeds_horizon_plus_staleness(self, staleness):
        program, database, parallel = self._chain_setup()
        worker = _InProcessWorker(parallel, database, staleness=staleness)
        # Horizon 0 is in the inbox before the first step burst, so the
        # bound applies from the very first probe wave.
        worker.probe(1, 0)
        worker.start()
        horizon = 0
        seq = 1
        final_stats = None
        for _ in range(200):
            ack = worker.next_ack()
            _, _proc, _seq, _sent, _recv, _activity, _epoch, clock, pending \
                = ack
            assert clock <= horizon + staleness, (
                f"clock {clock} ran past horizon {horizon} + "
                f"staleness {staleness}")
            if not pending:
                message = worker.stop()
                final_stats = message[3]
                break
            # Play coordinator: this worker is the only pending one, so
            # the horizon is its own clock.
            horizon = clock
            seq += 1
            worker.probe(seq, horizon)
        else:
            pytest.fail("worker never drained its pending input")
        # The bound must have bitten: a 24-step recursion probed one
        # step at a time cannot finish without throttling.
        assert final_stats.throttle_waits >= 1
        assert final_stats.max_lag <= staleness

    def test_result_exact_despite_throttling(self):
        program, database, parallel = self._chain_setup()
        worker = _InProcessWorker(parallel, database, staleness=1)
        worker.probe(1, 0)
        worker.start()
        horizon = 0
        seq = 1
        for _ in range(200):
            ack = worker.next_ack()
            clock, pending = ack[7], ack[8]
            if not pending:
                break
            horizon = clock
            seq += 1
            worker.probe(seq, horizon)
        else:
            pytest.fail("worker never drained its pending input")
        message = worker.stop()
        outputs = message[2]
        expected = evaluate(program, database)
        assert set(outputs["anc"]) == expected.relation("anc").as_set()

    def test_no_probe_means_free_running(self):
        """Before the first horizon arrives the worker runs unthrottled
        (the bound is enforced to within one probe wave)."""
        program, database, parallel = self._chain_setup()
        worker = _InProcessWorker(parallel, database, staleness=1)
        worker.start()
        # Probes carrying no horizon yet: the worker computes to
        # quiescence on its own.  The pause between waves lets it leave
        # the drain loop and step (a horizonless probe is not activity,
        # so back-to-back probes would pin it draining).
        for seq in range(1, 200):
            worker.probe(seq, None)
            ack = worker.next_ack()
            if not ack[8]:  # pending
                break
            time.sleep(0.01)
        else:
            pytest.fail("worker never drained its pending input")
        message = worker.stop()
        final_stats = message[3]
        assert final_stats.throttle_waits == 0
        expected = evaluate(program, database)
        assert set(message[2]["anc"]) == expected.relation("anc").as_set()
