"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.datalog import parse_program
from repro.facts import Database
from repro.workloads import (
    ancestor_program,
    chain3_program,
    example6_program,
    nonlinear_ancestor_program,
    random_dag_edges,
    random_tree_edges,
    same_generation_database,
    same_generation_program,
)


@pytest.fixture
def ancestor():
    """The paper's running example program."""
    return ancestor_program()


@pytest.fixture
def nonlinear_ancestor():
    """Example 8's non-linear ancestor."""
    return nonlinear_ancestor_program()


@pytest.fixture
def chain3():
    """Example 4/7's 3-ary sirup."""
    return chain3_program()


@pytest.fixture
def example6():
    """Example 6's sirup."""
    return example6_program()


@pytest.fixture
def chain_db():
    """A 10-edge chain under ``par``."""
    return Database.from_facts({"par": [(i, i + 1) for i in range(1, 11)]})


@pytest.fixture
def tree_db():
    """A 60-node random tree under ``par``."""
    return Database.from_facts({"par": random_tree_edges(60, seed=7)})


@pytest.fixture
def dag_db():
    """A diamond-rich 50-node DAG under ``par``."""
    return Database.from_facts({"par": random_dag_edges(50, parents=2, seed=11)})


@pytest.fixture
def sg_db():
    """A small same-generation genealogy."""
    return same_generation_database(pairs=3, depth=2, seed=5)


@pytest.fixture
def sg_program():
    """The same-generation program."""
    return same_generation_program()
