"""Tests for relations and their incremental indexes."""

import pytest

from repro.facts import Relation


class TestRelation:
    def test_add_reports_novelty(self):
        relation = Relation("p", 2)
        assert relation.add((1, 2)) is True
        assert relation.add((1, 2)) is False
        assert len(relation) == 1

    def test_arity_enforced(self):
        relation = Relation("p", 2)
        with pytest.raises(ValueError):
            relation.add((1, 2, 3))

    def test_negative_arity_rejected(self):
        with pytest.raises(ValueError):
            Relation("p", -1)

    def test_update_counts_new_only(self):
        relation = Relation("p", 1)
        assert relation.update([(1,), (2,), (1,)]) == 2

    def test_membership_and_iteration(self):
        relation = Relation("p", 2, [(1, 2), (3, 4)])
        assert (1, 2) in relation
        assert (9, 9) not in relation
        assert sorted(relation) == [(1, 2), (3, 4)]

    def test_discard(self):
        relation = Relation("p", 1, [(1,)])
        assert relation.discard((1,)) is True
        assert relation.discard((1,)) is False
        assert len(relation) == 0

    def test_lookup_uses_index(self):
        relation = Relation("p", 2, [(1, 2), (1, 3), (2, 3)])
        assert sorted(relation.lookup((0,), (1,))) == [(1, 2), (1, 3)]
        assert list(relation.lookup((0,), (9,))) == []

    def test_index_maintained_on_add(self):
        relation = Relation("p", 2, [(1, 2)])
        index = relation.index_on((1,))
        relation.add((5, 2))
        assert sorted(index.lookup((2,))) == [(1, 2), (5, 2)]

    def test_index_maintained_on_discard(self):
        relation = Relation("p", 2, [(1, 2), (5, 2)])
        index = relation.index_on((1,))
        relation.discard((1, 2))
        assert list(index.lookup((2,))) == [(5, 2)]

    def test_multi_position_lookup(self):
        relation = Relation("p", 3, [(1, 2, 3), (1, 2, 4), (1, 9, 3)])
        assert sorted(relation.lookup((0, 1), (1, 2))) == [(1, 2, 3), (1, 2, 4)]

    def test_copy_is_independent(self):
        original = Relation("p", 1, [(1,)])
        clone = original.copy()
        clone.add((2,))
        assert len(original) == 1
        assert len(clone) == 2

    def test_copy_can_rename(self):
        clone = Relation("p", 1, [(1,)]).copy(name="p@frag")
        assert clone.name == "p@frag"

    def test_clear(self):
        relation = Relation("p", 1, [(1,), (2,)])
        relation.index_on((0,))
        relation.clear()
        assert len(relation) == 0
        assert list(relation.lookup((0,), (1,))) == []

    def test_equality(self):
        assert Relation("p", 1, [(1,)]) == Relation("p", 1, [(1,)])
        assert Relation("p", 1, [(1,)]) != Relation("p", 1, [(2,)])
        assert Relation("p", 1) != Relation("q", 1)

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Relation("p", 1))

    def test_facts_view_is_live(self):
        relation = Relation("p", 1)
        view = relation.facts()
        relation.add((1,))
        assert (1,) in view
        assert len(view) == 1
