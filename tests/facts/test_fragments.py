"""Tests for fragmentation policies."""

import pytest

from repro.facts import (
    ArbitraryFragmentation,
    FragmentationPlan,
    HashFragmentation,
    Relation,
    SharedFragmentation,
)


def _relation():
    return Relation("par", 2, [(i, i + 1) for i in range(6)])


class TestSharedFragmentation:
    def test_every_processor_gets_everything(self):
        fragments = SharedFragmentation().fragment(_relation(), [0, 1, 2])
        assert all(len(f) == 6 for f in fragments.values())

    def test_fragments_are_copies(self):
        relation = _relation()
        fragments = SharedFragmentation().fragment(relation, [0])
        fragments[0].add((99, 100))
        assert (99, 100) not in relation


class TestHashFragmentation:
    def test_partition_is_disjoint_and_complete(self):
        policy = HashFragmentation((0,), lambda values: values[0] % 3)
        fragments = policy.fragment(_relation(), [0, 1, 2])
        total = sum(len(f) for f in fragments.values())
        assert total == 6
        union = set()
        for fragment in fragments.values():
            assert union.isdisjoint(fragment.as_set())
            union |= fragment.as_set()

    def test_owner(self):
        policy = HashFragmentation((1,), lambda values: values[0] % 2)
        assert policy.owner((3, 4)) == 0
        assert policy.owner((3, 5)) == 1

    def test_unknown_processor_rejected(self):
        policy = HashFragmentation((0,), lambda values: 99)
        with pytest.raises(ValueError):
            policy.fragment(_relation(), [0, 1])


class TestArbitraryFragmentation:
    def test_round_robin_is_balanced(self):
        policy = ArbitraryFragmentation.round_robin(_relation(), [0, 1])
        fragments = policy.fragment(_relation(), [0, 1])
        assert {len(fragments[0]), len(fragments[1])} == {3}

    def test_round_robin_deterministic(self):
        first = ArbitraryFragmentation.round_robin(_relation(), [0, 1])
        second = ArbitraryFragmentation.round_robin(_relation(), [0, 1])
        assert first.assignment == second.assignment

    def test_explicit_assignment(self):
        policy = ArbitraryFragmentation({(0, 1): "a", (1, 2): "b"})
        relation = Relation("par", 2, [(0, 1), (1, 2)])
        fragments = policy.fragment(relation, ["a", "b"])
        assert fragments["a"].as_set() == {(0, 1)}
        assert fragments["b"].as_set() == {(1, 2)}

    def test_owner_raises_on_unassigned(self):
        policy = ArbitraryFragmentation({})
        with pytest.raises(KeyError):
            policy.owner((1, 2))


class TestFragmentationPlan:
    def test_shared_and_partitioned_split(self):
        plan = FragmentationPlan(
            requirements={"par": "shared", "edge": "hash-partitioned"})
        assert plan.shared_predicates() == ("par",)
        assert plan.partitioned_predicates() == ("edge",)

    def test_describe_includes_notes(self):
        plan = FragmentationPlan(requirements={"par": "shared"},
                                 notes={"par": "needed whole by exit rule"})
        text = plan.describe()
        assert "par: shared" in text
        assert "needed whole" in text
