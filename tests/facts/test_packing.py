"""Tests for the packed-column wire encoding.

``unpack_facts(pack_facts(facts))`` must be the identity on fact lists
— the mp executor's routing, dedup and quiescence counting all assume
the wire format is invisible.  The size model in
:mod:`repro.parallel.metrics` must also understand the layout, and the
packed encoding must actually be smaller than the tuple model on the
workloads it targets (int-heavy batches).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.facts import (
    is_packed,
    pack_facts,
    packed_fact_count,
    unpack_columns,
    unpack_facts,
)
from repro.facts.packing import _encode_column
from repro.parallel.metrics import (
    approx_batch_bytes,
    approx_fact_bytes,
    approx_packed_bytes,
)


def _round_trip(facts):
    payload = pack_facts(facts)
    assert is_packed(payload)
    assert packed_fact_count(payload) == len(facts)
    assert unpack_facts(payload) == facts


class TestPackRoundTrip:
    def test_int_pairs(self):
        _round_trip([(1, 2), (3, 4), (5, 6)])

    def test_strings(self):
        _round_trip([("a", "x"), ("b", "x"), ("a", "y")])

    def test_mixed_types(self):
        _round_trip([(1, "a", 2.5), (2, "b", None), (3, "a", 2.5)])

    def test_empty_batch(self):
        payload = pack_facts([])
        assert is_packed(payload)
        assert packed_fact_count(payload) == 0
        assert unpack_facts(payload) == []

    def test_zero_arity(self):
        _round_trip([(), (), ()])

    def test_unpack_columns_matches_rows(self):
        facts = [(1, "a"), (2, "b"), (1, "a")]
        count, arity, columns = unpack_columns(pack_facts(facts))
        assert (count, arity) == (3, 2)
        assert columns == [[1, 2, 1], ["a", "b", "a"]]
        assert list(zip(*columns)) == unpack_facts(pack_facts(facts))

    def test_unpack_columns_degenerate_shapes(self):
        assert unpack_columns(pack_facts([])) == (0, 0, [])
        assert unpack_columns(pack_facts([(), ()])) == (2, 0, [])

    def test_unary(self):
        _round_trip([(7,), (8,)])

    def test_big_int_falls_out_of_int64_column(self):
        facts = [(2 ** 80, 1), (3, 2)]
        payload = pack_facts(facts)
        kinds = [column[0] for column in payload[3]]
        assert kinds[0] != "i"  # too wide for int64
        assert kinds[1] == "i"
        assert unpack_facts(payload) == facts

    def test_bool_not_collapsed_into_int_column(self):
        # bools share equality with 0/1 but must survive as bools.
        facts = [(True, 1), (False, 2)]
        payload = pack_facts(facts)
        assert payload[3][0][0] != "i"
        assert unpack_facts(payload) == facts
        assert all(type(fact[0]) is bool for fact in unpack_facts(payload))

    def test_legacy_list_payload_not_packed(self):
        assert not is_packed([(1, 2), (3, 4)])
        assert not is_packed([])


class TestColumnEncodings:
    def test_int_column_is_raw_bytes(self):
        kind, raw = _encode_column([1, 2, 3])
        assert kind == "i"
        assert len(raw) == 3 * 8

    def test_repetitive_column_dictionary_encoded(self):
        values = ["a", "b"] * 10
        kind, uniques, typecode, raw = _encode_column(values)
        assert kind == "d"
        assert uniques == ("a", "b")
        assert typecode == "H"

    def test_high_cardinality_column_ships_raw(self):
        values = [f"v{i}" for i in range(10)]
        kind, payload = _encode_column(values)
        assert kind == "v"
        assert payload == values


# Values of the kinds Datalog workloads actually route: small ints,
# short strings, None.  bool excluded: True == 1 collapses under set
# semantics, which is the relation layer's (pre-existing) behaviour.
_value = st.one_of(st.integers(-2 ** 70, 2 ** 70),
                   st.text(max_size=6), st.none(), st.floats(allow_nan=False))


class TestPackingProperty:
    @given(st.integers(1, 4).flatmap(
        lambda arity: st.lists(
            st.tuples(*[_value] * arity), min_size=0, max_size=40)))
    @settings(max_examples=120, deadline=None)
    def test_round_trip_identity(self, facts):
        _round_trip(facts)


class TestSizeModel:
    def test_packed_int_batch_smaller_than_tuple_model(self):
        facts = [(i, i + 1) for i in range(32)]
        packed = approx_packed_bytes(pack_facts(facts))
        as_tuples = sum(approx_fact_bytes(fact) for fact in facts)
        assert packed < as_tuples

    def test_batch_bytes_dispatches_on_payload_shape(self):
        facts = [(i, 1) for i in range(16)]
        tuple_batch = approx_batch_bytes([("p", facts)])
        packed_batch = approx_batch_bytes([("p", pack_facts(facts))])
        assert packed_batch < tuple_batch

    def test_packed_bytes_track_dictionary_and_raw_columns(self):
        repetitive = [("a",) for _ in range(32)]
        distinct = [(f"value-{i}",) for i in range(32)]
        cheap = approx_packed_bytes(pack_facts(repetitive))
        costly = approx_packed_bytes(pack_facts(distinct))
        assert cheap < costly
