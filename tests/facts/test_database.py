"""Tests for databases."""

import pytest

from repro.datalog import Atom
from repro.facts import Database, Relation


class TestDatabase:
    def test_from_facts_infers_arity(self):
        database = Database.from_facts({"p": [(1, 2)], "q": [(1,)]})
        assert database.relation("p").arity == 2
        assert database.relation("q").arity == 1

    def test_from_facts_rejects_empty_relation(self):
        with pytest.raises(ValueError):
            Database.from_facts({"p": []})

    def test_from_atoms(self):
        database = Database.from_atoms([Atom.from_fact("p", (1, 2))])
        assert (1, 2) in database.relation("p")

    def test_declare_idempotent(self):
        database = Database()
        first = database.declare("p", 2)
        second = database.declare("p", 2)
        assert first is second

    def test_declare_arity_conflict(self):
        database = Database()
        database.declare("p", 2)
        with pytest.raises(ValueError):
            database.declare("p", 3)

    def test_add_fact_creates_relation(self):
        database = Database()
        assert database.add_fact("p", (1,)) is True
        assert database.add_fact("p", (1,)) is False

    def test_relation_raises_on_missing(self):
        with pytest.raises(KeyError):
            Database().relation("missing")
        assert Database().get("missing") is None

    def test_attach_replaces(self):
        database = Database()
        database.attach(Relation("p", 1, [(1,)]))
        database.attach(Relation("p", 1, [(2,)]))
        assert (2,) in database.relation("p")
        assert (1,) not in database.relation("p")

    def test_names_sorted(self):
        database = Database.from_facts({"zz": [(1,)], "aa": [(2,)]})
        assert database.names() == ("aa", "zz")

    def test_copy_is_deep_for_facts(self):
        original = Database.from_facts({"p": [(1,)]})
        clone = original.copy()
        clone.relation("p").add((2,))
        assert len(original.relation("p")) == 1

    def test_restrict(self):
        database = Database.from_facts({"p": [(1,)], "q": [(2,)]})
        subset = database.restrict(["p", "nope"])
        assert "p" in subset
        assert "q" not in subset

    def test_total_facts(self):
        database = Database.from_facts({"p": [(1,), (2,)], "q": [(3,)]})
        assert database.total_facts() == 3

    def test_same_contents(self):
        left = Database.from_facts({"p": [(1,)]})
        right = Database.from_facts({"p": [(1,)]})
        assert left.same_contents(right)
        right.relation("p").add((2,))
        assert not left.same_contents(right)

    def test_same_contents_treats_missing_as_empty(self):
        left = Database.from_facts({"p": [(1,)]})
        right = Database()
        assert not left.same_contents(right)
        assert left.same_contents(right, names=["q"])
