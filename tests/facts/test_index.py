"""Tests for hash indexes."""

from repro.facts import HashIndex


class TestHashIndex:
    def test_lookup_by_key(self):
        index = HashIndex((0,))
        index.add((1, "a"))
        index.add((1, "b"))
        index.add((2, "c"))
        assert sorted(index.lookup((1,))) == [(1, "a"), (1, "b")]
        assert list(index.lookup((3,))) == []

    def test_key_of(self):
        index = HashIndex((2, 0))
        assert index.key_of(("a", "b", "c")) == ("c", "a")

    def test_discard_removes_and_prunes_bucket(self):
        index = HashIndex((0,))
        index.add((1, "a"))
        index.discard((1, "a"))
        assert list(index.lookup((1,))) == []
        assert len(index) == 0

    def test_discard_absent_is_noop(self):
        index = HashIndex((0,))
        index.add((1, "a"))
        index.discard((2, "b"))
        index.discard((1, "zzz"))
        assert len(index) == 1

    def test_empty_positions_index(self):
        index = HashIndex(())
        index.add((1,))
        index.add((2,))
        assert sorted(index.lookup(())) == [(1,), (2,)]

    def test_len_counts_all_facts(self):
        index = HashIndex((0,))
        for value in range(5):
            index.add((value % 2, value))
        assert len(index) == 5

    def test_add_is_idempotent(self):
        index = HashIndex((0,))
        index.add((1, "a"))
        index.add((1, "a"))
        assert len(index) == 1
        assert list(index.lookup((1,))) == [(1, "a")]

    def test_add_many_matches_repeated_add(self):
        bulk = HashIndex((1,))
        single = HashIndex((1,))
        facts = [(i, i % 3) for i in range(20)] + [(0, 0)]
        bulk.add_many(facts)
        for fact in facts:
            single.add(fact)
        assert len(bulk) == len(single) == 20
        for key in range(3):
            assert sorted(bulk.lookup((key,))) == sorted(
                single.lookup((key,)))

    def test_lookup_preserves_insertion_order(self):
        index = HashIndex((0,))
        facts = [(1, chr(ord("a") + i)) for i in range(8)]
        for fact in facts:
            index.add(fact)
        assert list(index.lookup((1,))) == facts
        index.discard(facts[3])
        expected = facts[:3] + facts[4:]
        assert list(index.lookup((1,))) == expected

    def test_len_tracks_interleaved_add_discard(self):
        index = HashIndex((0,))
        for value in range(100):
            index.add((value % 5, value))
        for value in range(0, 100, 2):
            index.discard((value % 5, value))
        assert len(index) == 50
        index.discard((17, "never added"))
        assert len(index) == 50
