"""Tests for hash indexes."""

from repro.facts import HashIndex


class TestHashIndex:
    def test_lookup_by_key(self):
        index = HashIndex((0,))
        index.add((1, "a"))
        index.add((1, "b"))
        index.add((2, "c"))
        assert sorted(index.lookup((1,))) == [(1, "a"), (1, "b")]
        assert list(index.lookup((3,))) == []

    def test_key_of(self):
        index = HashIndex((2, 0))
        assert index.key_of(("a", "b", "c")) == ("c", "a")

    def test_discard_removes_and_prunes_bucket(self):
        index = HashIndex((0,))
        index.add((1, "a"))
        index.discard((1, "a"))
        assert list(index.lookup((1,))) == []
        assert len(index) == 0

    def test_discard_absent_is_noop(self):
        index = HashIndex((0,))
        index.add((1, "a"))
        index.discard((2, "b"))
        index.discard((1, "zzz"))
        assert len(index) == 1

    def test_empty_positions_index(self):
        index = HashIndex(())
        index.add((1,))
        index.add((2,))
        assert sorted(index.lookup(())) == [(1,), (2,)]

    def test_len_counts_all_facts(self):
        index = HashIndex((0,))
        for value in range(5):
            index.add((value % 2, value))
        assert len(index) == 5
