"""Tests for the columnar fact backend.

The load-bearing property is observable equivalence with the tuple
backend: a :class:`ColumnarRelation` must behave exactly like a
:class:`Relation` under every sequence of Relation-API operations
(docs/DATA_PLANE.md).  The hypothesis test at the bottom drives both
backends through random add/update/discard programs and compares every
observable after every step.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.facts import (
    ColumnarIndex,
    ColumnarRelation,
    Relation,
    fact_backend,
    global_interner,
    make_relation,
    relation_class,
    set_fact_backend,
)


class TestBackendSelection:
    def test_default_is_tuple(self):
        assert fact_backend() in ("tuple", "columnar")
        assert relation_class("tuple") is Relation
        assert relation_class("columnar") is ColumnarRelation

    def test_set_backend_round_trip(self):
        previous = set_fact_backend("columnar")
        try:
            assert fact_backend() == "columnar"
            relation = make_relation("p", 2)
            assert isinstance(relation, ColumnarRelation)
        finally:
            set_fact_backend(previous)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            set_fact_backend("arrow")

    def test_make_relation_explicit_backend(self):
        relation = make_relation("p", 1, [(1,)], backend="columnar")
        assert isinstance(relation, ColumnarRelation)
        assert (1,) in relation


class TestColumnarRelation:
    def test_relation_api_matches_tuple_backend(self):
        tup = Relation("p", 2, [(1, 2), (3, 4)])
        col = ColumnarRelation("p", 2, [(1, 2), (3, 4)])
        assert col == tup
        assert col.add((5, 6)) is True and tup.add((5, 6)) is True
        assert col.add((5, 6)) is False
        assert col.discard((1, 2)) is True and tup.discard((1, 2)) is True
        assert sorted(col) == sorted(tup)
        assert len(col) == len(tup)

    def test_arity_enforced(self):
        relation = ColumnarRelation("p", 2)
        with pytest.raises(ValueError):
            relation.add((1, 2, 3))
        with pytest.raises(ValueError):
            relation.update([(1,)])
        with pytest.raises(ValueError):
            relation.add_new_many([(1,)])

    def test_add_new_many_first_occurrence_order(self):
        relation = ColumnarRelation("p", 1, [(1,)])
        fresh = relation.add_new_many([(2,), (1,), (3,), (2,)])
        assert fresh == [(2,), (3,)]

    def test_columns_decode_through_interner(self):
        relation = ColumnarRelation("p", 2, [("a", 1), ("b", 2)])
        cols = relation.columns()
        assert len(cols) == 2
        interner = global_interner()
        assert [interner.value_of(i) for i in cols[0]] == ["a", "b"]
        assert [interner.value_of(i) for i in cols[1]] == [1, 2]

    def test_columns_appended_on_add_invalidated_on_discard(self):
        relation = ColumnarRelation("p", 1, [(1,)])
        first = relation.columns()
        relation.add((2,))
        second = relation.columns()
        # Additive mutations append to the materialised cache in place
        # (O(new) per round) instead of forcing an O(total) rebuild.
        assert first is second
        interner = global_interner()
        assert [interner.value_of(i) for i in second[0]] == [1, 2]
        relation.update([(3,), (2,)])
        assert [interner.value_of(i) for i in relation.columns()[0]] == [1, 2, 3]
        # Removals still invalidate wholesale.
        relation.discard((1,))
        third = relation.columns()
        assert third is not second
        assert [interner.value_of(i) for i in third[0]] == [2, 3]

    def test_value_columns_cached_and_appended(self):
        relation = ColumnarRelation("p", 2, [("x", 1)])
        cols = relation.value_columns()
        assert cols == [["x"], [1]]
        relation.add_new_many([("y", 2), ("x", 1)])
        assert relation.value_columns() is cols
        assert cols == [["x", "y"], [1, 2]]
        relation.discard(("x", 1))
        assert relation.value_columns() == [["y"], [2]]

    def test_column_values_raw(self):
        relation = ColumnarRelation("p", 2, [("x", 1), ("y", 2)])
        assert relation.column_values(0) == ["x", "y"]
        assert relation.column_values(1) == [1, 2]

    def test_column_array(self):
        relation = ColumnarRelation("p", 1, [(10,), (20,)])
        column = relation.column_array(0)
        decoded = [global_interner().value_of(int(i)) for i in column]
        assert decoded == [10, 20]

    def test_copy_is_independent(self):
        relation = ColumnarRelation("p", 1, [(1,)])
        clone = relation.copy("q")
        clone.add((2,))
        assert len(relation) == 1 and len(clone) == 2
        assert clone.name == "q"

    def test_index_on_returns_columnar_index(self):
        relation = ColumnarRelation("p", 2, [(1, 2), (1, 3)])
        index = relation.index_on((0,))
        assert isinstance(index, ColumnarIndex)
        assert sorted(index.lookup((1,))) == [(1, 2), (1, 3)]


class TestColumnarIndex:
    def test_bucket_column_matches_bucket_order(self):
        relation = ColumnarRelation("p", 2, [(1, 2), (1, 3), (2, 9)])
        index = relation.index_on((0,))
        assert list(index.bucket_column((1,), 1)) == [2, 3]
        assert list(index.bucket_column((1,), 0)) == [1, 1]
        assert list(index.bucket_column((9,), 1)) == []

    def test_bucket_column_cache_invalidated_per_bucket(self):
        relation = ColumnarRelation("p", 2, [(1, 2), (2, 5)])
        index = relation.index_on((0,))
        assert list(index.bucket_column((1,), 1)) == [2]
        other = index.bucket_column((2,), 1)
        relation.add((1, 7))  # mutates bucket (1,) only
        assert list(index.bucket_column((1,), 1)) == [2, 7]
        assert index.bucket_column((2,), 1) is other

    def test_bucket_column_tracks_discard(self):
        relation = ColumnarRelation("p", 2, [(1, 2), (1, 3)])
        index = relation.index_on((0,))
        assert list(index.bucket_column((1,), 1)) == [2, 3]
        relation.discard((1, 2))
        assert list(index.bucket_column((1,), 1)) == [3]


# Random operation programs: each op is (kind, fact-or-facts).
_fact = st.tuples(st.integers(0, 5), st.sampled_from(["a", "b", "c"]))
_op = st.one_of(
    st.tuples(st.just("add"), _fact),
    st.tuples(st.just("discard"), _fact),
    st.tuples(st.just("update"), st.lists(_fact, max_size=6)),
    st.tuples(st.just("add_new_many"), st.lists(_fact, max_size=6)),
)


class TestBackendEquivalenceProperty:
    @given(st.lists(_op, max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_random_op_sequences_agree(self, ops):
        tup = Relation("p", 2)
        col = ColumnarRelation("p", 2)
        tup_index = tup.index_on((0,))
        col_index = col.index_on((0,))
        for kind, payload in ops:
            if kind == "add":
                assert tup.add(payload) == col.add(payload)
            elif kind == "discard":
                assert tup.discard(payload) == col.discard(payload)
            elif kind == "update":
                assert tup.update(payload) == col.update(payload)
            else:
                assert (tup.add_new_many(payload)
                        == col.add_new_many(payload))
            # Every observable, after every step.  The contract is
            # set-level: the tuple backend iterates in set order, the
            # columnar one in insertion order, and nothing may depend
            # on the difference.
            assert sorted(tup) == sorted(col)
            assert tup == col
            assert len(tup) == len(col)
            for key in {(fact[0],) for fact in tup}:
                assert (sorted(tup_index.lookup(key))
                        == sorted(col_index.lookup(key)))
                # The gathered column must stay row-aligned with its
                # own bucket's iteration order.
                assert (list(col_index.bucket_column(key, 1))
                        == [fact[1] for fact in col_index.lookup(key)])

    @given(st.lists(_fact, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_columns_row_aligned_with_iteration(self, facts):
        relation = ColumnarRelation("p", 2, facts)
        interner = global_interner()
        rows = list(zip(*(
            [interner.value_of(i) for i in column]
            for column in relation.columns()))) if len(relation) else []
        assert rows == list(relation)
