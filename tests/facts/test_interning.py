"""Tests for the process-wide constant interner."""

import pytest

from repro.facts import ConstantInterner, global_interner, reset_global_interner


class TestConstantInterner:
    def test_ids_are_dense_and_stable(self):
        interner = ConstantInterner()
        first = interner.intern("a")
        second = interner.intern("b")
        assert (first, second) == (0, 1)
        assert interner.intern("a") == first
        assert len(interner) == 2

    def test_value_round_trip(self):
        interner = ConstantInterner()
        values = ["x", 7, (1, 2), None, 3.5]
        ids = [interner.intern(value) for value in values]
        assert [interner.value_of(i) for i in ids] == values

    def test_intern_many_and_decode_many(self):
        interner = ConstantInterner()
        values = ["a", "b", "a", 9]
        ids = interner.intern_many(values)
        assert ids[0] == ids[2]
        assert interner.decode_many(ids) == values

    def test_intern_fact(self):
        interner = ConstantInterner()
        encoded = interner.intern_fact(("a", 1))
        assert interner.decode_many(encoded) == ["a", 1]

    def test_contains(self):
        interner = ConstantInterner()
        interner.intern("present")
        assert "present" in interner
        assert "absent" not in interner

    def test_distinct_values_distinct_ids(self):
        interner = ConstantInterner()
        ids = {interner.intern(value) for value in range(100)}
        assert len(ids) == 100

    def test_unknown_id_raises(self):
        interner = ConstantInterner()
        with pytest.raises(IndexError):
            interner.value_of(0)

    def test_global_interner_is_process_wide(self):
        reset_global_interner()
        try:
            assert global_interner() is global_interner()
            before = len(global_interner())
            global_interner().intern(object())
            assert len(global_interner()) == before + 1
        finally:
            reset_global_interner()
