"""Integration tests: every example script runs end-to-end.

The examples are the library's living documentation; these tests keep
them from rotting as the API evolves.
"""

import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def _run_example(name, argv=()):
    """Import an example module fresh and call its main()."""
    import importlib.util

    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"),
                                                  path)
    module = importlib.util.module_from_spec(spec)
    old_argv = sys.argv
    sys.argv = [str(path), *argv]
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        _run_example("quickstart.py")
        output = capsys.readouterr().out
        assert "parallel answer matches: True" in output
        assert "redundancy vs sequential: 0" in output

    def test_parallel_transitive_closure(self, capsys):
        _run_example("parallel_transitive_closure.py", ["60", "3"])
        output = capsys.readouterr().out
        assert "example1 (no comm)" in output
        assert "yes" in output
        assert "NO" not in output

    def test_network_derivation(self, capsys):
        _run_example("network_derivation.py")
        output = capsys.readouterr().out
        assert "1 -> 2 -> 3" in output
        assert "x1 - x2 + x3 = v" in output
        assert "Figure 3" in output

    def test_tradeoff_explorer(self, capsys):
        _run_example("tradeoff_explorer.py", ["60", "3"])
        output = capsys.readouterr().out
        assert "keep fraction" in output
        assert "best retention fraction" in output

    @pytest.mark.mp
    def test_same_generation_company(self, capsys):
        _run_example("same_generation_company.py")
        output = capsys.readouterr().out
        assert "answers match = True" in output
        assert "real processes" in output
