"""Tests for the command-line interface."""

import pytest

from repro.cli import main

PROGRAM = """
anc(X, Y) :- par(X, Y).
anc(X, Y) :- par(X, Z), anc(Z, Y).
par(ann, bob).
par(bob, cal).
par(cal, dot).
"""

FACTS = """
par(dot, eve).
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "anc.dl"
    path.write_text(PROGRAM)
    return str(path)


@pytest.fixture
def facts_file(tmp_path):
    path = tmp_path / "facts.dl"
    path.write_text(FACTS)
    return str(path)


class TestRunCommand:
    def test_run_prints_answer(self, program_file, capsys):
        assert main(["run", program_file]) == 0
        output = capsys.readouterr().out
        assert "anc/2: 6 facts" in output
        assert "anc(ann, dot)" in output

    def test_run_with_extra_facts(self, program_file, facts_file, capsys):
        assert main(["run", program_file, "--facts", facts_file]) == 0
        output = capsys.readouterr().out
        assert "anc/2: 10 facts" in output

    def test_run_with_stats(self, program_file, capsys):
        assert main(["run", program_file, "--stats"]) == 0
        assert "firings: 6" in capsys.readouterr().out

    def test_run_naive_method(self, program_file, capsys):
        assert main(["run", program_file, "--method", "naive"]) == 0
        assert "anc/2: 6 facts" in capsys.readouterr().out

    def test_run_query_filter(self, program_file, capsys):
        assert main(["run", program_file, "--query", "anc"]) == 0
        assert "anc/2" in capsys.readouterr().out

    def test_limit_truncates(self, program_file, capsys):
        assert main(["run", program_file, "--limit", "2"]) == 0
        assert "... (4 more)" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["run", "/nonexistent/prog.dl"]) == 2
        assert "error:" in capsys.readouterr().err


class TestParallelCommand:
    @pytest.mark.parametrize("scheme", [
        "example1", "example2", "example3", "hash", "wolfson", "general"])
    def test_every_scheme_checks_out(self, program_file, scheme, capsys):
        code = main(["parallel", program_file, "--scheme", scheme,
                     "-n", "3", "--check"])
        output = capsys.readouterr().out
        assert code == 0
        assert "matches sequential evaluation: True" in output

    def test_tradeoff_scheme_with_keep(self, program_file, capsys):
        code = main(["parallel", program_file, "--scheme", "tradeoff",
                     "--keep", "0.5", "-n", "2", "--check"])
        assert code == 0

    def test_stats_summary(self, program_file, capsys):
        assert main(["parallel", program_file, "--stats", "-n", "2"]) == 0
        output = capsys.readouterr().out
        assert "rounds:" in output
        assert "sent:" in output

    def test_detect_termination(self, program_file, capsys):
        assert main(["parallel", program_file, "-n", "2",
                     "--detect-termination"]) == 0

    def test_delay_injection_still_correct(self, program_file, capsys):
        code = main(["parallel", program_file, "-n", "3", "--check",
                     "--delay-prob", "0.4", "--seed", "11"])
        output = capsys.readouterr().out
        assert code == 0
        assert "matches sequential evaluation: True" in output

    @pytest.mark.mp
    def test_mp_execution(self, program_file, capsys):
        code = main(["parallel", program_file, "-n", "2", "--mp", "--check"])
        output = capsys.readouterr().out
        assert code == 0
        assert "real multiprocessing run" in output
        assert "matches sequential evaluation: True" in output

    @pytest.mark.mp
    def test_mp_stats_include_wall_seconds(self, program_file, capsys):
        code = main(["parallel", program_file, "-n", "2", "--mp", "--stats"])
        output = capsys.readouterr().out
        assert code == 0
        assert "wall_seconds:" in output


class TestTraceCommand:
    @pytest.fixture
    def trace_file(self, program_file, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(["parallel", program_file, "-n", "2",
                     "--trace", str(path)]) == 0
        capsys.readouterr()  # swallow the parallel command's output
        return str(path)

    def test_parallel_announces_trace(self, program_file, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(["parallel", program_file, "-n", "2",
                     "--trace", str(path)]) == 0
        assert f"trace written to {path}" in capsys.readouterr().out

    def test_trace_renders_report(self, trace_file, capsys):
        assert main(["trace", trace_file]) == 0
        output = capsys.readouterr().out
        assert "trace report" in output
        assert "per-processor timeline" in output
        assert "makespan" in output

    def test_trace_json_summary(self, trace_file, capsys):
        import json

        assert main(["trace", trace_file, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["executor"] == "simulator"
        assert summary["firings"] > 0

    def test_trace_cost_knobs(self, trace_file, capsys):
        assert main(["trace", trace_file, "--send-cost", "2.0",
                     "--round-overhead", "1.0"]) == 0
        assert "makespan" in capsys.readouterr().out

    def test_trace_missing_file(self, capsys):
        assert main(["trace", "/nonexistent/run.jsonl"]) == 2
        assert "error:" in capsys.readouterr().err


class TestNetworkCommand:
    def test_cycle_reported_and_no_channels(self, program_file, capsys):
        assert main(["network", program_file]) == 0
        output = capsys.readouterr().out
        assert "cycle at positions (2,)" in output
        assert "0 of 2 possible channels" in output

    def test_explicit_positions(self, program_file, capsys):
        assert main(["network", program_file, "--positions", "1"]) == 0
        output = capsys.readouterr().out
        assert "v(r) = <Z>" in output

    def test_linear_form(self, tmp_path, capsys):
        path = tmp_path / "chain3.dl"
        path.write_text("""
            p(U, V, W) :- s(U, V, W).
            p(U, V, W) :- p(V, W, Z), q(U, Z).
        """)
        assert main(["network", str(path), "--linear", "1,-1,1"]) == 0
        output = capsys.readouterr().out
        assert "acyclic" in output
        assert "[-1, 0, 1, 2]" in output

    def test_not_a_sirup_errors_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad.dl"
        path.write_text("""
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- anc(X, Z), anc(Z, Y).
        """)
        assert main(["network", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestWorkloadsCommand:
    def test_lists_kinds(self, capsys):
        assert main(["workloads"]) == 0
        output = capsys.readouterr().out
        assert "chain" in output
        assert "same-generation" in output


class TestBenchCommand:
    def test_list_shows_matrices(self, capsys):
        assert main(["bench", "list"]) == 0
        output = capsys.readouterr().out
        assert "default" in output
        assert "smoke" in output
        assert "engine-seminaive-dag-64" in output

    def test_run_writes_report(self, tmp_path, capsys):
        path = tmp_path / "BENCH_out.json"
        code = main(["bench", "run", "-o", str(path), "--matrix", "smoke",
                     "--repeats", "1", "--warmup", "0", "--no-baseline",
                     "--only", "engine-seminaive-dag"])
        output = capsys.readouterr().out
        assert code == 0
        assert path.exists()
        assert "1 scenario" in output

        import json
        report = json.loads(path.read_text())
        assert report["bench_format"] == "repro.bench.perf"
        assert report["scenarios"][0]["name"] == "engine-seminaive-dag-64"

    def test_compare_detects_injected_regression(self, tmp_path, capsys):
        import json

        path = tmp_path / "BENCH_ref.json"
        assert main(["bench", "run", "-o", str(path), "--matrix", "smoke",
                     "--repeats", "1", "--warmup", "0", "--no-baseline",
                     "--only", "engine-seminaive-dag"]) == 0
        capsys.readouterr()

        report = json.loads(path.read_text())
        report["scenarios"][0]["counters"]["firings"] = int(
            report["scenarios"][0]["counters"]["firings"] * 2)
        worse = tmp_path / "BENCH_worse.json"
        worse.write_text(json.dumps(report))

        assert main(["bench", "compare", str(path), str(path),
                     "--counters-only"]) == 0
        capsys.readouterr()
        code = main(["bench", "compare", str(path), str(worse),
                     "--counters-only", "--threshold", "0.25"])
        output = capsys.readouterr().out
        assert code == 1
        assert "REGRESSED" in output
        assert "firings" in output

    def test_compare_bad_file_errors_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["bench", "compare", str(bad), str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_profile_prints_hot_functions(self, capsys):
        assert main(["bench", "profile", "engine-seminaive-dag-64",
                     "--top", "5"]) == 0
        output = capsys.readouterr().out
        assert "cumulative time" in output
        assert "per-phase event counts" in output

    def test_unknown_scenario_errors_cleanly(self, capsys):
        assert main(["bench", "profile", "nope"]) == 2
        assert "error:" in capsys.readouterr().err


class TestRecoveryFlags:
    def test_checkpoint_without_mp_rejected(self, program_file, capsys):
        code = main(["parallel", program_file, "-n", "2",
                     "--recovery", "checkpoint"])
        assert code == 2
        assert "--mp" in capsys.readouterr().err

    @pytest.mark.mp
    @pytest.mark.faultinjection
    def test_mp_checkpoint_recovery_end_to_end(self, program_file, capsys):
        code = main(["parallel", program_file, "-n", "2", "--mp", "--check",
                     "--recovery", "checkpoint", "--checkpoint-interval", "1",
                     "--max-restarts", "2", "--inject-fault", "kill:1@2"])
        output = capsys.readouterr().out
        assert code == 0
        assert "matches sequential evaluation: True" in output

    @pytest.mark.mp
    def test_bad_ack_deadline_errors_cleanly(self, program_file, capsys):
        code = main(["parallel", program_file, "-n", "2", "--mp",
                     "--ack-deadline", "0"])
        assert code == 2
        assert "ack deadline" in capsys.readouterr().err


class TestChaosCommand:
    @pytest.mark.mp
    @pytest.mark.faultinjection
    def test_soak_two_seeds(self, capsys):
        assert main(["chaos", "--seeds", "2"]) == 0
        output = capsys.readouterr().out
        assert "2 case(s)" in output
        assert "0 failure(s)" in output

    def test_zero_seeds_rejected(self, capsys):
        assert main(["chaos", "--seeds", "0"]) == 2
        assert "error:" in capsys.readouterr().err
