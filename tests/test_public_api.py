"""Tests for the top-level public API surface and the error hierarchy."""

import pytest

import repro
from repro import errors


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_readme_quickstart(self):
        """The exact snippet from the README must work."""
        from repro import Database, evaluate, parse_program
        from repro.parallel import example3_scheme, run_parallel

        program = parse_program("""
            anc(X, Y) :- par(X, Y).
            anc(X, Y) :- par(X, Z), anc(Z, Y).
        """)
        db = Database.from_facts({"par": [(1, 2), (2, 3), (3, 4)]})
        sequential = evaluate(program, db)
        parallel = run_parallel(example3_scheme(program, [0, 1, 2, 3]), db)
        assert (parallel.relation("anc").as_set()
                == sequential.relation("anc").as_set())

    def test_subpackages_importable(self):
        import repro.bench
        import repro.datalog
        import repro.engine
        import repro.facts
        import repro.network
        import repro.obs
        import repro.parallel
        import repro.parallel.mp
        import repro.workloads

    def test_parallel_all_exports_exist(self):
        import repro.parallel as parallel
        for name in parallel.__all__:
            assert hasattr(parallel, name), name

    def test_network_all_exports_exist(self):
        import repro.network as network
        for name in network.__all__:
            assert hasattr(network, name), name


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in errors.__all__:
            if name == "ReproError":
                continue
            error_type = getattr(errors, name)
            assert issubclass(error_type, errors.ReproError), name

    def test_syntax_error_position_formatting(self):
        error = errors.DatalogSyntaxError("bad token", line=3, column=7)
        assert "line 3" in str(error)
        assert error.line == 3
        assert error.column == 7

    def test_unsafe_is_validation_error(self):
        assert issubclass(errors.UnsafeRuleError,
                          errors.ProgramValidationError)

    def test_catching_base_class(self):
        from repro import parse_program
        with pytest.raises(errors.ReproError):
            parse_program("p(X) :- q(X)")  # missing period
