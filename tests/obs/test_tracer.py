"""Unit tests for the tracer API and its typed events."""

import time

from repro.obs import (
    NULL_TRACER,
    PROBE,
    ROUND_END,
    ROUND_START,
    RULE_FIRED,
    RUN_START,
    SPAN,
    TUPLE_DROPPED,
    TUPLE_RECEIVED,
    TUPLE_SENT,
    InMemorySink,
    NullTracer,
    TraceEvent,
    Tracer,
    WORKER_EXIT,
    WORKER_SPAWN,
    ensure_tracer,
)


class TestNullTracer:
    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert Tracer(InMemorySink()).enabled is True

    def test_all_operations_are_noops(self):
        tracer = NullTracer()
        tracer.run_start("s", ["0"], "simulator")
        tracer.round_start(1)
        tracer.rule_fired("0", "r", (1, 2))
        tracer.tuple_sent("0", "1", "anc")
        tracer.tuple_received("1", "0", "anc")
        tracer.tuple_dropped("1", "anc")
        tracer.probe("0")
        tracer.worker_spawn("0")
        tracer.worker_exit("0")
        with tracer.span("phase"):
            pass
        tracer.close()  # no sink to close, still fine

    def test_ensure_tracer(self):
        assert ensure_tracer(None) is NULL_TRACER
        tracer = Tracer(InMemorySink())
        assert ensure_tracer(tracer) is tracer


class TestTypedEvents:
    def test_each_helper_emits_its_kind(self):
        sink = InMemorySink()
        tracer = Tracer(sink)
        tracer.run_start("example3", ["0", "1"], "simulator")
        tracer.worker_spawn("0")
        tracer.round_start(1)
        tracer.rule_fired("0", "anc :- par", (1, 2))
        tracer.tuple_sent("0", "1", "anc")
        tracer.tuple_received("1", "0", "anc")
        tracer.tuple_dropped("1", "anc")
        tracer.probe(hops=3)
        tracer.round_end(1, work={"0": 2.0})
        tracer.worker_exit("0", firings=1)
        kinds = [event.kind for event in sink.events]
        assert kinds == [RUN_START, WORKER_SPAWN, ROUND_START, RULE_FIRED,
                         TUPLE_SENT, TUPLE_RECEIVED, TUPLE_DROPPED, PROBE,
                         ROUND_END, WORKER_EXIT]

    def test_round_defaults_to_current_round(self):
        sink = InMemorySink()
        tracer = Tracer(sink)
        tracer.rule_fired("0", "r")
        tracer.round_start(7)
        tracer.rule_fired("0", "r")
        assert sink.events[0].round is None
        assert sink.events[2].round == 7

    def test_no_clock_means_no_timestamps(self):
        sink = InMemorySink()
        tracer = Tracer(sink)  # deterministic mode
        tracer.rule_fired("0", "r", (1,))
        assert sink.events[0].ts is None

    def test_clock_stamps_events(self):
        sink = InMemorySink()
        tracer = Tracer(sink, clock=time.monotonic)
        tracer.rule_fired("0", "r")
        assert isinstance(sink.events[0].ts, float)

    def test_fact_payload_is_listified(self):
        sink = InMemorySink()
        Tracer(sink).rule_fired("0", "r", (1, "a"))
        assert sink.events[0].data["fact"] == [1, "a"]

    def test_ingest_round_trips_flat_dicts(self):
        sink = InMemorySink()
        tracer = Tracer(sink)
        payload = {"kind": RULE_FIRED, "proc": "2", "round": 3, "rule": "r"}
        tracer.ingest(payload)
        event = sink.events[0]
        assert (event.kind, event.proc, event.round) == (RULE_FIRED, "2", 3)
        assert event.data == {"rule": "r"}


class TestSpans:
    def test_span_with_clock_records_duration(self):
        sink = InMemorySink()
        tracer = Tracer(sink, clock=time.monotonic)
        with tracer.span("setup", proc="0"):
            pass
        event = sink.events[0]
        assert event.kind == SPAN
        assert event.data["name"] == "setup"
        assert event.data["seconds"] >= 0.0

    def test_span_without_clock_stays_deterministic(self):
        sink = InMemorySink()
        with Tracer(sink).span("setup"):
            pass
        event = sink.events[0]
        assert event.kind == SPAN
        assert "seconds" not in event.data


class TestTraceEvent:
    def test_to_dict_omits_none_fields(self):
        flat = TraceEvent(kind=RULE_FIRED, proc="0", data={"rule": "r"}).to_dict()
        assert flat == {"kind": RULE_FIRED, "proc": "0", "rule": "r"}

    def test_from_dict_inverts_to_dict(self):
        event = TraceEvent(kind=TUPLE_SENT, proc="0", round=2,
                           data={"dst": "1", "pred": "anc"}, ts=1.5)
        assert TraceEvent.from_dict(event.to_dict()) == event

    def test_payload_cannot_shadow_reserved_keys(self):
        sink = InMemorySink()
        Tracer(sink).emit(RULE_FIRED, proc="0", kind_detail="x")
        flat = sink.events[0].to_dict()
        assert flat["kind"] == RULE_FIRED
        assert flat["kind_detail"] == "x"
