"""Simulator traces must be deterministic: equal seeds, equal bytes."""

import json

from repro.obs import JsonlSink, Tracer
from repro.parallel import example3_scheme, run_parallel


def _trace_run(path, program, database, *, delay_probability, seed):
    parallel = example3_scheme(program, (0, 1, 2, 3))
    tracer = Tracer(JsonlSink(str(path)))  # no clock: deterministic mode
    try:
        run_parallel(parallel, database,
                     delay_probability=delay_probability, seed=seed,
                     tracer=tracer)
    finally:
        tracer.close()
    return path.read_bytes()


class TestTraceDeterminism:
    def test_same_seed_byte_identical(self, tmp_path, ancestor, tree_db):
        first = _trace_run(tmp_path / "a.jsonl", ancestor, tree_db,
                           delay_probability=0.3, seed=7)
        second = _trace_run(tmp_path / "b.jsonl", ancestor, tree_db,
                            delay_probability=0.3, seed=7)
        assert first == second

    def test_no_delays_also_deterministic(self, tmp_path, ancestor, chain_db):
        first = _trace_run(tmp_path / "a.jsonl", ancestor, chain_db,
                           delay_probability=0.0, seed=0)
        second = _trace_run(tmp_path / "b.jsonl", ancestor, chain_db,
                            delay_probability=0.0, seed=0)
        assert first == second

    def test_different_seeds_may_reorder_delivery(self, tmp_path, ancestor,
                                                  tree_db):
        # Different seeds delay different tuples; the traces must still
        # each be internally valid JSONL, and both runs converge.
        blob = _trace_run(tmp_path / "a.jsonl", ancestor, tree_db,
                          delay_probability=0.5, seed=1)
        for line in blob.decode("utf-8").splitlines():
            json.loads(line)

    def test_sim_trace_has_no_timestamps(self, tmp_path, ancestor, chain_db):
        blob = _trace_run(tmp_path / "run.jsonl", ancestor, chain_db,
                          delay_probability=0.2, seed=3)
        for line in blob.decode("utf-8").splitlines():
            assert "ts" not in json.loads(line)
