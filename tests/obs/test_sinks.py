"""Unit tests for the trace sinks."""

import json

from repro.obs import (
    AggregateSink,
    InMemorySink,
    JsonlSink,
    RULE_FIRED,
    TUPLE_SENT,
    TraceEvent,
    Tracer,
    event_to_json,
    read_jsonl,
)


def _sample_events():
    return [
        TraceEvent(kind=RULE_FIRED, proc="0", round=1, data={"rule": "r"}),
        TraceEvent(kind=RULE_FIRED, proc="1", round=1, data={"rule": "r"}),
        TraceEvent(kind=TUPLE_SENT, proc="0", round=2,
                   data={"dst": "1", "pred": "anc"}),
    ]


class TestInMemorySink:
    def test_collects_in_order(self):
        sink = InMemorySink()
        for event in _sample_events():
            sink.emit(event)
        assert len(sink) == 3
        assert sink.count(RULE_FIRED) == 2
        assert sink.events[2].kind == TUPLE_SENT

    def test_drain_empties_the_buffer(self):
        sink = InMemorySink()
        sink.emit(_sample_events()[0])
        drained = sink.drain()
        assert len(drained) == 1
        assert len(sink) == 0


class TestJsonlSink:
    def test_round_trips_through_a_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        sink = JsonlSink(str(path))
        events = _sample_events()
        for event in events:
            sink.emit(event)
        sink.close()
        assert sink.lines_written == 3
        assert list(read_jsonl(str(path))) == events

    def test_canonical_encoding_sorts_keys(self):
        event = TraceEvent(kind=TUPLE_SENT, proc="0",
                           data={"pred": "anc", "dst": "1"})
        line = event_to_json(event)
        assert line == '{"dst":"1","kind":"tuple_sent","pred":"anc","proc":"0"}'
        # Compact separators — no spaces anywhere.
        assert " " not in line

    def test_tuples_serialize_as_lists(self):
        event = TraceEvent(kind=RULE_FIRED, proc="0", data={"fact": (1, 2)})
        assert json.loads(event_to_json(event))["fact"] == [1, 2]

    def test_accepts_open_handle(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            sink = JsonlSink(handle)
            sink.emit(_sample_events()[0])
            sink.close()  # must not close a handle it does not own
            assert not handle.closed
        assert len(list(read_jsonl(str(path)))) == 1


class TestAggregateSink:
    def test_counts_by_kind_proc_and_round(self):
        sink = AggregateSink()
        for event in _sample_events():
            sink.emit(event)
        assert sink.by_kind[RULE_FIRED] == 2
        assert sink.by_proc[(RULE_FIRED, "0")] == 1
        assert sink.by_round[(RULE_FIRED, 1)] == 2
        stats = sink.as_dict()
        assert stats["by_kind"][RULE_FIRED] == 2
        assert stats["by_proc"]["rule_fired@0"] == 1
        assert stats["by_round"]["rule_fired@1"] == 2
        assert "span_seconds" not in stats  # no timestamps recorded

    def test_works_as_a_tracer_sink(self):
        sink = AggregateSink()
        tracer = Tracer(sink)
        tracer.rule_fired("0", "r")
        tracer.rule_fired("0", "r")
        assert sink.by_kind[RULE_FIRED] == 2
