"""Counted tuple events: one trace event may now carry ``count`` tuples.

The batched communication path emits ``tuple_sent``/``tuple_received``/
``tuple_dropped`` once per batch with a ``count`` payload instead of
once per tuple.  These tests pin the two compatibility promises:
``count == 1`` keeps the historical payload byte-identical, and every
consumer (:class:`TraceReport`, :class:`AggregateSink`) weights by the
count so totals are indistinguishable from per-tuple streams.
"""

from repro.obs import (
    AggregateSink,
    InMemorySink,
    TUPLE_DROPPED,
    TUPLE_RECEIVED,
    TUPLE_SENT,
    TraceReport,
    Tracer,
    event_to_json,
)


class TestCountPayload:
    def test_count_one_is_byte_identical_to_legacy(self):
        sink = InMemorySink()
        tracer = Tracer(sink)
        tracer.tuple_sent("0", "1", "anc")
        tracer.tuple_sent("0", "1", "anc", count=1)
        (legacy, explicit) = sink.events
        assert "count" not in legacy.data
        assert event_to_json(legacy) == event_to_json(explicit)

    def test_count_gt_one_is_recorded(self):
        sink = InMemorySink()
        Tracer(sink).tuple_received("1", "0", "anc", count=7)
        assert sink.events[0].data["count"] == 7


class TestWeightedConsumers:
    def _traced(self, sink):
        tracer = Tracer(sink)
        tracer.tuple_sent("0", "1", "anc", count=3)
        tracer.tuple_sent("0", "1", "anc")          # legacy single
        tracer.tuple_received("1", "0", "anc", count=4)
        tracer.tuple_dropped("1", "anc", count=2)
        return sink

    def test_report_totals_weight_by_count(self):
        sink = self._traced(InMemorySink())
        report = TraceReport(sink.events)
        assert report.total_sent() == 4
        assert report.sent[("0", "1")] == 4
        assert report.received["1"] == 4
        assert report.dropped["1"] == 2

    def test_aggregate_sink_weights_by_count(self):
        sink = self._traced(AggregateSink())
        assert sink.by_kind[TUPLE_SENT] == 4
        assert sink.by_kind[TUPLE_RECEIVED] == 4
        assert sink.by_kind[TUPLE_DROPPED] == 2
        assert sink.by_proc[(TUPLE_SENT, "0")] == 4

    def test_batched_stream_equals_per_tuple_stream(self):
        """A coalesced trace and a per-tuple trace of the same traffic
        must aggregate identically."""
        batched, per_tuple = InMemorySink(), InMemorySink()
        Tracer(batched).tuple_sent("0", "1", "anc", count=5)
        looped = Tracer(per_tuple)
        for _ in range(5):
            looped.tuple_sent("0", "1", "anc")
        a, b = TraceReport(batched.events), TraceReport(per_tuple.events)
        assert a.total_sent() == b.total_sent() == 5
        assert a.sent == b.sent
