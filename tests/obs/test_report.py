"""Replay tests: a traced run must reconstruct the live metrics exactly."""

import json

import pytest

from repro.obs import InMemorySink, TraceReport, Tracer
from repro.parallel import CostModel, example3_scheme, run_parallel
from repro.parallel.naming import processor_tag


@pytest.fixture
def traced_run(ancestor, tree_db):
    """A 4-processor example3 ancestor run traced to memory."""
    parallel = example3_scheme(ancestor, (0, 1, 2, 3))
    sink = InMemorySink()
    result = run_parallel(parallel, tree_db, tracer=Tracer(sink))
    return parallel, result, TraceReport(sink.events)


class TestReplayMatchesLiveMetrics:
    def test_firings_match_exactly(self, traced_run):
        parallel, result, report = traced_run
        live = {processor_tag(proc): count
                for proc, count in result.metrics.firings.items() if count}
        replayed = {proc: count
                    for proc, count in report.firings.items() if count}
        assert replayed == live

    def test_totals_match(self, traced_run):
        _parallel, result, report = traced_run
        assert report.total_firings() == result.metrics.total_firings()
        assert report.total_sent() == result.metrics.total_sent()
        assert report.rounds == result.metrics.rounds

    def test_channel_traffic_matches(self, traced_run):
        _parallel, result, report = traced_run
        live = {(processor_tag(src), processor_tag(dst)): count
                for (src, dst), count in result.metrics.sent.items() if count}
        replayed = {channel: count
                    for channel, count in report.sent.items() if count}
        assert replayed == live

    @pytest.mark.parametrize("cost", [
        CostModel(),
        CostModel(send_cost=2.0, recv_cost=0.5),
        CostModel(round_overhead=3.0),
    ])
    def test_makespan_matches(self, traced_run, cost):
        _parallel, result, report = traced_run
        assert report.makespan(cost) == pytest.approx(
            result.metrics.makespan(cost))

    def test_processors_in_order(self, traced_run):
        parallel, _result, report = traced_run
        assert report.processors == [processor_tag(proc)
                                     for proc in parallel.processors]


class TestSummaryAndRendering:
    def test_summary_is_json_serializable(self, traced_run):
        _parallel, result, report = traced_run
        summary = report.summary()
        encoded = json.loads(json.dumps(summary))
        assert encoded["firings"] == result.metrics.total_firings()
        assert encoded["sent"] == result.metrics.total_sent()
        assert encoded["executor"] == "simulator"
        for key in ("scheme", "processors", "rounds", "firings", "sent",
                    "channels_used", "makespan"):
            assert key in encoded

    def test_render_contains_all_sections(self, traced_run):
        _parallel, _result, report = traced_run
        text = report.render()
        assert "per-processor timeline" in text
        assert "firings per round" in text
        assert "channel heatmap" in text
        assert "makespan breakdown" in text
        assert "hottest rules" in text

    def test_makespan_breakdown_is_cumulative(self, traced_run):
        _parallel, _result, report = traced_run
        rows = report.makespan_breakdown()
        assert rows
        assert rows[-1][3] == pytest.approx(report.makespan())
        cumulative = 0.0
        for _round, _critical, peak, running in rows:
            cumulative += peak
            assert running == pytest.approx(cumulative)

    def test_empty_trace_renders(self):
        report = TraceReport([])
        assert report.total_firings() == 0
        assert "(no processor activity)" in report.render()

    def test_sequential_trace_uses_seq_proc(self, ancestor, chain_db):
        from repro.engine import evaluate

        sink = InMemorySink()
        evaluate(ancestor, chain_db, tracer=Tracer(sink))
        report = TraceReport(sink.events)
        assert report.executor == "sequential"
        assert set(report.firings) == {"seq"}
        assert report.total_firings() > 0
