"""Tests for the workload registry and canonical programs."""

import pytest

from repro.datalog import as_linear_sirup, is_linear_sirup
from repro.engine import evaluate
from repro.workloads import (
    ancestor_program,
    chain3_program,
    example6_program,
    make_workload,
    nonlinear_ancestor_program,
    reverse_chain_program,
    same_generation_database,
    same_generation_program,
    transitive_closure_program,
    workload_kinds,
)


class TestPrograms:
    def test_sirup_shapes(self):
        assert is_linear_sirup(ancestor_program())
        assert is_linear_sirup(transitive_closure_program())
        assert is_linear_sirup(same_generation_program())
        assert is_linear_sirup(chain3_program())
        assert is_linear_sirup(example6_program())
        assert is_linear_sirup(reverse_chain_program())
        assert not is_linear_sirup(nonlinear_ancestor_program())

    def test_chain3_arity(self):
        assert as_linear_sirup(chain3_program()).arity == 3


class TestWorkloads:
    def test_kinds_registered(self):
        kinds = workload_kinds()
        for expected in ("chain", "cycle", "dag", "tree", "grid",
                         "layered", "nonlinear-dag", "same-generation"):
            assert expected in kinds

    @pytest.mark.parametrize("kind", [
        "chain", "cycle", "dag", "tree", "grid", "layered",
        "nonlinear-dag", "same-generation"])
    def test_every_kind_is_runnable(self, kind):
        workload = make_workload(kind, 24, seed=1)
        result = evaluate(workload.program, workload.database)
        predicate = workload.program.derived_predicates[0]
        assert len(result.relation(predicate)) > 0

    def test_deterministic(self):
        first = make_workload("dag", 30, seed=4)
        second = make_workload("dag", 30, seed=4)
        assert first.database.same_contents(second.database)

    def test_unknown_kind(self):
        with pytest.raises(KeyError):
            make_workload("nope", 10)

    def test_names_carry_parameters(self):
        assert make_workload("chain", 12).name == "chain-12"


class TestSameGenerationDatabase:
    def test_relations_present(self):
        database = same_generation_database(pairs=2, depth=2, seed=0)
        for name in ("up", "down", "flat"):
            assert len(database.relation(name)) > 0

    def test_produces_sg_tuples(self):
        database = same_generation_database(pairs=2, depth=2, seed=0)
        result = evaluate(same_generation_program(), database)
        assert len(result.relation("sg")) > 0
