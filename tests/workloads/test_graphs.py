"""Tests for graph generators."""

from repro.workloads import (
    binary_tree_edges,
    chain_edges,
    cycle_edges,
    grid_edges,
    layered_dag_edges,
    random_dag_edges,
    random_graph_edges,
    random_tree_edges,
)


class TestGenerators:
    def test_chain(self):
        assert chain_edges(3) == [(1, 2), (2, 3), (3, 4)]
        assert chain_edges(0) == []

    def test_cycle(self):
        assert cycle_edges(3) == [(1, 2), (2, 3), (3, 1)]
        assert cycle_edges(0) == []

    def test_binary_tree(self):
        edges = binary_tree_edges(2)
        assert (1, 2) in edges and (1, 3) in edges
        assert (3, 7) in edges

    def test_random_tree_every_node_has_one_parent(self):
        edges = random_tree_edges(30, seed=1)
        children = [child for _parent, child in edges]
        assert sorted(children) == list(range(2, 31))

    def test_random_tree_deterministic(self):
        assert random_tree_edges(30, seed=5) == random_tree_edges(30, seed=5)
        assert random_tree_edges(30, seed=5) != random_tree_edges(30, seed=6)

    def test_random_dag_is_acyclic(self):
        edges = random_dag_edges(40, parents=3, seed=2)
        assert all(parent < child for parent, child in edges)

    def test_random_dag_multi_parent(self):
        edges = random_dag_edges(40, parents=2, seed=2)
        parent_counts = {}
        for _parent, child in edges:
            parent_counts[child] = parent_counts.get(child, 0) + 1
        assert max(parent_counts.values()) == 2

    def test_layered_dag_respects_layers(self):
        edges = layered_dag_edges(4, 5, fanout=2, seed=0)
        for source, target in edges:
            assert (target - 1) // 5 == (source - 1) // 5 + 1

    def test_random_graph_probability_extremes(self):
        assert random_graph_edges(5, 0.0, seed=0) == []
        full = random_graph_edges(5, 1.0, seed=0)
        assert len(full) == 20  # all ordered pairs, no self loops

    def test_grid(self):
        edges = grid_edges(2, 3)
        assert (1, 2) in edges   # right
        assert (1, 4) in edges   # down
        assert (3, 6) in edges
        assert len(edges) == 7
