"""Compile-time derivation of communication networks (paper, Section 5).

Run with::

    python examples/network_derivation.py

Regenerates all four figures of the paper: the dataflow graphs of
Figures 1 and 2, the minimal network graph of Example 6 (Figure 3) by
symbolic enumeration, and the network graph of Example 7 (Figure 4) by
solving the paper's linear equations — then checks which physical
topologies could host each network without indirect routing.
"""

from repro.datalog import Variable
from repro.network import (
    build_linear_system,
    derive_network,
    find_dataflow_cycle,
    format_dataflow,
    hypercube_topology,
    find_embedding,
    ring_topology,
    solve_linear_network,
)
from repro.parallel import TupleDiscriminator
from repro.workloads import ancestor_program, chain3_program, example6_program

U, V, W = Variable("U"), Variable("V"), Variable("W")
X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def main() -> None:
    # Figure 1: the 3-ary chain sirup has an acyclic dataflow graph.
    chain3 = chain3_program()
    print("Figure 1 — p(U,V,W) :- p(V,W,Z), q(U,Z)")
    print(f"  dataflow graph: {format_dataflow(chain3)}")
    print(f"  cycle: {find_dataflow_cycle(chain3)} "
          "(acyclic: no zero-communication choice exists)\n")

    # Figure 2: ancestor has a self-loop, so Theorem 3 applies.
    ancestor = ancestor_program()
    print("Figure 2 — anc(X,Y) :- par(X,Z), anc(Z,Y)")
    print(f"  dataflow graph: {format_dataflow(ancestor)}")
    print(f"  cycle at positions {find_dataflow_cycle(ancestor)}: "
          "discriminating on Y gives a communication-free execution\n")

    # Figure 3: Example 6's minimal network over processors {0,1}^2.
    example6 = example6_program()
    network6 = derive_network(example6, v_r=(Y, Z), v_e=(X, Y),
                              h=TupleDiscriminator(2))
    print("Figure 3 — p(X,Y) :- p(Y,Z), r(X,Z) with h(a,b) = (g(a), g(b))")
    print("  minimal network graph (remote edges):")
    for line in network6.to_ascii().splitlines():
        print(f"    {line}")
    remote, complete = network6.degree_summary()
    print(f"  {remote} of {complete} possible channels can ever be used\n")

    # Figure 4: Example 7 via the paper's linear equations.
    systems = build_linear_system(chain3, v_r=(V, W, Z), v_e=(U, V, W),
                                  coefficients=(1, -1, 1))
    network7 = solve_linear_network(chain3, v_r=(V, W, Z), v_e=(U, V, W),
                                    coefficients=(1, -1, 1))
    print("Figure 4 — same program, h = g(a1) - g(a2) + g(a3), "
          f"processors {sorted(network7.processors)}")
    print("  the compile-time linear system (recursive producer):")
    for line in systems[1].render().splitlines():
        print(f"    {line}")
    print("  solutions (u, v) over x in {0,1}^4 give the network graph:")
    for line in network7.to_ascii().splitlines():
        print(f"    {line}")

    # Section 5's motivation: adapt the execution to an architecture.
    print("\nMapping Figure 3's network onto physical topologies:")
    cube = hypercube_topology(2)
    mapping = find_embedding(network6, cube)
    print(f"  2-cube: {'fits via renaming ' + str(mapping) if mapping else 'does not fit (a diagonal channel is needed)'}")
    ring = ring_topology(list(network6.processors))
    mapping = find_embedding(network6, ring)
    print(f"  bidirectional ring: "
          f"{'fits via renaming ' + str(mapping) if mapping else 'does not fit'}")


if __name__ == "__main__":
    main()
