"""Explore the redundancy/communication spectrum (paper, Section 6).

Run with::

    python examples/tradeoff_explorer.py [size] [processors]

Each processor keeps a fraction of the tuples it generates for
self-processing and routes the rest by a shared hash function.  Sweeping
that fraction from 0 to 1 traces the paper's spectrum whose extremes
are the non-redundant Section 3 scheme and Wolfson's communication-free
scheme — and shows how the best point depends on how expensive a
transmitted tuple is.
"""

import sys

from repro.bench import sequential_baseline, tradeoff_sweep
from repro.parallel import CostModel, run_parallel, tradeoff_scheme
from repro.workloads import make_workload


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    count = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    workload = make_workload("dag", size, seed=9)
    processors = tuple(range(count))

    print(f"workload: {workload.description}, {count} processors\n")
    table = tradeoff_sweep(workload, processors,
                           fractions=(0.0, 0.2, 0.4, 0.6, 0.8, 1.0))
    print(table.render())

    # Which spectrum point is best, per communication cost?
    _output, seq = sequential_baseline(workload)
    seq_work = seq.total_firings() + seq.probes
    print("\nbest retention fraction per communication cost "
          "(modelled makespan):")
    fractions = (0.0, 0.25, 0.5, 0.75, 1.0)
    results = {}
    for fraction in fractions:
        program = tradeoff_scheme(workload.program, processors, fraction)
        results[fraction] = run_parallel(program, workload.database)
    for send_cost in (0.0, 0.5, 1.0, 2.0, 5.0):
        cost = CostModel(send_cost=send_cost, recv_cost=send_cost)
        best = max(fractions,
                   key=lambda f: results[f].metrics.speedup_vs(seq_work, cost))
        speedup = results[best].metrics.speedup_vs(seq_work, cost)
        print(f"  send cost {send_cost:4.1f}: keep {best:.2f} local "
              f"(speedup {speedup:.2f})")
    print("\npaper: 'more communication would lead to lesser redundancy, "
          "and vice-versa' — the compiler should pick the point matching "
          "the architecture (Section 8).")


if __name__ == "__main__":
    main()
