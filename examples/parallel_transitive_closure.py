"""Transitive closure over a partitioned edge relation.

Run with::

    python examples/parallel_transitive_closure.py [nodes] [processors]

The Valduriez–Khoshafian scenario (paper, Example 2): the edge relation
is horizontally partitioned across processors *before* the query
arrives — the system cannot choose the placement.  We compare the three
Section 4 schemes on the same data and show the paper's trade-off
between communication, broadcast traffic and storage, plus Wolfson's
redundant baseline.
"""

import sys

from repro import evaluate
from repro.bench import compare_schemes
from repro.workloads import make_workload


def main() -> None:
    nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    count = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    workload = make_workload("dag", nodes, seed=7)
    print(f"workload: {workload.description}")
    sequential = evaluate(workload.program, workload.database)
    print(f"sequential: {len(sequential.relation('anc'))} facts, "
          f"{sequential.counters.total_firings()} firings\n")

    table = compare_schemes(workload, range(count))
    print(table.render())

    print("\nHow to read this (paper, Section 4):")
    print(" * example1 never communicates but needs the base relation "
          "replicated at every processor (replication = N);")
    print(" * example2 runs on ANY pre-existing partition "
          "(replication = 1) but broadcasts every produced tuple;")
    print(" * example3 sits in between: disjoint fragments and exactly "
          "one point-to-point transfer per tuple;")
    print(" * wolfson trades all communication away for redundant "
          "computation (positive redundancy column).")


if __name__ == "__main__":
    main()
