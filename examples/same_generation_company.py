"""Same-generation peers in an org chart, on real OS processes.

Run with::

    python examples/same_generation_company.py

A non-linear, multi-relation workload for the general scheme of
Section 7: ``sg(X, Y)`` holds when employees X and Y sit at the same
depth of the reporting hierarchy (possibly in different departments
connected by ``flat`` peer links).  The program is rewritten with
per-rule discriminating sequences, executed first on the deterministic
simulator and then on real ``multiprocessing`` workers with
counting-based termination detection.
"""

from repro import Database, evaluate, parse_program
from repro.parallel import rewrite_general, run_parallel
from repro.parallel.mp import run_multiprocessing


def org_chart() -> Database:
    """Two departments, three levels each, bridged at the top."""
    up = [  # up(Employee, Manager)
        ("dana", "bo"), ("eli", "bo"), ("fay", "cat"), ("gus", "cat"),
        ("bo", "ava"), ("cat", "ava"),
        ("ivy", "hal"), ("jon", "hal"), ("kim", "lee"), ("max", "lee"),
        ("hal", "nia"), ("lee", "nia"),
    ]
    flat = [("ava", "nia")]  # the two VPs are peers
    down = [(manager, employee) for employee, manager in up]
    database = Database()
    database.declare("up", 2).update(up)
    database.declare("flat", 2).update(flat)
    database.declare("down", 2).update(down)
    return database


def main() -> None:
    program = parse_program("""
        sg(X, Y) :- flat(X, Y).
        sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
    """)
    database = org_chart()

    sequential = evaluate(program, database)
    peers = sorted(sequential.relation("sg"))
    print(f"{len(peers)} same-generation pairs, e.g.:")
    for pair in peers[:6]:
        print(f"  sg{pair}")

    # Section 7: per-rule discriminating sequences, derived automatically.
    parallel_program = rewrite_general(program, processors=(0, 1, 2))
    print("\nbase-relation storage required:")
    print("  " + parallel_program.fragmentation.describe().replace(
        "\n", "\n  "))

    simulated = run_parallel(parallel_program, database)
    print(f"\nsimulated cluster: answers match = "
          f"{simulated.relation('sg').as_set() == set(peers)}; "
          f"{simulated.metrics.rounds} rounds, "
          f"{simulated.metrics.total_sent()} tuples sent, "
          f"redundancy = {simulated.metrics.redundancy_vs(sequential.counters.total_firings())}"
          " (Theorem 6: never positive)")

    real = run_multiprocessing(parallel_program, database, timeout=60)
    print(f"real processes:    answers match = "
          f"{real.relation('sg').as_set() == set(peers)}; "
          f"{real.wall_seconds:.2f}s wall, "
          f"{real.metrics.control_messages} termination probes")


if __name__ == "__main__":
    main()
