"""Quickstart: evaluate a recursive query sequentially and in parallel.

Run with::

    python examples/quickstart.py

Covers the core API surface: parsing a Datalog program, loading facts,
sequential semi-naive evaluation, rewriting the program for four
processors with a discriminating function (the paper's Example 3
choice), and executing it on the simulated cluster.
"""

from repro import Database, evaluate, parse_program
from repro.parallel import example3_scheme, run_parallel


def main() -> None:
    # The paper's running example: who is an ancestor of whom?
    program = parse_program("""
        anc(X, Y) :- par(X, Y).
        anc(X, Y) :- par(X, Z), anc(Z, Y).
    """)

    # A small family tree: par(X, Y) means X is a parent of Y.
    database = Database.from_facts({
        "par": [
            ("alice", "bob"), ("alice", "carol"),
            ("bob", "dave"), ("carol", "erin"),
            ("dave", "fred"), ("erin", "gina"),
        ],
    })

    # 1. Sequential bottom-up (semi-naive) evaluation.
    sequential = evaluate(program, database)
    print(f"sequential answer: {len(sequential.relation('anc'))} ancestor "
          f"facts in {sequential.counters.iterations} iterations")
    for ancestor, descendant in sorted(sequential.relation("anc")):
        print(f"  anc({ancestor}, {descendant})")

    # 2. Parallelise for 4 processors: hash-partition the recursion on
    #    the first attribute (the paper's Example 3).
    parallel_program = example3_scheme(program, processors=[0, 1, 2, 3])
    print("\nbase-relation storage required by this scheme:")
    print("  " + parallel_program.fragmentation.describe())

    result = run_parallel(parallel_program, database)
    metrics = result.metrics
    print(f"\nparallel answer matches: "
          f"{result.relation('anc').as_set() == sequential.relation('anc').as_set()}")
    print(f"rounds: {metrics.rounds}, tuples sent between processors: "
          f"{metrics.total_sent()}, kept local: "
          f"{metrics.total_self_delivered()}")
    print(f"firings per processor: "
          f"{dict(sorted(metrics.firings.items()))}")
    print(f"redundancy vs sequential: "
          f"{metrics.redundancy_vs(sequential.counters.total_firings())} "
          f"(Theorem 2 says this is never positive)")


if __name__ == "__main__":
    main()
