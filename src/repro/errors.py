"""Exception hierarchy for the ``repro`` package.

All errors raised by this library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish parse errors from semantic ones.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DatalogSyntaxError",
    "ProgramValidationError",
    "UnsafeRuleError",
    "NotASirupError",
    "EvaluationError",
    "RewriteError",
    "RoutingError",
    "NetworkDerivationError",
    "ExecutionError",
    "ConfigurationError",
]


class ReproError(Exception):
    """Base class for every error raised by this library."""


class DatalogSyntaxError(ReproError):
    """Raised when Datalog source text cannot be parsed.

    Attributes:
        line: 1-based line number of the offending token.
        column: 1-based column number of the offending token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class ProgramValidationError(ReproError):
    """Raised when a syntactically valid program violates a semantic rule.

    Examples: a base predicate appearing in a rule head, or inconsistent
    arities for the same predicate symbol.
    """


class UnsafeRuleError(ProgramValidationError):
    """Raised when a rule is unsafe (a head variable is unbound by the body)."""


class NotASirupError(ReproError):
    """Raised when a program expected to be a linear sirup is not one."""


class EvaluationError(ReproError):
    """Raised when bottom-up evaluation cannot proceed."""


class RewriteError(ReproError):
    """Raised when a parallelisation rewrite is given invalid parameters.

    Typical causes: a discriminating variable that does not occur in the
    rule it discriminates, or an empty processor set.
    """


class RoutingError(ReproError):
    """Raised when a tuple cannot be routed to a processor."""


class NetworkDerivationError(ReproError):
    """Raised when a minimal network graph cannot be derived."""


class ExecutionError(ReproError):
    """Raised when a parallel execution fails or does not terminate cleanly."""


class ConfigurationError(ReproError):
    """Raised when a run is configured with an invalid parameter value.

    Examples: a negative restart budget, a zero checkpoint interval, or
    a non-positive ack deadline.  Distinct from :class:`ExecutionError`
    so CLI callers can tell "you asked for something impossible" from
    "the run itself went wrong".
    """
