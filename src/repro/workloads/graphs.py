"""Deterministic graph generators for recursive-query workloads.

All generators are seeded and return sorted edge lists, so every
benchmark and test run sees identical data.  The shapes matter for the
paper's claims:

* *chains* and *trees* — every derived tuple has a unique derivation,
  so even redundant schemes fire minimally (Wolfson's scheme looks free);
* *diamond-rich DAGs* — many alternative derivations per tuple, which
  is where redundancy (Section 6's trade-off) actually costs work;
* *cyclic graphs* — exercise termination on inputs whose transitive
  closure saturates.
"""

from __future__ import annotations

import random
from typing import List, Tuple

__all__ = [
    "chain_edges",
    "cycle_edges",
    "binary_tree_edges",
    "random_tree_edges",
    "random_dag_edges",
    "layered_dag_edges",
    "powerlaw_dag_edges",
    "random_graph_edges",
    "grid_edges",
]

Edge = Tuple[int, int]


def chain_edges(length: int) -> List[Edge]:
    """A path ``1 -> 2 -> ... -> length+1``."""
    return [(node, node + 1) for node in range(1, length + 1)]


def cycle_edges(length: int) -> List[Edge]:
    """A directed cycle over ``length`` nodes."""
    if length < 1:
        return []
    edges = [(node, node + 1) for node in range(1, length)]
    edges.append((length, 1))
    return edges


def binary_tree_edges(depth: int) -> List[Edge]:
    """A complete binary tree of the given depth (root = 1)."""
    edges: List[Edge] = []
    last = 2 ** depth - 1
    for node in range(1, last + 1):
        for child in (2 * node, 2 * node + 1):
            if child <= 2 ** (depth + 1) - 1:
                edges.append((node, child))
    return edges


def random_tree_edges(nodes: int, seed: int = 0) -> List[Edge]:
    """A random tree: each node links to one earlier node."""
    rng = random.Random(seed)
    edges = [(rng.randrange(1, node), node) for node in range(2, nodes + 1)]
    return sorted(set(edges))


def random_dag_edges(nodes: int, parents: int = 2, seed: int = 0) -> List[Edge]:
    """A random DAG: each node links to up to ``parents`` earlier nodes.

    With ``parents >= 2`` the graph is diamond-rich: most reachability
    facts have several derivations, which makes redundant schemes pay.
    """
    rng = random.Random(seed)
    edges = set()
    for node in range(2, nodes + 1):
        count = min(parents, node - 1)
        for predecessor in rng.sample(range(1, node), count):
            edges.add((predecessor, node))
    return sorted(edges)


def powerlaw_dag_edges(nodes: int, parents: int = 2, exponent: float = 1.2,
                       seed: int = 0) -> List[Edge]:
    """A skewed DAG: predecessors drawn by preferential attachment.

    Each node links to up to ``parents`` earlier nodes chosen with
    probability proportional to ``(out_degree + 1) ** exponent``, so a
    handful of early hub nodes accumulate most of the out-edges.  Under
    a hash partition of the recursive attribute this concentrates the
    derived tuples (and hence the firings) on the processors owning the
    hubs — the skewed load-balancing workload the paper's future-work
    section asks about, and the one where stale-synchronous execution
    visibly beats barriered rounds (``docs/EXECUTION_MODES.md``).
    """
    rng = random.Random(seed)
    edges = set()
    out_degree = [0] * (nodes + 1)
    for node in range(2, nodes + 1):
        weights = [(out_degree[earlier] + 1) ** exponent
                   for earlier in range(1, node)]
        total = sum(weights)
        chosen = set()
        for _attempt in range(min(parents, node - 1)):
            point = rng.random() * total
            cumulative = 0.0
            predecessor = node - 1
            for earlier in range(1, node):
                cumulative += weights[earlier - 1]
                if point < cumulative:
                    predecessor = earlier
                    break
            chosen.add(predecessor)
        for predecessor in chosen:
            edges.add((predecessor, node))
            out_degree[predecessor] += 1
    return sorted(edges)


def layered_dag_edges(layers: int, width: int, fanout: int = 2,
                      seed: int = 0) -> List[Edge]:
    """A layered DAG: ``layers`` ranks of ``width`` nodes each.

    Node ids are ``layer * width + column + 1``; each node feeds
    ``fanout`` random nodes of the next layer.  Long and wide — good for
    speedup studies.
    """
    rng = random.Random(seed)
    edges = set()
    for layer in range(layers - 1):
        for column in range(width):
            source = layer * width + column + 1
            for target_column in rng.sample(range(width), min(fanout, width)):
                target = (layer + 1) * width + target_column + 1
                edges.add((source, target))
    return sorted(edges)


def random_graph_edges(nodes: int, probability: float,
                       seed: int = 0) -> List[Edge]:
    """A directed Erdős–Rényi graph (may contain cycles)."""
    rng = random.Random(seed)
    edges = []
    for source in range(1, nodes + 1):
        for target in range(1, nodes + 1):
            if source != target and rng.random() < probability:
                edges.append((source, target))
    return sorted(edges)


def grid_edges(rows: int, columns: int) -> List[Edge]:
    """A directed grid: right and down edges over ``rows x columns``."""
    edges = []
    for row in range(rows):
        for column in range(columns):
            node = row * columns + column + 1
            if column + 1 < columns:
                edges.append((node, node + 1))
            if row + 1 < rows:
                edges.append((node, node + columns))
    return sorted(edges)
