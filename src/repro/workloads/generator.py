"""Bundled workloads: a program plus a matching seeded database."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..datalog.program import Program
from ..facts.database import Database
from . import graphs
from .programs import (
    ancestor_program,
    nonlinear_ancestor_program,
    same_generation_program,
    transitive_closure_program,
)

__all__ = ["Workload", "make_workload", "workload_kinds", "same_generation_database"]


@dataclass(frozen=True)
class Workload:
    """A runnable experiment input.

    Attributes:
        name: registry key plus parameters (for report rows).
        program: the Datalog program.
        database: the extensional input.
        description: one-line human-readable summary.
    """

    name: str
    program: Program
    database: Database
    description: str


def same_generation_database(pairs: int, depth: int, seed: int = 0) -> Database:
    """A genealogy for the same-generation query.

    Builds ``pairs`` up/down chains of the given depth hanging off a
    shared set of flat links, so ``sg`` derives across chains.
    """
    rng = random.Random(seed)
    up: List[Tuple[int, int]] = []
    down: List[Tuple[int, int]] = []
    flat: List[Tuple[int, int]] = []
    next_node = 1
    tops: List[int] = []
    for _pair in range(pairs):
        bottom_left = next_node
        next_node += 1
        node = bottom_left
        for _level in range(depth):
            parent = next_node
            next_node += 1
            up.append((node, parent))
            node = parent
        tops.append(node)
        bottom_right = next_node
        next_node += 1
        node = bottom_right
        for _level in range(depth):
            parent = next_node
            next_node += 1
            down.append((parent, node))
            node = parent
        flat.append((tops[-1], node))
    # A few random cross links make generations overlap.
    for _extra in range(max(1, pairs // 2)):
        flat.append((rng.choice(tops), rng.choice(tops)))
    database = Database()
    database.declare("up", 2).update(up)
    database.declare("down", 2).update(down)
    database.declare("flat", 2).update(flat)
    return database


def _edge_db(relation: str, edges: Sequence[Tuple[int, int]]) -> Database:
    database = Database()
    database.declare(relation, 2).update(edges)
    return database


_REGISTRY: Dict[str, Callable[[int, int], Workload]] = {}


def _register(kind: str):
    def wrap(builder: Callable[[int, int], Workload]):
        _REGISTRY[kind] = builder
        return builder
    return wrap


@_register("chain")
def _chain(size: int, seed: int) -> Workload:
    return Workload(f"chain-{size}", ancestor_program(),
                    _edge_db("par", graphs.chain_edges(size)),
                    f"ancestor over a {size}-edge chain")


@_register("cycle")
def _cycle(size: int, seed: int) -> Workload:
    return Workload(f"cycle-{size}", transitive_closure_program(),
                    _edge_db("edge", graphs.cycle_edges(size)),
                    f"transitive closure of a {size}-cycle (saturates)")


@_register("tree")
def _tree(size: int, seed: int) -> Workload:
    return Workload(f"tree-{size}", ancestor_program(),
                    _edge_db("par", graphs.random_tree_edges(size, seed)),
                    f"ancestor over a random {size}-node tree")


@_register("dag")
def _dag(size: int, seed: int) -> Workload:
    return Workload(f"dag-{size}", ancestor_program(),
                    _edge_db("par", graphs.random_dag_edges(size, 2, seed)),
                    f"ancestor over a diamond-rich {size}-node DAG")


@_register("skewed")
def _skewed(size: int, seed: int) -> Workload:
    return Workload(f"skewed-{size}", ancestor_program(),
                    _edge_db("par", graphs.powerlaw_dag_edges(size, 2, seed=seed)),
                    f"ancestor over a {size}-node power-law DAG (hub-skewed)")


@_register("layered")
def _layered(size: int, seed: int) -> Workload:
    width = max(2, size // 10)
    layers = max(2, size // width)
    return Workload(
        f"layered-{size}", transitive_closure_program(),
        _edge_db("edge", graphs.layered_dag_edges(layers, width, 2, seed)),
        f"transitive closure of a {layers}x{width} layered DAG")


@_register("grid")
def _grid(size: int, seed: int) -> Workload:
    side = max(2, int(size ** 0.5))
    return Workload(f"grid-{side}x{side}", transitive_closure_program(),
                    _edge_db("edge", graphs.grid_edges(side, side)),
                    f"transitive closure of a {side}x{side} grid")


@_register("nonlinear-dag")
def _nonlinear(size: int, seed: int) -> Workload:
    return Workload(f"nonlinear-dag-{size}", nonlinear_ancestor_program(),
                    _edge_db("par", graphs.random_dag_edges(size, 2, seed)),
                    f"non-linear ancestor over a {size}-node DAG (Example 8)")


@_register("same-generation")
def _same_generation(size: int, seed: int) -> Workload:
    pairs = max(2, size // 8)
    depth = 3
    return Workload(f"same-generation-{size}", same_generation_program(),
                    same_generation_database(pairs, depth, seed),
                    f"same-generation over {pairs} chains of depth {depth}")


def workload_kinds() -> Tuple[str, ...]:
    """The registered workload kinds, sorted."""
    return tuple(sorted(_REGISTRY))


def make_workload(kind: str, size: int, seed: int = 0) -> Workload:
    """Build a named workload.

    Args:
        kind: one of :func:`workload_kinds`.
        size: approximate node count (exact meaning is per kind).
        seed: RNG seed for randomised shapes.

    Raises:
        KeyError: on an unknown kind.
    """
    try:
        builder = _REGISTRY[kind]
    except KeyError:
        raise KeyError(
            f"unknown workload kind {kind!r}; known: {workload_kinds()}"
        ) from None
    return builder(size, seed)
