"""Workload generators: canonical programs and seeded databases."""

from .generator import Workload, make_workload, same_generation_database, workload_kinds
from .graphs import (
    binary_tree_edges,
    chain_edges,
    cycle_edges,
    grid_edges,
    layered_dag_edges,
    powerlaw_dag_edges,
    random_dag_edges,
    random_graph_edges,
    random_tree_edges,
)
from .programs import (
    ancestor_program,
    chain3_program,
    example6_program,
    nonlinear_ancestor_program,
    reverse_chain_program,
    same_generation_program,
    transitive_closure_program,
)

__all__ = [
    "Workload",
    "ancestor_program",
    "binary_tree_edges",
    "chain3_program",
    "chain_edges",
    "cycle_edges",
    "example6_program",
    "grid_edges",
    "layered_dag_edges",
    "make_workload",
    "nonlinear_ancestor_program",
    "powerlaw_dag_edges",
    "random_dag_edges",
    "random_graph_edges",
    "random_tree_edges",
    "reverse_chain_program",
    "same_generation_database",
    "same_generation_program",
    "transitive_closure_program",
    "workload_kinds",
]
