"""Canonical Datalog programs used throughout the paper and this repo."""

from __future__ import annotations

from ..datalog.parser import parse_program
from ..datalog.program import Program

__all__ = [
    "ancestor_program",
    "transitive_closure_program",
    "nonlinear_ancestor_program",
    "same_generation_program",
    "chain3_program",
    "example6_program",
    "reverse_chain_program",
]


def ancestor_program() -> Program:
    """The paper's running example (Sections 2 and 4).

    Right-linear: ``anc(X,Y) :- par(X,Z), anc(Z,Y).``
    """
    return parse_program("""
        anc(X, Y) :- par(X, Y).
        anc(X, Y) :- par(X, Z), anc(Z, Y).
    """)


def transitive_closure_program() -> Program:
    """Transitive closure over ``edge`` — the Valduriez–Khoshafian workload."""
    return parse_program("""
        tc(X, Y) :- edge(X, Y).
        tc(X, Y) :- edge(X, Z), tc(Z, Y).
    """)


def nonlinear_ancestor_program() -> Program:
    """Example 8's non-linear ancestor (quadratic doubling recursion)."""
    return parse_program("""
        anc(X, Y) :- par(X, Y).
        anc(X, Y) :- anc(X, Z), anc(Z, Y).
    """)


def same_generation_program() -> Program:
    """The classic same-generation query (two base relations)."""
    return parse_program("""
        sg(X, Y) :- flat(X, Y).
        sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
    """)


def chain3_program() -> Program:
    """Example 4/7's 3-ary sirup ``p(U,V,W) :- p(V,W,Z), q(U,Z)``.

    Its dataflow graph is the acyclic chain ``1 -> 2 -> 3`` (Figure 1),
    so no zero-communication choice exists (Theorem 3 fails) and the
    minimal network graph of Figure 4 is the interesting object.
    """
    return parse_program("""
        p(U, V, W) :- s(U, V, W).
        p(U, V, W) :- p(V, W, Z), q(U, Z).
    """)


def example6_program() -> Program:
    """Example 6's sirup ``p(X,Y) :- p(Y,Z), r(X,Z)`` (Figure 3)."""
    return parse_program("""
        p(X, Y) :- q(X, Y).
        p(X, Y) :- p(Y, Z), r(X, Z).
    """)


def reverse_chain_program() -> Program:
    """A left-linear ancestor variant (recursion on the first argument).

    Its dataflow graph has a self-loop at position 1, so the
    zero-communication choice discriminates on position 1 instead of 2 —
    a check that Theorem 3's construction reads the cycle, not a
    convention.
    """
    return parse_program("""
        anc(X, Y) :- par(X, Y).
        anc(X, Y) :- anc(X, Z), par(Z, Y).
    """)
