"""The general parallelisation rewrite for all Datalog programs (Section 7).

Every rule ``r_k`` of the source program gets its own discriminating
sequence ``v(r_k)`` and discriminating function ``h_k``.  The program
``T_i`` executed at processor ``i`` consists of

* *processing* rules ``A_out^i :- B_in^i, ..., C_in^i, h_k(v(r_k)) = i``
  (derived body atoms read the local ``_in`` relations, base atoms read
  their per-rule fragment when every variable of ``v(r_k)`` occurs in
  the atom);
* *sending* rules ``C_ij :- C_out^i, h_k(v(r_k)) = j`` for every derived
  atom ``C`` in the body of ``r_k`` — evaluable point-to-point when all
  of ``v(r_k)`` occurs in ``C``, a broadcast otherwise;
* *receiving* and *final pooling* rules as in Section 3.

Theorem 5 (correctness) and Theorem 6 (non-redundancy of successful
ground substitutions) are property-tested against this construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Set, Tuple

from ..datalog.atom import Atom
from ..datalog.program import Program
from ..datalog.rule import Rule
from ..datalog.term import Variable
from ..errors import RewriteError
from ..facts.fragments import FragmentationPlan
from .constraints import HashConstraint
from .discriminating import Discriminator, HashDiscriminator, PartitionDiscriminator
from .naming import channel_name, fragment_name, in_name, out_name
from .plans import ARBITRARY, HASH, SHARED, FragmentSpec, ParallelProgram, ProcessorProgram
from .rewrite_linear import fresh_variables
from .routing import Route, route_positions

__all__ = ["RuleSpec", "auto_specs", "rewrite_general"]

ProcessorId = Hashable


@dataclass(frozen=True)
class RuleSpec:
    """Discriminating choice for one rule.

    Attributes:
        sequence: the discriminating sequence ``v(r_k)``; every variable
            must occur in the rule body.  May be empty, in which case
            the rule fires at the single processor ``h(())``.
        discriminator: the discriminating function ``h_k``.
    """

    sequence: Tuple[Variable, ...]
    discriminator: Discriminator


def auto_specs(program: Program, processors: Sequence[ProcessorId],
               salt: int = 0) -> Dict[int, RuleSpec]:
    """A sensible default choice of per-rule specs.

    For each proper rule: discriminate on the variables of the first
    derived body atom (the recursive input whose tuples are routed) or,
    for non-recursive rules, on the head variables; use one shared hash
    discriminator throughout, which keeps the whole rewriting
    non-redundant (Theorem 6).
    """
    processors = tuple(processors)
    shared_h = HashDiscriminator(processors, salt=salt)
    derived = set(program.derived_predicates)
    specs: Dict[int, RuleSpec] = {}
    for index, rule in enumerate(program.proper_rules()):
        derived_atoms = [a for a in rule.body if a.predicate in derived]
        if derived_atoms:
            sequence = derived_atoms[0].variables()
        else:
            body_vars = set(rule.body_variables())
            sequence = tuple(v for v in rule.head_variables() if v in body_vars)
        specs[index] = RuleSpec(sequence=tuple(sequence), discriminator=shared_h)
    return specs


def rewrite_general(program: Program, processors: Sequence[ProcessorId],
                    specs: Optional[Mapping[int, RuleSpec]] = None,
                    scheme: str = "section7") -> ParallelProgram:
    """Rewrite an arbitrary Datalog program for parallel execution.

    Args:
        program: any validated Datalog program (non-linear and multi-rule
            programs included).
        processors: the processor ids ``P``.
        specs: per-rule (index into ``program.proper_rules()``) choice of
            discriminating sequence and function; defaults to
            :func:`auto_specs`.
        scheme: label used in reports.

    Raises:
        RewriteError: on an invalid spec (unknown rule index or sequence
            variable not in the rule body).
    """
    processors = tuple(processors)
    if not processors:
        raise RewriteError("processor set must be non-empty")
    rules = program.proper_rules()
    if specs is None:
        specs = auto_specs(program, processors)
    for index in specs:
        if not 0 <= index < len(rules):
            raise RewriteError(f"spec for unknown rule index {index}")
    for index, rule in enumerate(rules):
        if index not in specs:
            raise RewriteError(f"missing spec for rule {index}: {rule}")
        body_vars = set(rule.body_variables())
        for variable in specs[index].sequence:
            if variable not in body_vars:
                raise RewriteError(
                    f"discriminating variable {variable} of rule {index} "
                    f"does not occur in the body of: {rule}")

    derived = tuple(program.derived_predicates)
    derived_set = set(derived)
    arities = {pred: program.arity_of(pred) for pred in derived}

    # ------------------------------------------------------------------
    # Base fragments (per rule occurrence), with shared-wins cleanup:
    # a predicate with any non-fragmentable occurrence is kept whole
    # everywhere, since the full copy subsumes any fragment of it.
    # ------------------------------------------------------------------
    fragment_candidates: List[Tuple[FragmentSpec, int]] = []  # (spec, atom id)
    shared_predicates: Set[str] = set()
    atom_rename: Dict[int, str] = {}
    for index, rule in enumerate(rules):
        spec = specs[index]
        for atom in rule.body:
            if atom.predicate in derived_set:
                continue
            positions = (route_positions(spec.sequence, atom)
                         if spec.sequence else None)
            if positions is None:
                shared_predicates.add(atom.predicate)
                atom_rename[id(atom)] = atom.predicate
            else:
                kind = (ARBITRARY
                        if isinstance(spec.discriminator, PartitionDiscriminator)
                        else HASH)
                local = fragment_name(atom.predicate, index)
                fragment_candidates.append((FragmentSpec(
                    predicate=atom.predicate, arity=atom.arity,
                    local_name=local, kind=kind, positions=positions,
                    discriminator=spec.discriminator), id(atom)))

    fragments: List[FragmentSpec] = []
    seen_fragment_names: Set[str] = set()
    requirements: Dict[str, str] = {}
    notes: Dict[str, str] = {}
    for spec_obj, atom_id in fragment_candidates:
        if spec_obj.predicate in shared_predicates:
            atom_rename[atom_id] = spec_obj.predicate
            notes[spec_obj.predicate] = (
                "some occurrences are fragmentable, others not")
        else:
            atom_rename[atom_id] = spec_obj.local_name
            if spec_obj.local_name not in seen_fragment_names:
                seen_fragment_names.add(spec_obj.local_name)
                fragments.append(spec_obj)
            requirements[spec_obj.predicate] = (
                "arbitrary-partition" if spec_obj.kind == ARBITRARY
                else "hash-partitioned")
    for predicate in shared_predicates:
        arity = program.arity_of(predicate)
        fragments.append(FragmentSpec(
            predicate=predicate, arity=arity, local_name=predicate,
            kind=SHARED))
        requirements[predicate] = "shared"
    fragmentation = FragmentationPlan(requirements=requirements, notes=notes)

    # ------------------------------------------------------------------
    # Routes (shared by all processors: Section 7 uses one h per rule).
    # ------------------------------------------------------------------
    routes: List[Route] = []
    for index, rule in enumerate(rules):
        spec = specs[index]
        for atom in rule.body:
            if atom.predicate in derived_set:
                routes.append(Route(
                    predicate=atom.predicate,
                    pattern=atom,
                    positions=route_positions(spec.sequence, atom),
                    discriminator=spec.discriminator))
    routes_tuple = tuple(routes)

    # ------------------------------------------------------------------
    # Per-processor operational programs.
    # ------------------------------------------------------------------
    in_names = {pred: in_name(pred) for pred in derived}
    out_names = {pred: out_name(pred) for pred in derived}

    programs: Dict[ProcessorId, ProcessorProgram] = {}
    for proc in processors:
        init_rules: List[Rule] = []
        processing_rules: List[Rule] = []
        for index, rule in enumerate(rules):
            spec = specs[index]
            body: List[Atom] = []
            has_in = False
            for atom in rule.body:
                if atom.predicate in derived_set:
                    body.append(atom.with_predicate(in_names[atom.predicate]))
                    has_in = True
                else:
                    body.append(atom.with_predicate(atom_rename[id(atom)]))
            rewritten = Rule(
                rule.head.with_predicate(out_names[rule.head.predicate]),
                body,
                (HashConstraint(spec.discriminator, spec.sequence, proc),))
            (processing_rules if has_in else init_rules).append(rewritten)
        programs[proc] = ProcessorProgram(
            processor=proc,
            init_rules=tuple(init_rules),
            processing_rules=tuple(processing_rules),
            routes=routes_tuple,
            in_names=in_names,
            out_names=out_names,
            arities=arities,
        )

    union = _build_union(program, processors, rules, specs, derived, arities)

    return ParallelProgram(
        source=program,
        scheme=scheme,
        processors=processors,
        programs=programs,
        fragments=tuple(fragments),
        fragmentation=fragmentation,
        union=union,
        derived=derived,
    )


def _build_union(program: Program, processors: Tuple[ProcessorId, ...],
                 rules: Tuple[Rule, ...], specs: Mapping[int, RuleSpec],
                 derived: Tuple[str, ...],
                 arities: Mapping[str, int]) -> Program:
    """The literal ``T = ∪_i T_i`` of Section 7 (for the Theorem 5 test)."""
    derived_set = set(derived)
    avoid = {v.name for rule in rules for v in rule.variables()}
    union_rules: List[Rule] = list(
        Rule(head) for head in program.facts())

    for i in processors:
        for index, rule in enumerate(rules):
            spec = specs[index]
            # Processing: A_out^i :- B_in^i, ..., C_in^i, h(v(r)) = i.
            body = [a.with_predicate(in_name(a.predicate, i))
                    if a.predicate in derived_set else a
                    for a in rule.body]
            union_rules.append(Rule(
                rule.head.with_predicate(out_name(rule.head.predicate, i)),
                body,
                (HashConstraint(spec.discriminator, spec.sequence, i),)))
            # Sending: C_ij :- C_out^i, h(v(r)) = j per derived atom C.
            for atom in rule.body:
                if atom.predicate not in derived_set:
                    continue
                sendable = route_positions(spec.sequence, atom) is not None
                for j in processors:
                    constraints = ((HashConstraint(spec.discriminator,
                                                   spec.sequence, j),)
                                   if sendable else ())
                    union_rules.append(Rule(
                        atom.with_predicate(channel_name(atom.predicate, i, j)),
                        (atom.with_predicate(out_name(atom.predicate, i)),),
                        constraints))
        for pred in derived:
            pool_vars = fresh_variables(arities[pred], avoid)
            # Receiving: t_in^i(W) :- t_ji(W).
            for j in processors:
                union_rules.append(Rule(
                    Atom(in_name(pred, i), pool_vars),
                    (Atom(channel_name(pred, j, i), pool_vars),)))
            # Final pooling: t(W) :- t_out^i(W).
            union_rules.append(Rule(
                Atom(pred, pool_vars),
                (Atom(out_name(pred, i), pool_vars),)))
    return Program(union_rules)
