"""The parallel framework: discriminating functions, rewrites, execution."""

from .chaos import ChaosCase, ChaosOutcome, run_chaos
from .constraints import HashConstraint
from .discriminating import (
    ConstantDiscriminator,
    Discriminator,
    DiscriminatorFamily,
    HashDiscriminator,
    LinearDiscriminator,
    LocalRetentionFamily,
    ModuloDiscriminator,
    PartitionDiscriminator,
    TupleDiscriminator,
    UniformFamily,
    binary_g,
    stable_hash,
)
from .faults import (
    ChannelFault,
    FaultPlan,
    KillFault,
    WorkerFaults,
    build_fault_plan,
    parse_fault_spec,
)
from .metrics import CostModel, ParallelMetrics
from .plans import FragmentSpec, ParallelProgram, ProcessorProgram
from .processor import ProcessorRuntime
from .rewrite_general import RuleSpec, auto_specs, rewrite_general
from .rewrite_linear import rewrite_linear_family, rewrite_linear_sirup
from .routing import (
    BROADCAST,
    Route,
    RouterTable,
    route_kernel_enabled,
    route_positions,
    set_route_kernel,
)
from .schemes import (
    example1_scheme,
    example2_scheme,
    example3_scheme,
    hash_scheme,
    position_scheme,
    tradeoff_scheme,
    wolfson_scheme,
)
from .simulator import ParallelResult, SimulatedCluster, run_parallel

__all__ = [
    "BROADCAST",
    "ChaosCase",
    "ChaosOutcome",
    "ConstantDiscriminator",
    "CostModel",
    "ChannelFault",
    "Discriminator",
    "DiscriminatorFamily",
    "FaultPlan",
    "FragmentSpec",
    "HashConstraint",
    "HashDiscriminator",
    "KillFault",
    "LinearDiscriminator",
    "LocalRetentionFamily",
    "ModuloDiscriminator",
    "ParallelMetrics",
    "ParallelProgram",
    "ParallelResult",
    "PartitionDiscriminator",
    "ProcessorProgram",
    "ProcessorRuntime",
    "Route",
    "RouterTable",
    "RuleSpec",
    "SimulatedCluster",
    "TupleDiscriminator",
    "UniformFamily",
    "WorkerFaults",
    "auto_specs",
    "binary_g",
    "build_fault_plan",
    "example1_scheme",
    "example2_scheme",
    "example3_scheme",
    "hash_scheme",
    "parse_fault_spec",
    "position_scheme",
    "rewrite_general",
    "rewrite_linear_family",
    "rewrite_linear_sirup",
    "route_kernel_enabled",
    "route_positions",
    "run_chaos",
    "run_parallel",
    "set_route_kernel",
    "stable_hash",
    "tradeoff_scheme",
    "wolfson_scheme",
]
