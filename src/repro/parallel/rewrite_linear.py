"""The linear-sirup parallelisation rewrite (paper, Sections 3 and 6).

Given a linear sirup ``L`` with recursive rule ``r`` and exit rule ``e``,
discriminating sequences ``v(r)``/``v(e)`` and discriminating functions,
:func:`rewrite_linear_sirup` derives the per-processor programs ``Q_i``
(Section 3: all processors share one ``h`` — semi-naive non-redundant),
while :func:`rewrite_linear_family` derives the programs ``R_i``
(Section 6: per-processor ``h_i``, the processing rule is unconstrained
— trading redundancy for communication).

Both produce a :class:`~.plans.ParallelProgram` carrying the
operational per-processor programs, base-fragment specifications and
the literal union program for the Theorem 1/4 equivalence tests.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple, Union

from ..datalog.analysis import LinearSirup, as_linear_sirup
from ..datalog.atom import Atom
from ..datalog.program import Program
from ..datalog.rule import Rule
from ..datalog.term import Variable
from ..errors import RewriteError
from ..facts.fragments import FragmentationPlan
from .constraints import HashConstraint
from .discriminating import (
    Discriminator,
    DiscriminatorFamily,
    PartitionDiscriminator,
    UniformFamily,
)
from .naming import channel_name, fragment_name, in_name, out_name
from .plans import ARBITRARY, HASH, SHARED, FragmentSpec, ParallelProgram, ProcessorProgram
from .routing import Route, route_positions

__all__ = ["rewrite_linear_sirup", "rewrite_linear_family", "fresh_variables"]

ProcessorId = Hashable


def fresh_variables(count: int, avoid: Set[str], stem: str = "W") -> Tuple[Variable, ...]:
    """Return ``count`` variables named ``W1, W2, ...`` avoiding ``avoid``."""
    fresh: List[Variable] = []
    counter = 1
    while len(fresh) < count:
        name = f"{stem}{counter}"
        counter += 1
        if name in avoid:
            continue
        fresh.append(Variable(name))
    return tuple(fresh)


def _coerce_sirup(program: Union[Program, LinearSirup]) -> LinearSirup:
    if isinstance(program, LinearSirup):
        return program
    return as_linear_sirup(program)


def _validate_sequence(sequence: Sequence[Variable], rule: Rule,
                       label: str) -> Tuple[Variable, ...]:
    """Check a discriminating sequence against the paper's restrictions.

    Every variable of the sequence must occur in at least one body atom
    of the rule (Section 3: otherwise the selection cannot be pushed
    into the joins and every processor repeats the full computation).
    """
    sequence = tuple(sequence)
    body_vars = set(rule.body_variables())
    for variable in sequence:
        if variable not in body_vars:
            raise RewriteError(
                f"discriminating variable {variable} of {label} does not "
                f"occur in the body of: {rule}")
    return sequence


def _fragment_positions(sequence: Sequence[Variable],
                        atom: Atom) -> Optional[Tuple[int, ...]]:
    """Positions of sequence variables in ``atom``; None if some are absent."""
    return route_positions(sequence, atom)


def _fragment_kind(discriminator: Discriminator) -> str:
    if isinstance(discriminator, PartitionDiscriminator):
        return ARBITRARY
    return HASH


def _rewrite(sirup: LinearSirup, processors: Sequence[ProcessorId],
             v_r: Sequence[Variable], v_e: Sequence[Variable],
             family: DiscriminatorFamily, h_prime: Discriminator,
             constrain_processing: bool, fragment_bases: bool,
             scheme: str) -> ParallelProgram:
    processors = tuple(processors)
    if not processors:
        raise RewriteError("processor set must be non-empty")
    if len(set(processors)) != len(processors):
        raise RewriteError("processor ids must be distinct")

    v_r = _validate_sequence(v_r, sirup.recursive_rule, "v(r)")
    v_e = _validate_sequence(v_e, sirup.exit_rule, "v(e)")

    predicate = sirup.predicate
    recursive_atom = sirup.recursive_atom
    in_local = in_name(predicate)
    out_local = out_name(predicate)

    # ------------------------------------------------------------------
    # Base fragments.  Per base-atom occurrence: if every variable of the
    # relevant discriminating sequence occurs in the atom, processor i
    # only needs the fragment  b^i :- b, h(v) = i  (paper, Section 3);
    # otherwise the occurrence needs the whole relation.
    # ------------------------------------------------------------------
    fragments: List[FragmentSpec] = []
    shared_done: Set[str] = set()
    atom_rename: Dict[int, str] = {}  # id(atom) -> local name
    occurrence_kinds: Dict[str, List[str]] = {}
    equivalent_specs: Dict[Tuple, str] = {}  # dedup identical fragments

    def plan_base_atom(atom: Atom, sequence: Tuple[Variable, ...],
                       discriminator: Discriminator, tag: int) -> None:
        positions = _fragment_positions(sequence, atom) if sequence else None
        fragmentable = fragment_bases and positions is not None and sequence
        kinds = occurrence_kinds.setdefault(atom.predicate, [])
        if fragmentable:
            kind = _fragment_kind(discriminator)
            # Two occurrences selecting the same positions with the same
            # function store the same fragment once (e.g. Example 2's
            # init and processing both read par^i).
            key = (atom.predicate, positions, id(discriminator), kind)
            local = equivalent_specs.get(key)
            if local is None:
                local = fragment_name(atom.predicate, tag)
                equivalent_specs[key] = local
                fragments.append(FragmentSpec(
                    predicate=atom.predicate, arity=atom.arity,
                    local_name=local, kind=kind, positions=positions,
                    discriminator=discriminator))
            atom_rename[id(atom)] = local
            kinds.append(kind)
        else:
            if atom.predicate not in shared_done:
                fragments.append(FragmentSpec(
                    predicate=atom.predicate, arity=atom.arity,
                    local_name=atom.predicate, kind=SHARED))
                shared_done.add(atom.predicate)
            atom_rename[id(atom)] = atom.predicate
            kinds.append(SHARED)

    h_shared = family.member(processors[0]) if family.is_uniform() else None
    for tag, atom in enumerate(sirup.exit_rule.body):
        plan_base_atom(atom, v_e, h_prime, tag)
    offset = len(sirup.exit_rule.body)
    for tag, atom in enumerate(sirup.base_atoms):
        if h_shared is not None and constrain_processing:
            plan_base_atom(atom, v_r, h_shared, offset + tag)
        else:
            # Per-processor h_i or unconstrained processing: the
            # processing rule may fire on any substitution, so every
            # base atom needs the whole relation (Section 6 scheme).
            plan_base_atom(atom, (), h_prime, offset + tag)

    # Shared wins: if any occurrence of a predicate needs the whole
    # relation, the full copy subsumes every fragment of it, so drop the
    # fragments and let all occurrences read the shared copy.
    shared_predicates = {s.predicate for s in fragments if s.kind == SHARED}
    surviving: List[FragmentSpec] = []
    for spec in fragments:
        if spec.kind != SHARED and spec.predicate in shared_predicates:
            for atom_id, name in list(atom_rename.items()):
                if name == spec.local_name:
                    atom_rename[atom_id] = spec.predicate
        else:
            surviving.append(spec)
    fragments = surviving

    requirements: Dict[str, str] = {}
    notes: Dict[str, str] = {}
    for name, kinds in occurrence_kinds.items():
        if all(kind != SHARED for kind in kinds):
            requirements[name] = ("arbitrary-partition" if ARBITRARY in kinds
                                  else "hash-partitioned")
        else:
            requirements[name] = "shared"
            if any(kind != SHARED for kind in kinds):
                notes[name] = "some occurrences are fragmentable, others not"
    fragmentation = FragmentationPlan(requirements=requirements, notes=notes)

    # ------------------------------------------------------------------
    # Per-processor operational programs.
    # ------------------------------------------------------------------
    def local_body(rule: Rule) -> List[Atom]:
        atoms = []
        for atom in rule.body:
            if atom.predicate == predicate:
                atoms.append(atom.with_predicate(in_local))
            else:
                atoms.append(atom.with_predicate(atom_rename[id(atom)]))
        return atoms

    programs: Dict[ProcessorId, ProcessorProgram] = {}
    for proc in processors:
        h_i = family.member(proc)
        init = Rule(
            sirup.exit_rule.head.with_predicate(out_local),
            local_body(sirup.exit_rule),
            (HashConstraint(h_prime, v_e, proc),))
        processing_constraints = ((HashConstraint(h_i, v_r, proc),)
                                  if constrain_processing else ())
        processing = Rule(
            sirup.recursive_rule.head.with_predicate(out_local),
            local_body(sirup.recursive_rule),
            processing_constraints)
        route = Route(
            predicate=predicate,
            pattern=recursive_atom,
            positions=route_positions(v_r, recursive_atom),
            discriminator=h_i)
        programs[proc] = ProcessorProgram(
            processor=proc,
            init_rules=(init,),
            processing_rules=(processing,),
            routes=(route,),
            in_names={predicate: in_local},
            out_names={predicate: out_local},
            arities={predicate: sirup.arity},
        )

    union = _build_union(sirup, processors, v_r, v_e, family, h_prime,
                         constrain_processing)

    return ParallelProgram(
        source=sirup.program,
        scheme=scheme,
        processors=processors,
        programs=programs,
        fragments=tuple(fragments),
        fragmentation=fragmentation,
        union=union,
        derived=(predicate,),
    )


def _build_union(sirup: LinearSirup, processors: Tuple[ProcessorId, ...],
                 v_r: Tuple[Variable, ...], v_e: Tuple[Variable, ...],
                 family: DiscriminatorFamily, h_prime: Discriminator,
                 constrain_processing: bool) -> Program:
    """Transliterate the five execution steps into one Datalog program.

    This is exactly the paper's ``Q = ∪_{i∈P} Q_i`` (or ``R``): its
    least model restricted to the source predicate must equal the least
    model of the source program (Theorems 1 and 4).
    """
    predicate = sirup.predicate
    recursive_atom = sirup.recursive_atom
    rules: List[Rule] = []
    avoid = {v.name for v in sirup.recursive_rule.variables()}
    avoid |= {v.name for v in sirup.exit_rule.variables()}
    pool_vars = fresh_variables(sirup.arity, avoid)
    sendable = route_positions(v_r, recursive_atom) is not None

    for i in processors:
        h_i = family.member(i)
        # 1. Initialization: t_out^i(Z) :- s(Z), h'(v(e)) = i.
        rules.append(Rule(
            sirup.exit_rule.head.with_predicate(out_name(predicate, i)),
            sirup.exit_rule.body,
            (HashConstraint(h_prime, v_e, i),)))
        # 2. Processing: t_out^i(X) :- t_in^i(Y), b1, ..., bk [, h(v(r)) = i].
        body = [a.with_predicate(in_name(predicate, i))
                if a.predicate == predicate else a
                for a in sirup.recursive_rule.body]
        constraints = ((HashConstraint(h_i, v_r, i),)
                       if constrain_processing else ())
        rules.append(Rule(
            sirup.recursive_rule.head.with_predicate(out_name(predicate, i)),
            body, constraints))
        for j in processors:
            # 3. Sending: t_ij(Y) :- t_out^i(Y), h(v(r)) = j.  When some
            # variable of v(r) is missing from Y the condition is not
            # evaluable at the sender and everything is sent (Example 2).
            send_constraints = ((HashConstraint(h_i, v_r, j),)
                                if sendable else ())
            rules.append(Rule(
                recursive_atom.with_predicate(channel_name(predicate, i, j)),
                (recursive_atom.with_predicate(out_name(predicate, i)),),
                send_constraints))
            # 4. Receiving: t_in^i(W) :- t_ji(W).
            rules.append(Rule(
                Atom(in_name(predicate, i), pool_vars),
                (Atom(channel_name(predicate, j, i), pool_vars),)))
        # 5. Final pooling: t(W) :- t_out^i(W).
        rules.append(Rule(
            Atom(predicate, pool_vars),
            (Atom(out_name(predicate, i), pool_vars),)))
    return Program(rules)


def rewrite_linear_sirup(program: Union[Program, LinearSirup],
                         processors: Sequence[ProcessorId],
                         v_r: Sequence[Variable], v_e: Sequence[Variable],
                         h: Discriminator,
                         h_prime: Optional[Discriminator] = None,
                         fragment_bases: bool = True,
                         scheme: str = "section3") -> ParallelProgram:
    """Rewrite a linear sirup with a shared discriminating function.

    This is the non-redundant scheme of Section 3 (Theorems 1 and 2):
    all processors use the same ``h``, the processing rule carries the
    constraint ``h(v(r)) = i``, and base atoms containing all of
    ``v(r)`` (or ``v(e)``) are fragmented.

    Args:
        program: the linear sirup (program or decomposition).
        processors: the processor ids ``P``.
        v_r: discriminating sequence for the recursive rule.
        v_e: discriminating sequence for the exit rule.
        h: discriminating function for the recursive rule.
        h_prime: discriminating function for the exit rule (default: ``h``).
        fragment_bases: allow base-relation fragmentation (set False to
            force shared base relations).
        scheme: label used in reports.
    """
    sirup = _coerce_sirup(program)
    return _rewrite(sirup, processors, v_r, v_e, UniformFamily(h),
                    h_prime if h_prime is not None else h,
                    constrain_processing=True, fragment_bases=fragment_bases,
                    scheme=scheme)


def rewrite_linear_family(program: Union[Program, LinearSirup],
                          processors: Sequence[ProcessorId],
                          v_e: Sequence[Variable],
                          family: DiscriminatorFamily,
                          h_prime: Discriminator,
                          v_r: Optional[Sequence[Variable]] = None,
                          scheme: str = "section6") -> ParallelProgram:
    """Rewrite a linear sirup with per-processor functions ``h_i``.

    This is the trade-off scheme of Section 6 (Theorem 4): processing is
    unconstrained (a processor works on everything it receives or
    retains), base relations are shared, and every variable of ``v(r)``
    must occur in ``Ȳ`` so routing is always point-to-point.

    Args:
        program: the linear sirup (program or decomposition).
        processors: the processor ids ``P``.
        v_e: discriminating sequence for the exit rule.
        family: the per-processor family ``{h_i}``.
        h_prime: discriminating function for the exit rule.
        v_r: discriminating sequence for the recursive rule; defaults to
            the variables of the recursive body atom ``Ȳ``.
        scheme: label used in reports.
    """
    sirup = _coerce_sirup(program)
    if v_r is None:
        v_r = sirup.recursive_atom.variables()
    body_atom_vars = set(sirup.recursive_atom.variables())
    for variable in v_r:
        if variable not in body_atom_vars:
            raise RewriteError(
                "Section 6 requires every variable of v(r) to appear in "
                f"the recursive atom; {variable} does not")
    return _rewrite(sirup, processors, v_r, v_e, family, h_prime,
                    constrain_processing=False, fragment_bases=False,
                    scheme=scheme)
