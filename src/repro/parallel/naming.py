"""Naming conventions for rewritten predicates.

The rewrites of the paper introduce predicates ``t_out^i``, ``t_in^i``
and channel predicates ``t_ij``.  We embed these as decorated predicate
names using ``@`` — a character the surface parser rejects — so rewritten
programs can never collide with user predicates.
"""

from __future__ import annotations

from typing import Hashable

__all__ = [
    "IN_MARK",
    "OUT_MARK",
    "processor_tag",
    "in_name",
    "out_name",
    "channel_name",
    "fragment_name",
    "strip_decoration",
]

IN_MARK = "@in"
OUT_MARK = "@out"
_CHANNEL_MARK = "@ch"
_FRAGMENT_MARK = "@frag"


def processor_tag(processor: Hashable) -> str:
    """Render a processor id as a name-safe tag.

    Integer ids map to their digits; tuple ids (Example 6 uses processor
    ids like ``(0, 0)``) map to underscore-joined components.
    """
    if isinstance(processor, tuple):
        return "_".join(processor_tag(part) for part in processor)
    text = str(processor)
    return "".join(ch if (ch.isalnum() or ch == "_") else "m" for ch in text)


def in_name(predicate: str, processor: Hashable = None) -> str:
    """Name of the ``t_in`` relation (optionally per-processor)."""
    suffix = f"@{processor_tag(processor)}" if processor is not None else ""
    return f"{predicate}{IN_MARK}{suffix}"


def out_name(predicate: str, processor: Hashable = None) -> str:
    """Name of the ``t_out`` relation (optionally per-processor)."""
    suffix = f"@{processor_tag(processor)}" if processor is not None else ""
    return f"{predicate}{OUT_MARK}{suffix}"


def channel_name(predicate: str, sender: Hashable, receiver: Hashable) -> str:
    """Name of the channel predicate ``t_ij``."""
    return (f"{predicate}{_CHANNEL_MARK}"
            f"@{processor_tag(sender)}@{processor_tag(receiver)}")


def fragment_name(predicate: str, rule_index: int) -> str:
    """Name of the per-rule base fragment ``D_in`` of rule ``rule_index``."""
    return f"{predicate}{_FRAGMENT_MARK}@{rule_index}"


def strip_decoration(name: str) -> str:
    """Return the original predicate symbol of a decorated name."""
    return name.split("@", 1)[0]
