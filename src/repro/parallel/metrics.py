"""Execution metrics of a parallel run.

The paper's results are claims about counts: firings per processor
(redundancy, Definition 1), tuples on channels (communication), which
channels are ever used (network connectivity, Section 5), and the
replication of base relations (fragmentation).  :class:`ParallelMetrics`
collects all of them, plus a simple per-round cost model for makespan
and speedup estimates — the quantitative study the paper defers to
future work (Section 8).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..facts.packing import is_packed

__all__ = [
    "CostModel",
    "ParallelMetrics",
    "approx_batch_bytes",
    "approx_fact_bytes",
    "approx_packed_bytes",
]

ProcessorId = Hashable
Channel = Tuple[ProcessorId, ProcessorId]

# Deterministic size model for channel accounting.  The point is not to
# predict pickle output exactly but to weight messages by payload in a
# way that is stable across platforms and Python versions, so the bench
# harness can compare ``channel_bytes`` between reports.  Constants
# approximate CPython object sizes.
MESSAGE_OVERHEAD_BYTES = 96   # envelope: tag, sender id, epoch, list
BATCH_OVERHEAD_BYTES = 48     # per (predicate, facts) group in a message
_TUPLE_OVERHEAD_BYTES = 56
_VALUE_BYTES = {int: 28, float: 24, bool: 28, type(None): 16}
# Packed-column payloads (repro.facts.packing): one encoding tuple per
# column plus one bytes buffer; raw int64 columns cost 8 bytes/value.
_COLUMN_OVERHEAD_BYTES = 56   # per-column encoding tuple + kind tag
_BUFFER_OVERHEAD_BYTES = 33   # bytes object header


def _approx_value_bytes(value: object) -> int:
    if isinstance(value, str):
        return 49 + len(value)
    if isinstance(value, (bytes, bytearray)):
        return 33 + len(value)
    return _VALUE_BYTES.get(type(value), 48)


def approx_fact_bytes(fact: Tuple[object, ...]) -> int:
    """Deterministic approximate in-memory size of one fact tuple."""
    total = _TUPLE_OVERHEAD_BYTES + 8 * len(fact)
    for value in fact:
        total += _approx_value_bytes(value)
    return total


def approx_packed_bytes(payload) -> int:
    """Deterministic approximate wire size of a packed column payload.

    Mirrors :func:`approx_fact_bytes` for the packed encoding of
    :mod:`repro.facts.packing`: int64 columns cost their raw buffer (8
    bytes per value), dictionary-encoded columns cost the unique values
    plus the index buffer, raw fallback columns cost per value what the
    tuple model charges.  Keeping both formats in one model is what
    lets ``repro bench compare`` gate ``channel_bytes`` meaningfully
    across wire formats.
    """
    _tag, _count, _arity, columns = payload
    total = _TUPLE_OVERHEAD_BYTES
    for column in columns:
        kind = column[0]
        total += _COLUMN_OVERHEAD_BYTES
        if kind == "i":
            total += _BUFFER_OVERHEAD_BYTES + len(column[1])
        elif kind == "d":
            _kind, uniques, _typecode, raw = column
            total += _BUFFER_OVERHEAD_BYTES + len(raw)
            total += _TUPLE_OVERHEAD_BYTES + 8 * len(uniques)
            for value in uniques:
                total += _approx_value_bytes(value)
        else:
            values = column[1]
            total += _TUPLE_OVERHEAD_BYTES + 8 * len(values)
            for value in values:
                total += _approx_value_bytes(value)
    return total


def approx_batch_bytes(pairs) -> int:
    """Approximate wire size of one DATA message.

    ``pairs`` is the coalesced payload ``[(predicate, payload), ...]``
    where each payload is either a list of fact tuples or a packed
    column payload (:func:`repro.facts.packing.pack_facts`); the model
    charges one message envelope, one group overhead per predicate and
    the per-format payload cost.
    """
    total = MESSAGE_OVERHEAD_BYTES
    for predicate, payload in pairs:
        total += BATCH_OVERHEAD_BYTES + len(predicate)
        if is_packed(payload):
            total += approx_packed_bytes(payload)
        else:
            for fact in payload:
                total += approx_fact_bytes(fact)
    return total


@dataclass(frozen=True)
class CostModel:
    """Weights of the makespan model.

    A round costs ``max_i(work_i + send_cost · sent_i + recv_cost ·
    received_i)`` and the makespan is the sum over rounds.  Work units
    are engine operations (firings + index probes), so sequential and
    parallel runs are measured in the same currency.

    Attributes:
        send_cost: work-units charged per tuple put on a remote channel.
        recv_cost: work-units charged per tuple taken off a channel.
        round_overhead: fixed per-round cost (barrier/synchronisation).
    """

    send_cost: float = 1.0
    recv_cost: float = 1.0
    round_overhead: float = 0.0


@dataclass
class ParallelMetrics:
    """Counters observed during one parallel execution.

    The synchronisation fields describe the execution regime (see
    ``docs/EXECUTION_MODES.md``): ``sync`` is ``"bsp"`` (barriered
    rounds) or ``"ssp"`` (stale-synchronous, bounded staleness) and
    ``staleness`` is the SSP lead bound.  ``busy``/``idle``/``stalled``
    split each processor's modelled time into productive work, waiting
    for input or a barrier, and being throttled by the staleness bound;
    all three are measured in the same work-unit currency (one unit ≈
    one engine operation), so BSP and SSP runs are directly comparable.
    ``ticks`` is the modelled end-to-end time in those units and
    ``max_staleness_lag`` the largest clock lead any processor ever had
    over the slowest processor that still held pending work.  The mp
    executor has no tick model: there ``stalled`` counts throttle
    *episodes* (entries into the throttled state) and
    ``busy``/``idle``/``ticks`` stay empty.
    """

    scheme: str
    processors: Tuple[ProcessorId, ...]
    sync: str = "bsp"
    staleness: Optional[int] = None
    rounds: int = 0
    ticks: int = 0
    busy: Counter = field(default_factory=Counter)     # i -> work-units working
    idle: Counter = field(default_factory=Counter)     # i -> work-units waiting
    stalled: Counter = field(default_factory=Counter)  # i -> work-units throttled
    max_staleness_lag: int = 0
    firings: Dict[ProcessorId, int] = field(default_factory=dict)
    probes: Dict[ProcessorId, int] = field(default_factory=dict)
    sent: Counter = field(default_factory=Counter)            # (i, j) -> tuples, i != j
    channel_messages: Counter = field(default_factory=Counter)  # (i, j) -> DATA messages
    channel_bytes: Counter = field(default_factory=Counter)     # (i, j) -> approx bytes
    self_delivered: Counter = field(default_factory=Counter)  # i -> tuples
    received: Counter = field(default_factory=Counter)        # i -> tuples accepted
    duplicates_dropped: Counter = field(default_factory=Counter)
    replayed: Counter = field(default_factory=Counter)        # i -> tuples re-sent
    broadcast_tuples: int = 0
    pooled_tuples: int = 0
    control_messages: int = 0
    detection_rounds: int = 0
    restarts: int = 0
    # Recovery accounting (mp executor, recovery="restart"/"checkpoint").
    # ``recovery_seconds`` is wall time from each death detection to the
    # first fully-acked probe wave of the new epoch, summed over
    # recoveries; ``recovery_replayed_facts`` is the total facts peers
    # re-sent while serving replays; ``checkpoint_bytes`` the approximate
    # size (deterministic model above) of every checkpoint shipped;
    # ``log_truncated`` the sent-log facts reclaimed by watermark
    # truncation; ``retried`` the drop-faulted facts healed by the
    # reliable retry path.
    recovery_seconds: float = 0.0
    recovery_replayed_facts: int = 0
    checkpoint_bytes: int = 0
    log_truncated: int = 0
    retried: int = 0
    per_round_work: List[Dict[ProcessorId, float]] = field(default_factory=list)
    per_round_sent: List[Dict[ProcessorId, int]] = field(default_factory=list)
    per_round_received: List[Dict[ProcessorId, int]] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def total_firings(self) -> int:
        """Successful ground substitutions summed over all processors."""
        return sum(self.firings.values())

    def total_work(self) -> float:
        """Firings plus probes summed over all processors."""
        return sum(self.firings.values()) + sum(self.probes.values())

    def total_sent(self) -> int:
        """Tuples crossing processor boundaries (self-deliveries excluded)."""
        return sum(self.sent.values())

    def total_self_delivered(self) -> int:
        """Tuples a processor routed to itself (free of communication)."""
        return sum(self.self_delivered.values())

    def total_channel_messages(self) -> int:
        """DATA messages (coalesced batches) put on remote channels.

        ``total_sent() / total_channel_messages()`` is the mean batch
        size — the quantity send coalescing exists to raise.
        """
        return sum(self.channel_messages.values())

    def total_channel_bytes(self) -> int:
        """Approximate bytes crossing channels (see module size model)."""
        return sum(self.channel_bytes.values())

    def used_channels(self) -> Set[Channel]:
        """The remote channels that carried at least one tuple."""
        return {channel for channel, count in self.sent.items() if count > 0}

    def redundancy_vs(self, sequential_firings: int) -> int:
        """Extra firings relative to a sequential semi-naive run.

        Theorems 2 and 6 assert this is ``<= 0`` for shared-``h``
        schemes; Section 6's retention schemes trade it against
        communication.
        """
        return self.total_firings() - sequential_firings

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def makespan(self, cost: Optional[CostModel] = None) -> float:
        """Modelled parallel completion time (work units)."""
        cost = cost if cost is not None else CostModel()
        total = 0.0
        for index in range(len(self.per_round_work)):
            work = self.per_round_work[index]
            sent = (self.per_round_sent[index]
                    if index < len(self.per_round_sent) else {})
            received = (self.per_round_received[index]
                        if index < len(self.per_round_received) else {})
            peak = 0.0
            for proc in self.processors:
                load = (work.get(proc, 0.0)
                        + cost.send_cost * sent.get(proc, 0)
                        + cost.recv_cost * received.get(proc, 0))
                peak = max(peak, load)
            total += peak + cost.round_overhead
        return total

    def speedup_vs(self, sequential_work: float,
                   cost: Optional[CostModel] = None) -> float:
        """Sequential work divided by modelled parallel makespan."""
        span = self.makespan(cost)
        if span == 0:
            return float("inf") if sequential_work > 0 else 1.0
        return sequential_work / span

    def load_balance(self) -> float:
        """Jain fairness index of per-processor work in [1/N, 1].

        1.0 means perfectly even work; 1/N means one processor did
        everything.
        """
        loads = [self.firings.get(p, 0) + self.probes.get(p, 0)
                 for p in self.processors]
        total = sum(loads)
        if total == 0:
            return 1.0
        squares = sum(load * load for load in loads)
        return (total * total) / (len(loads) * squares)

    def utilisation(self) -> float:
        """Mean fraction of each round's peak work actually performed."""
        if not self.per_round_work:
            return 1.0
        ratios = []
        for work in self.per_round_work:
            peak = max((work.get(p, 0.0) for p in self.processors), default=0.0)
            if peak == 0:
                continue
            mean = sum(work.get(p, 0.0) for p in self.processors) / len(self.processors)
            ratios.append(mean / peak)
        return sum(ratios) / len(ratios) if ratios else 1.0

    # ------------------------------------------------------------------
    # Busy/idle accounting (BSP and SSP share this currency)
    # ------------------------------------------------------------------
    def worker_utilisation(self) -> Dict[ProcessorId, float]:
        """Per-processor fraction of modelled time spent doing work.

        ``busy / (busy + idle + stalled)`` per processor; 1.0 when a
        processor was never observed (nothing to divide).
        """
        utilisation: Dict[ProcessorId, float] = {}
        for proc in self.processors:
            total = (self.busy.get(proc, 0) + self.idle.get(proc, 0)
                     + self.stalled.get(proc, 0))
            utilisation[proc] = (self.busy.get(proc, 0) / total
                                 if total else 1.0)
        return utilisation

    def mean_utilisation(self) -> float:
        """Mean of :meth:`worker_utilisation` over all processors."""
        per_worker = self.worker_utilisation()
        if not per_worker:
            return 1.0
        return sum(per_worker.values()) / len(per_worker)

    def total_idle(self) -> int:
        """Work-units all processors spent waiting (barrier or input)."""
        return sum(self.idle.values())

    def total_stalled(self) -> int:
        """Work-units all processors spent throttled by the staleness bound."""
        return sum(self.stalled.values())

    def summary(self) -> Dict[str, object]:
        """A flat summary dict for tables and reports."""
        return {
            "scheme": self.scheme,
            "sync": (self.sync if self.staleness is None
                     else f"{self.sync}({self.staleness})"),
            "processors": len(self.processors),
            "rounds": self.rounds,
            "ticks": self.ticks,
            "utilisation": round(self.mean_utilisation(), 4),
            "idle": self.total_idle(),
            "stalled": self.total_stalled(),
            "max_lag": self.max_staleness_lag,
            "firings": self.total_firings(),
            "work": self.total_work(),
            "sent": self.total_sent(),
            "channel_messages": self.total_channel_messages(),
            "channel_bytes": self.total_channel_bytes(),
            "self_delivered": self.total_self_delivered(),
            "broadcasts": self.broadcast_tuples,
            "dup_dropped": sum(self.duplicates_dropped.values()),
            "pooled": self.pooled_tuples,
            "channels_used": len(self.used_channels()),
            "load_balance": round(self.load_balance(), 4),
            "restarts": self.restarts,
            "replayed": sum(self.replayed.values()),
            "recovery_seconds": round(self.recovery_seconds, 4),
            "recovery_replayed_facts": self.recovery_replayed_facts,
            "checkpoint_bytes": self.checkpoint_bytes,
            "log_truncated": self.log_truncated,
            "retried": self.retried,
        }
