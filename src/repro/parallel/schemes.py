"""Named parallelisation schemes (paper, Section 4 and Section 6).

Each function instantiates the generic rewrites with the specific
discriminating choices the paper analyses on the ancestor program —
generalised, where the paper's construction generalises, to arbitrary
linear sirups:

* :func:`example1_scheme` — Wolfson–Silberschatz [19]: discriminate on
  the positions of a dataflow-graph cycle (Theorem 3); zero
  communication, base relations shared.
* :func:`example2_scheme` — Valduriez–Khoshafian [16]: an arbitrary
  horizontal partition of the base relation defines ``h``; works on any
  fragmentation, broadcasts every output tuple.
* :func:`example3_scheme` — the paper's new middle point: discriminate
  on one attribute position whose variable also occurs in a base atom;
  point-to-point communication, disjoint base fragments.
* :func:`hash_scheme` — the generic Section 3 choice ``v(r) = Ȳ``.
* :func:`wolfson_scheme` / :func:`tradeoff_scheme` — the Section 6
  family: each processor keeps a fraction of its output local,
  trading redundancy for communication.
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence, Union

from ..datalog.analysis import LinearSirup, as_linear_sirup
from ..datalog.program import Program
from ..errors import RewriteError
from ..facts.database import Database
from ..facts.fragments import ArbitraryFragmentation
from ..network.dataflow import zero_communication_positions
from .discriminating import (
    Discriminator,
    HashDiscriminator,
    LocalRetentionFamily,
    ModuloDiscriminator,
    PartitionDiscriminator,
)
from .plans import ParallelProgram
from .rewrite_linear import rewrite_linear_family, rewrite_linear_sirup

__all__ = [
    "position_scheme",
    "example1_scheme",
    "example2_scheme",
    "example3_scheme",
    "hash_scheme",
    "wolfson_scheme",
    "tradeoff_scheme",
]

ProcessorId = Hashable


def _coerce(program: Union[Program, LinearSirup]) -> LinearSirup:
    if isinstance(program, LinearSirup):
        return program
    return as_linear_sirup(program)


def position_scheme(program: Union[Program, LinearSirup],
                    processors: Sequence[ProcessorId],
                    positions: Sequence[int],
                    h: Optional[Discriminator] = None,
                    scheme: str = "position") -> ParallelProgram:
    """Discriminate on a set of attribute positions of the recursive atom.

    ``v(r)`` is the recursive-atom variables at ``positions`` (1-based,
    matching the paper's figures) and ``v(e)`` the exit-head variables
    at the same positions — which makes every *initialization* tuple
    self-route, since the sending rule reads exactly those positions of
    the produced tuple.

    Args:
        program: the linear sirup.
        processors: processor ids.
        positions: 1-based attribute positions of the derived predicate.
        h: discriminating function (default: a symmetric modulo-sum,
            which is also what Theorem 3's construction needs).
        scheme: label used in reports.
    """
    sirup = _coerce(program)
    for position in positions:
        if not 1 <= position <= sirup.arity:
            raise RewriteError(
                f"position {position} out of range 1..{sirup.arity}")
    v_r = tuple(sirup.body_vars[p - 1] for p in positions)
    v_e = tuple(sirup.exit_vars[p - 1] for p in positions)
    discriminator = h if h is not None else ModuloDiscriminator(processors)
    return rewrite_linear_sirup(sirup, processors, v_r, v_e, discriminator,
                                scheme=scheme)


def example1_scheme(program: Union[Program, LinearSirup],
                    processors: Sequence[ProcessorId],
                    h: Optional[Discriminator] = None) -> ParallelProgram:
    """Example 1 / Theorem 3: the zero-communication choice.

    Discriminates on the positions of a dataflow-graph cycle with a
    shift-invariant (symmetric) function, so every produced tuple hashes
    to its producer and no channel is ever used during recursion.

    Raises:
        RewriteError: if the dataflow graph is acyclic (no such choice
            exists; use :func:`example3_scheme` instead).
    """
    sirup = _coerce(program)
    positions = zero_communication_positions(sirup)
    if positions is None:
        raise RewriteError(
            "the dataflow graph has no cycle: no zero-communication "
            "discriminating choice exists (Theorem 3 does not apply)")
    return position_scheme(sirup, processors, positions, h=h,
                           scheme="example1/wolfson-silberschatz")


def example3_scheme(program: Union[Program, LinearSirup],
                    processors: Sequence[ProcessorId],
                    position: Optional[int] = None,
                    h: Optional[Discriminator] = None) -> ParallelProgram:
    """Example 3: point-to-point communication, disjoint base fragments.

    Discriminates on a single attribute position of the recursive atom
    whose variable also occurs in a base atom, so the base relation is
    fragmented for the recursion and every output tuple travels to
    exactly one processor.

    Args:
        program: the linear sirup.
        processors: processor ids.
        position: 1-based attribute position; default: the first
            position whose variable occurs in a base atom.
        h: discriminating function (default: hash).

    Raises:
        RewriteError: when no suitable position exists.
    """
    sirup = _coerce(program)
    if position is None:
        base_vars = {v for atom in sirup.base_atoms for v in atom.variables()}
        for candidate, variable in enumerate(sirup.body_vars, start=1):
            if variable in base_vars:
                position = candidate
                break
        else:
            raise RewriteError(
                "no recursive-atom variable occurs in a base atom; "
                "Example 3's construction does not apply")
    discriminator = h if h is not None else HashDiscriminator(tuple(processors))
    return position_scheme(sirup, processors, (position,), h=discriminator,
                           scheme="example3/fragment-and-forward")


def example2_scheme(program: Union[Program, LinearSirup],
                    processors: Sequence[ProcessorId],
                    database: Database,
                    partition: Optional[ArbitraryFragmentation] = None
                    ) -> ParallelProgram:
    """Example 2 (Valduriez–Khoshafian): partition-defined discrimination.

    The base relation of the recursive rule is horizontally partitioned
    (arbitrarily — round-robin by default) and ``h(ā) = i`` iff ``ā``
    lies in processor ``i``'s fragment.  ``v(r)`` is the base atom's
    variable sequence, which always contains a variable missing from
    ``Ȳ`` in interesting programs, so the sending rules broadcast.

    Args:
        program: the linear sirup.  The recursive rule must contain
            exactly one base atom with distinct variables, and the exit
            rule must use the same base predicate.
        processors: processor ids.
        database: the input — the partition is defined over its facts.
        partition: an explicit fragmentation; default round-robin.

    Raises:
        RewriteError: when the sirup does not have the required shape.
    """
    sirup = _coerce(program)
    processors = tuple(processors)
    if len(sirup.base_atoms) != 1:
        raise RewriteError(
            "Example 2 needs exactly one base atom in the recursive rule")
    (base_atom,) = sirup.base_atoms
    variables = base_atom.variables()
    if len(variables) != base_atom.arity:
        raise RewriteError(
            "Example 2 needs distinct variables in the base atom")
    exit_atoms = [a for a in sirup.exit_rule.body
                  if a.predicate == base_atom.predicate]
    if not exit_atoms:
        raise RewriteError(
            "Example 2 needs the exit rule to use the recursive rule's "
            f"base predicate {base_atom.predicate}")
    exit_atom = exit_atoms[0]
    exit_variables = exit_atom.variables()
    if len(exit_variables) != exit_atom.arity:
        raise RewriteError(
            "Example 2 needs distinct variables in the exit base atom")

    relation = database.get(base_atom.predicate)
    if relation is None:
        raise RewriteError(
            f"database has no relation {base_atom.predicate!r} to partition")
    if partition is None:
        partition = ArbitraryFragmentation.round_robin(relation, processors)
    h = PartitionDiscriminator(partition, processors)
    return rewrite_linear_sirup(
        sirup, processors, v_r=variables, v_e=exit_variables, h=h,
        scheme="example2/valduriez-khoshafian")


def hash_scheme(program: Union[Program, LinearSirup],
                processors: Sequence[ProcessorId],
                salt: int = 0) -> ParallelProgram:
    """The generic Section 3 choice: ``v(r) = Ȳ``, ``v(e) = Z̄``, hash ``h``.

    Non-redundant and always point-to-point (every ``v(r)`` variable
    trivially occurs in ``Ȳ``), but fragments base atoms only when they
    happen to contain all of ``Ȳ``.
    """
    sirup = _coerce(program)
    h = HashDiscriminator(tuple(processors), salt=salt)
    return rewrite_linear_sirup(
        sirup, processors,
        v_r=sirup.recursive_atom.variables(),
        v_e=sirup.exit_rule.head.variables(),
        h=h, scheme="section3/hash")


def wolfson_scheme(program: Union[Program, LinearSirup],
                   processors: Sequence[ProcessorId],
                   salt: int = 0) -> ParallelProgram:
    """Wolfson's communication-free scheme [18] (Section 6, property 1).

    Every processor uses ``h_i ≡ i``: nothing is ever transmitted, the
    exit tuples are hash-partitioned by ``h'``, every processor runs the
    unrestricted recursion on its share, and base relations are shared.
    Redundant in general — the same tuple may be generated (and
    processed) at several processors.
    """
    sirup = _coerce(program)
    base = HashDiscriminator(tuple(processors), salt=salt)
    family = LocalRetentionFamily(base, keep_fraction=1.0, salt=salt)
    return rewrite_linear_family(
        sirup, processors,
        v_e=sirup.exit_rule.head.variables(),
        family=family, h_prime=base,
        scheme="section6/wolfson-no-communication")


def tradeoff_scheme(program: Union[Program, LinearSirup],
                    processors: Sequence[ProcessorId],
                    keep_fraction: float, salt: int = 0) -> ParallelProgram:
    """The Section 6 spectrum point with local retention ``keep_fraction``.

    ``keep_fraction = 0`` is the non-redundant scheme (every ``h_i``
    equals the base hash — the rewriting collapses to Section 3's,
    paper property 2); ``keep_fraction = 1`` is Wolfson's
    communication-free scheme (property 1); intermediate values trade
    communication for redundancy.
    """
    sirup = _coerce(program)
    base = HashDiscriminator(tuple(processors), salt=salt)
    family = LocalRetentionFamily(base, keep_fraction=keep_fraction, salt=salt)
    return rewrite_linear_family(
        sirup, processors,
        v_e=sirup.exit_rule.head.variables(),
        family=family, h_prime=base,
        scheme=f"section6/keep{keep_fraction:.2f}")
