"""Tuple routing: operational form of the paper's *sending* rules.

The sending rule ``t_ij(Ȳ) :- t_out^i(Ȳ), h(v(r)) = j`` forwards an
output tuple to the processor whose processing rule might fire on it.
Two regimes exist (paper, Examples 2 and 3):

* every variable of ``v(r)`` occurs in the recursive atom ``t(Ȳ)`` —
  the sender evaluates ``h`` and the tuple goes to exactly one target;
* some variable of ``v(r)`` is missing from ``Ȳ`` (Example 2's ``X``) —
  the condition is not evaluable at the sender, so the tuple must be
  sent to *every* processor (broadcast).  This costs communication but
  is neither incorrect nor redundant: the receiver's processing
  constraint still admits each firing at exactly one site.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..datalog.atom import Atom
from ..datalog.term import Constant, Variable
from ..errors import RoutingError
from ..facts.relation import Fact
from .discriminating import Discriminator

__all__ = [
    "BROADCAST",
    "Route",
    "RouterTable",
    "route_kernel_enabled",
    "route_positions",
    "set_route_kernel",
]

ProcessorId = Hashable

# Route-kernel toggle, mirroring the join-kernel toggle in
# ``engine/plan.py``: the compiled batch partitioner is the default;
# ``REPRO_ROUTE_KERNEL=generic`` (or ``set_route_kernel(False)``)
# selects the per-fact ``Route.targets`` reference interpreter so the
# two can be compared for equivalence and performance.
_use_kernel = os.environ.get("REPRO_ROUTE_KERNEL", "compiled") != "generic"


def route_kernel_enabled() -> bool:
    """True when partitioning uses the compiled route kernel."""
    return _use_kernel


def set_route_kernel(enabled: bool) -> bool:
    """Select the compiled kernel (True) or the reference interpreter
    (False); returns the previous setting."""
    global _use_kernel
    previous = _use_kernel
    _use_kernel = bool(enabled)
    return previous


class _Broadcast:
    """Sentinel: the tuple must be sent to every processor."""

    def __repr__(self) -> str:
        return "BROADCAST"


BROADCAST = _Broadcast()


def route_positions(sequence: Sequence[Variable],
                    pattern: Atom) -> Optional[Tuple[int, ...]]:
    """Positions of the sequence variables within ``pattern``.

    Returns None when some sequence variable does not occur in the
    pattern, i.e. when the sender cannot evaluate ``h`` and must
    broadcast.
    """
    positions = []
    for variable in sequence:
        for index, term in enumerate(pattern.terms):
            if term == variable:
                positions.append(index)
                break
        else:
            return None
    return tuple(positions)


@dataclass(frozen=True)
class Route:
    """Routing for one recursive occurrence of a derived predicate.

    Attributes:
        predicate: the derived predicate whose tuples are routed.
        pattern: the body-atom occurrence the tuples will be matched
            against at the receiver (determines evaluability of ``h``).
        positions: pattern positions feeding ``h``; None means the
            sender must broadcast.
        discriminator: the (sender-resolved) discriminating function.
    """

    predicate: str
    pattern: Atom
    positions: Optional[Tuple[int, ...]]
    discriminator: Discriminator

    def matches_pattern(self, fact: Fact) -> bool:
        """True iff ``fact`` is unifiable with the occurrence pattern.

        Constants in the pattern must agree with the fact and repeated
        variables must carry equal values; otherwise the receiving rule
        could never fire on this tuple and nothing needs to be sent.
        """
        seen = {}
        for term, value in zip(self.pattern.terms, fact):
            if isinstance(term, Constant):
                if term.value != value:
                    return False
            else:
                if term in seen and seen[term] != value:
                    return False
                seen[term] = value
        return True

    def targets(self, fact: Fact) -> Tuple[ProcessorId, ...]:
        """Processor ids this tuple must reach for this occurrence.

        Returns the full processor set on broadcast, the empty tuple
        when the tuple cannot match the occurrence pattern or belongs to
        no fragment of a partition-defined discriminator.
        """
        if len(fact) != self.pattern.arity or not self.matches_pattern(fact):
            return ()
        if self.positions is None:
            return self.discriminator.processors
        values = tuple(fact[p] for p in self.positions)
        try:
            return (self.discriminator(values),)
        except RoutingError:
            return ()

    def is_broadcast(self) -> bool:
        """True iff this route always broadcasts."""
        return self.positions is None


class _CompiledRoute:
    """One route, precompiled for batch dispatch.

    ``Route.targets`` re-derives everything per fact: it zips the
    pattern terms, isinstance-checks each for ``Constant``, rebuilds the
    repeated-variable map and re-reads ``positions``.  All of that is a
    property of the *route*, not the fact, so it is hoisted here into
    flat tuples once per route:

    * ``const_checks`` — ``(position, value)`` pairs the fact must equal;
    * ``same_checks`` — ``(position, first_position)`` pairs for repeated
      pattern variables;
    * ``positions`` / ``discriminator`` — the hash dispatch, or
      ``broadcast`` with the full processor tuple.
    """

    __slots__ = ("arity", "broadcast", "const_checks", "discriminator",
                 "positions", "processors", "same_checks", "unchecked")

    def __init__(self, route: Route) -> None:
        pattern = route.pattern
        self.arity = pattern.arity
        const_checks: List[Tuple[int, object]] = []
        same_checks: List[Tuple[int, int]] = []
        first_position: Dict[object, int] = {}
        for index, term in enumerate(pattern.terms):
            if isinstance(term, Constant):
                const_checks.append((index, term.value))
            elif term in first_position:
                same_checks.append((index, first_position[term]))
            else:
                first_position[term] = index
        self.const_checks = tuple(const_checks)
        self.same_checks = tuple(same_checks)
        self.unchecked = not const_checks and not same_checks
        self.positions = route.positions
        self.discriminator = route.discriminator
        self.processors = route.discriminator.processors
        self.broadcast = route.positions is None

    def matches(self, fact: Fact) -> bool:
        if len(fact) != self.arity:
            return False
        for position, value in self.const_checks:
            if fact[position] != value:
                return False
        for position, first in self.same_checks:
            if fact[position] != fact[first]:
                return False
        return True


Buckets = Dict[ProcessorId, List[Fact]]


class RouterTable:
    """Batch partitioner over one processor's routes.

    ``partition`` takes every fact a step emitted for one predicate and
    splits the whole list into per-target buffers in a single pass —
    replacing the per-fact walk over ``routes_for()`` that the simulator
    and the mp worker used to do.  Targets keep first-seen order and
    each bucket keeps emission order, so downstream accounting
    (metrics, sent-logs, traces) sees the same tuples it always did,
    just grouped.

    The compiled path dispatches through :class:`_CompiledRoute`; the
    reference path (``set_route_kernel(False)`` /
    ``REPRO_ROUTE_KERNEL=generic``) aggregates per-fact
    :meth:`Route.targets` calls.  Both return the same
    ``(buckets, broadcast_count)`` pair, where ``broadcast_count`` is
    the number of (fact, broadcast route) matches — the quantity
    ``ParallelMetrics.broadcast_tuples`` has always counted.
    """

    __slots__ = ("_compiled", "_routes")

    def __init__(self, routes: Sequence[Route]) -> None:
        grouped: Dict[str, List[Route]] = {}
        for route in routes:
            grouped.setdefault(route.predicate, []).append(route)
        self._routes: Dict[str, Tuple[Route, ...]] = {
            predicate: tuple(group) for predicate, group in grouped.items()}
        self._compiled: Dict[str, Tuple[_CompiledRoute, ...]] = {
            predicate: tuple(_CompiledRoute(route) for route in group)
            for predicate, group in self._routes.items()}

    def routes_for(self, predicate: str) -> Tuple[Route, ...]:
        return self._routes.get(predicate, ())

    def partition(self, predicate: str,
                  facts: Sequence[Fact]) -> Tuple[Buckets, int]:
        """Split ``facts`` of ``predicate`` into per-target buffers.

        Returns ``(buckets, broadcast_count)``; facts matching no route
        (or no fragment of a partition-defined discriminator) simply
        appear in no bucket.  A fact matched by several routes is
        deduplicated across targets exactly as the per-fact path did.
        """
        if _use_kernel:
            compiled = self._compiled.get(predicate)
            if not compiled:
                return {}, 0
            return self._partition_compiled(compiled, facts)
        return self._partition_generic(self._routes.get(predicate, ()), facts)

    def _partition_compiled(self, compiled: Tuple[_CompiledRoute, ...],
                            facts: Sequence[Fact]) -> Tuple[Buckets, int]:
        buckets: Buckets = {}
        broadcasts = 0
        if len(compiled) == 1:
            kernel = compiled[0]
            arity = kernel.arity
            if kernel.broadcast:
                # Broadcast fast path: every matching fact goes to the
                # full processor set.
                if kernel.unchecked:
                    matching = [fact for fact in facts if len(fact) == arity]
                else:
                    matching = [fact for fact in facts if kernel.matches(fact)]
                if matching and kernel.processors:
                    broadcasts = len(matching)
                    for target in kernel.processors:
                        buckets[target] = list(matching)
                return buckets, broadcasts
            if kernel.unchecked and len(kernel.positions) == 1:
                # Point-to-point fast path: single discriminating
                # position, no pattern constraints (the common
                # hash-partitioned case, e.g. Example 3).  The
                # discriminating column is gathered in one pass and
                # mapped to targets as a whole batch
                # (``Discriminator.map_column``), then the facts are
                # dealt into buckets by zipping fact against target —
                # one pass over flat arrays instead of per-fact method
                # dispatch.
                position = kernel.positions[0]
                if any(len(fact) != arity for fact in facts):
                    facts = [fact for fact in facts if len(fact) == arity]
                column = [fact[position] for fact in facts]
                targets = kernel.discriminator.map_column(column)
                for fact, target in zip(facts, targets):
                    if target is None:
                        continue
                    bucket = buckets.get(target)
                    if bucket is None:
                        buckets[target] = [fact]
                    else:
                        bucket.append(fact)
                return buckets, 0
        multi = len(compiled) > 1
        for fact in facts:
            seen = None
            for kernel in compiled:
                if not kernel.matches(fact):
                    continue
                if kernel.broadcast:
                    targets = kernel.processors
                    if targets:
                        broadcasts += 1
                else:
                    values = tuple(fact[p] for p in kernel.positions)
                    try:
                        targets = (kernel.discriminator(values),)
                    except RoutingError:
                        continue
                if multi:
                    if seen is None:
                        seen = set()
                    for target in targets:
                        if target not in seen:
                            seen.add(target)
                            buckets.setdefault(target, []).append(fact)
                else:
                    for target in targets:
                        buckets.setdefault(target, []).append(fact)
        return buckets, broadcasts

    @staticmethod
    def _partition_generic(routes: Tuple[Route, ...],
                           facts: Sequence[Fact]) -> Tuple[Buckets, int]:
        """Reference path: per-fact ``Route.targets``, aggregated."""
        buckets: Buckets = {}
        broadcasts = 0
        for fact in facts:
            seen = set()
            for route in routes:
                targets = route.targets(fact)
                if targets and route.is_broadcast():
                    broadcasts += 1
                for target in targets:
                    if target not in seen:
                        seen.add(target)
                        buckets.setdefault(target, []).append(fact)
        return buckets, broadcasts
