"""Tuple routing: operational form of the paper's *sending* rules.

The sending rule ``t_ij(Ȳ) :- t_out^i(Ȳ), h(v(r)) = j`` forwards an
output tuple to the processor whose processing rule might fire on it.
Two regimes exist (paper, Examples 2 and 3):

* every variable of ``v(r)`` occurs in the recursive atom ``t(Ȳ)`` —
  the sender evaluates ``h`` and the tuple goes to exactly one target;
* some variable of ``v(r)`` is missing from ``Ȳ`` (Example 2's ``X``) —
  the condition is not evaluable at the sender, so the tuple must be
  sent to *every* processor (broadcast).  This costs communication but
  is neither incorrect nor redundant: the receiver's processing
  constraint still admits each firing at exactly one site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Sequence, Tuple

from ..datalog.atom import Atom
from ..datalog.term import Constant, Variable
from ..errors import RoutingError
from ..facts.relation import Fact
from .discriminating import Discriminator

__all__ = ["BROADCAST", "Route", "route_positions"]

ProcessorId = Hashable


class _Broadcast:
    """Sentinel: the tuple must be sent to every processor."""

    def __repr__(self) -> str:
        return "BROADCAST"


BROADCAST = _Broadcast()


def route_positions(sequence: Sequence[Variable],
                    pattern: Atom) -> Optional[Tuple[int, ...]]:
    """Positions of the sequence variables within ``pattern``.

    Returns None when some sequence variable does not occur in the
    pattern, i.e. when the sender cannot evaluate ``h`` and must
    broadcast.
    """
    positions = []
    for variable in sequence:
        for index, term in enumerate(pattern.terms):
            if term == variable:
                positions.append(index)
                break
        else:
            return None
    return tuple(positions)


@dataclass(frozen=True)
class Route:
    """Routing for one recursive occurrence of a derived predicate.

    Attributes:
        predicate: the derived predicate whose tuples are routed.
        pattern: the body-atom occurrence the tuples will be matched
            against at the receiver (determines evaluability of ``h``).
        positions: pattern positions feeding ``h``; None means the
            sender must broadcast.
        discriminator: the (sender-resolved) discriminating function.
    """

    predicate: str
    pattern: Atom
    positions: Optional[Tuple[int, ...]]
    discriminator: Discriminator

    def matches_pattern(self, fact: Fact) -> bool:
        """True iff ``fact`` is unifiable with the occurrence pattern.

        Constants in the pattern must agree with the fact and repeated
        variables must carry equal values; otherwise the receiving rule
        could never fire on this tuple and nothing needs to be sent.
        """
        seen = {}
        for term, value in zip(self.pattern.terms, fact):
            if isinstance(term, Constant):
                if term.value != value:
                    return False
            else:
                if term in seen and seen[term] != value:
                    return False
                seen[term] = value
        return True

    def targets(self, fact: Fact) -> Tuple[ProcessorId, ...]:
        """Processor ids this tuple must reach for this occurrence.

        Returns the full processor set on broadcast, the empty tuple
        when the tuple cannot match the occurrence pattern or belongs to
        no fragment of a partition-defined discriminator.
        """
        if len(fact) != self.pattern.arity or not self.matches_pattern(fact):
            return ()
        if self.positions is None:
            return self.discriminator.processors
        values = tuple(fact[p] for p in self.positions)
        try:
            return (self.discriminator(values),)
        except RoutingError:
            return ()

    def is_broadcast(self) -> bool:
        """True iff this route always broadcasts."""
        return self.positions is None
