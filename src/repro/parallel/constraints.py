"""Hash constraints: the ``h(v(r)) = i`` conjuncts of rewritten rules.

A :class:`HashConstraint` implements the engine's
:class:`~repro.datalog.rule.Constraint` protocol, so rewritten rules run
on the unmodified sequential engine.  The planner pushes the constraint
to the earliest join step at which all of ``v(r)`` is bound — the
selection pushdown the paper identifies as the prerequisite for
effective parallelism (Section 3).
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence, Tuple

from ..datalog.substitution import Substitution
from ..datalog.term import Constant, Variable
from ..errors import RoutingError
from .discriminating import Discriminator

__all__ = ["HashConstraint"]


class HashConstraint:
    """The conjunct ``h(v) = target`` attached to a rewritten rule.

    Attributes:
        discriminator: the discriminating function ``h``.
        sequence: the discriminating sequence of variables ``v``.
        target: the processor id the hash must equal.
    """

    __slots__ = ("discriminator", "sequence", "target")

    def __init__(self, discriminator: Discriminator,
                 sequence: Sequence[Variable], target: Hashable) -> None:
        self.discriminator = discriminator
        self.sequence: Tuple[Variable, ...] = tuple(sequence)
        self.target = target

    @property
    def variables(self) -> Tuple[Variable, ...]:
        """The variables the constraint reads (the sequence, deduplicated)."""
        seen = []
        for variable in self.sequence:
            if variable not in seen:
                seen.append(variable)
        return tuple(seen)

    def satisfied(self, binding: Substitution) -> bool:
        """True iff ``h`` maps the bound sequence values to ``target``.

        A value tuple outside the discriminator's domain (possible for
        partition-defined discriminators) satisfies the constraint at no
        processor.
        """
        values = []
        for variable in self.sequence:
            term = binding.get(variable)
            if not isinstance(term, Constant):
                raise RoutingError(
                    f"constraint variable {variable} not bound to a constant")
            values.append(term.value)
        try:
            return self.discriminator(tuple(values)) == self.target
        except RoutingError:
            return False

    def satisfied_values(self, binding: Mapping[Variable, object]) -> bool:
        """Fast path for the engine's compiled join kernel.

        ``binding`` maps variables directly to Python values (no
        :class:`~repro.datalog.term.Constant` boxing); the kernel
        guarantees every variable of :attr:`sequence` is bound.
        """
        try:
            return (self.discriminator(
                tuple(binding[v] for v in self.sequence)) == self.target)
        except RoutingError:
            return False

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, HashConstraint)
                and self.discriminator is other.discriminator
                and self.sequence == other.sequence
                and self.target == other.target)

    def __hash__(self) -> int:
        return hash((id(self.discriminator), self.sequence, self.target))

    def __str__(self) -> str:
        args = ", ".join(str(v) for v in self.sequence)
        return f"h({args}) = {self.target!r}"

    def __repr__(self) -> str:
        return (f"HashConstraint({self.discriminator.describe()}, "
                f"{list(self.sequence)}, {self.target!r})")
