"""Discriminating sequences and discriminating functions (paper, Section 3).

A *discriminating sequence* ``v(r)`` is a sequence of variables of a
rule; a *discriminating function* ``h`` maps ground instances of the
sequence to processor ids.  The partition of ground substitutions that
``h`` induces is what distributes the workload: processor ``i``
evaluates only the substitutions with ``h(v(r)) = i``.

All discriminators here are deterministic and process-stable: they use
:func:`stable_hash` (BLAKE2) rather than Python's per-process ``hash``,
so the same tuple routes to the same processor in every worker process
of the multiprocessing executor.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Hashable, Optional, Sequence, Tuple

from ..errors import RoutingError
from ..facts.fragments import ArbitraryFragmentation

__all__ = [
    "stable_hash",
    "Discriminator",
    "HashDiscriminator",
    "ModuloDiscriminator",
    "TupleDiscriminator",
    "LinearDiscriminator",
    "PartitionDiscriminator",
    "ConstantDiscriminator",
    "DiscriminatorFamily",
    "UniformFamily",
    "LocalRetentionFamily",
    "binary_g",
]

ProcessorId = Hashable
Values = Tuple[object, ...]


def stable_hash(value: object, salt: int = 0) -> int:
    """Return a deterministic 64-bit hash of ``value``.

    Stable across processes and Python invocations (unlike built-in
    ``hash`` on strings), which the multiprocessing executor requires.
    """
    digest = hashlib.blake2b(
        repr((salt, value)).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def binary_g(value: object, salt: int = 0) -> int:
    """An arbitrary function from constants to ``{0, 1}``.

    This is the ``g`` of Examples 6 and 7: any function from database
    constants to a small codomain, out of which structured
    discriminating functions are composed.
    """
    return stable_hash(value, salt) & 1


class Discriminator:
    """Base class of discriminating functions.

    A discriminator is a callable from value tuples (ground instances of
    the discriminating sequence) to processor ids, together with the
    processor set it ranges over.
    """

    def __init__(self, processors: Sequence[ProcessorId]) -> None:
        if not processors:
            raise RoutingError("processor set must be non-empty")
        self.processors: Tuple[ProcessorId, ...] = tuple(processors)

    def __call__(self, values: Values) -> ProcessorId:
        raise NotImplementedError

    def map_column(self, column: Sequence[object]) -> "list":
        """Batch form of ``__call__`` over a single-position column.

        Takes the gathered values of one discriminating position (the
        single-position point-to-point case the route kernel fast-paths)
        and returns one target per value, with ``None`` for values that
        belong to no fragment.  The default applies ``__call__``
        per value; subclasses with cheap dispatch override it with a
        tight comprehension over the whole column.  Must agree with
        ``__call__`` value-for-value — routing always works on raw
        constants, never on interned ids, so both backends and both
        wire formats partition identically (docs/DATA_PLANE.md).
        """
        targets = []
        append = targets.append
        for value in column:
            try:
                append(self((value,)))
            except RoutingError:
                append(None)
        return targets

    def describe(self) -> str:
        """Human-readable summary for reports."""
        return type(self).__name__


class HashDiscriminator(Discriminator):
    """``h(values) = processors[stable_hash(values) mod N]``.

    The workhorse discriminator: a uniform hash partition of ground
    instances over the processor set.
    """

    def __init__(self, processors: Sequence[ProcessorId], salt: int = 0) -> None:
        super().__init__(processors)
        self.salt = salt

    def __call__(self, values: Values) -> ProcessorId:
        return self.processors[stable_hash(values, self.salt)
                               % len(self.processors)]

    def map_column(self, column: Sequence[object]) -> "list":
        # Hash dispatch never raises, so the whole column maps in one
        # comprehension (no per-value try/except or method dispatch).
        processors = self.processors
        count = len(processors)
        salt = self.salt
        return [processors[stable_hash((value,), salt) % count]
                for value in column]

    def describe(self) -> str:
        return f"hash mod {len(self.processors)} (salt={self.salt})"


class ModuloDiscriminator(Discriminator):
    """``h(values) = processors[sum(values) mod N]`` for integer values.

    Readable in examples and, being a symmetric function of its
    arguments, invariant under the cyclic shifts that Theorem 3's
    zero-communication construction relies on.
    """

    def __call__(self, values: Values) -> ProcessorId:
        total = 0
        for value in values:
            if isinstance(value, int):
                total += value
            else:
                total += stable_hash(value)
        return self.processors[total % len(self.processors)]

    def map_column(self, column: Sequence[object]) -> "list":
        processors = self.processors
        count = len(processors)
        return [processors[(value if isinstance(value, int)
                            else stable_hash(value)) % count]
                for value in column]

    def describe(self) -> str:
        return f"sum mod {len(self.processors)}"


class TupleDiscriminator(Discriminator):
    """``h(a1, ..., am) = (g(a1), ..., g(am))`` — Example 6.

    Processor ids are tuples over the codomain of ``g``; with the
    default binary ``g`` and ``m = 2`` the processors are
    ``(0,0), (0,1), (1,0), (1,1)``.
    """

    def __init__(self, length: int, g: Callable[[object], int] = binary_g,
                 g_range: int = 2) -> None:
        processors = _tuple_space(length, g_range)
        super().__init__(processors)
        self.length = length
        self.g = g
        self.g_range = g_range

    def __call__(self, values: Values) -> ProcessorId:
        if len(values) != self.length:
            raise RoutingError(
                f"expected {self.length} values, got {len(values)}")
        return tuple(self.g(v) % self.g_range for v in values)

    def compose_g(self, g_values: Sequence[int]) -> ProcessorId:
        """Apply the discriminator to pre-computed ``g`` values.

        The compile-time network derivation (Section 5) enumerates
        symbolic ``g`` values; any discriminator that factors through
        ``g`` per position exposes this hook.
        """
        return tuple(g_values)

    def describe(self) -> str:
        return f"(g(a1), ..., g(a{self.length})) with g range {self.g_range}"


def _tuple_space(length: int, g_range: int) -> Tuple[Tuple[int, ...], ...]:
    """All tuples in ``{0..g_range-1}^length``, lexicographically."""
    if length == 0:
        return ((),)
    shorter = _tuple_space(length - 1, g_range)
    return tuple((value, *rest) for value in range(g_range) for rest in shorter)


class LinearDiscriminator(Discriminator):
    """``h(a1, ..., am) = c1·g(a1) + ... + cm·g(am)`` — Example 7.

    With coefficients ``(1, -1, 1)`` and binary ``g`` this is exactly
    the paper's ``h(a1,a2,a3) = g(a1) - g(a2) + g(a3)`` whose processor
    set is ``{-1, 0, 1, 2}``.  An optional modulus folds the range onto
    ``{0..modulus-1}``.
    """

    def __init__(self, coefficients: Sequence[int],
                 g: Callable[[object], int] = binary_g,
                 g_range: int = 2, modulus: Optional[int] = None) -> None:
        self.coefficients = tuple(coefficients)
        self.g = g
        self.g_range = g_range
        self.modulus = modulus
        super().__init__(self._range())

    def _range(self) -> Tuple[int, ...]:
        """The exact set of reachable values of the linear form."""
        values = {0}
        for coefficient in self.coefficients:
            values = {v + coefficient * b
                      for v in values for b in range(self.g_range)}
        if self.modulus is not None:
            values = {v % self.modulus for v in values}
        return tuple(sorted(values))

    def __call__(self, values: Values) -> ProcessorId:
        if len(values) != len(self.coefficients):
            raise RoutingError(
                f"expected {len(self.coefficients)} values, got {len(values)}")
        total = sum(c * (self.g(v) % self.g_range)
                    for c, v in zip(self.coefficients, values))
        if self.modulus is not None:
            total %= self.modulus
        return total

    def compose_g(self, g_values: Sequence[int]) -> ProcessorId:
        """Apply the linear form to pre-computed ``g`` values (Section 5)."""
        total = sum(c * b for c, b in zip(self.coefficients, g_values))
        if self.modulus is not None:
            total %= self.modulus
        return total

    def describe(self) -> str:
        terms = " + ".join(f"{c}*g(a{k + 1})"
                           for k, c in enumerate(self.coefficients))
        if self.modulus is not None:
            terms = f"({terms}) mod {self.modulus}"
        return terms


class PartitionDiscriminator(Discriminator):
    """A discriminating function *defined by* a horizontal partition.

    Example 2's ``h(a, b) = i`` iff ``(a, b) ∈ par^i``: the arbitrary
    fragmentation of the base relation is itself the discriminator.
    Value tuples outside the partition belong to no processor; they can
    never satisfy the processing constraint anywhere, which is harmless
    because such tuples cannot match the fragmented base atom either.
    """

    def __init__(self, fragmentation: ArbitraryFragmentation,
                 processors: Sequence[ProcessorId]) -> None:
        super().__init__(processors)
        self.fragmentation = fragmentation

    def __call__(self, values: Values) -> ProcessorId:
        owner = self.fragmentation.assignment.get(tuple(values))
        if owner is None:
            raise RoutingError(f"values {values!r} belong to no fragment")
        return owner

    def contains(self, values: Values) -> bool:
        """True iff some fragment owns ``values``."""
        return tuple(values) in self.fragmentation.assignment

    def describe(self) -> str:
        return "partition-defined (Example 2)"


class ConstantDiscriminator(Discriminator):
    """``h(values) = target`` for every tuple.

    Section 6, property 1: when processor ``i`` uses ``h_i ≡ i`` it
    keeps every generated tuple for self-processing, yielding the
    communication-free (but redundant) scheme of Wolfson [18].
    """

    def __init__(self, processors: Sequence[ProcessorId],
                 target: ProcessorId) -> None:
        super().__init__(processors)
        if target not in self.processors:
            raise RoutingError(f"target {target!r} not in processor set")
        self.target = target

    def __call__(self, values: Values) -> ProcessorId:
        return self.target

    def describe(self) -> str:
        return f"constant {self.target!r}"


class DiscriminatorFamily:
    """A per-processor family ``{h_i}`` (paper, Section 6).

    The non-redundant scheme of Section 3 is the special case where
    every member is the same function.
    """

    def member(self, processor: ProcessorId) -> Discriminator:
        """Return ``h_i`` for processor ``i``."""
        raise NotImplementedError

    def is_uniform(self) -> bool:
        """True iff every member is the same function (non-redundant case)."""
        return False

    def describe(self) -> str:
        return type(self).__name__


class UniformFamily(DiscriminatorFamily):
    """Every processor uses the same discriminating function ``h``."""

    def __init__(self, discriminator: Discriminator) -> None:
        self.discriminator = discriminator

    def member(self, processor: ProcessorId) -> Discriminator:
        return self.discriminator

    def is_uniform(self) -> bool:
        return True

    def describe(self) -> str:
        return f"uniform {self.discriminator.describe()}"


class _RetentionDiscriminator(Discriminator):
    """Keep a deterministic fraction of tuples local, route the rest."""

    def __init__(self, owner: ProcessorId, base: Discriminator,
                 keep_fraction: float, salt: int) -> None:
        super().__init__(base.processors)
        self.owner = owner
        self.base = base
        self.keep_fraction = keep_fraction
        self.salt = salt

    def __call__(self, values: Values) -> ProcessorId:
        draw = (stable_hash(values, self.salt) % 10_000) / 10_000.0
        if draw < self.keep_fraction:
            return self.owner
        return self.base(values)

    def describe(self) -> str:
        return (f"keep {self.keep_fraction:.0%} at {self.owner!r}, "
                f"else {self.base.describe()}")


class LocalRetentionFamily(DiscriminatorFamily):
    """The trade-off family of Section 6.

    Processor ``i`` keeps a (deterministic, hash-chosen) fraction of its
    generated tuples for self-processing and routes the remainder by a
    shared base discriminator.  ``keep_fraction = 0`` reproduces the
    non-redundant scheme; ``keep_fraction = 1`` reproduces Wolfson's
    communication-free scheme.  Intermediate values trace the
    redundancy/communication spectrum the paper describes.
    """

    def __init__(self, base: Discriminator, keep_fraction: float,
                 salt: int = 0) -> None:
        if not 0.0 <= keep_fraction <= 1.0:
            raise RoutingError("keep_fraction must be within [0, 1]")
        self.base = base
        self.keep_fraction = keep_fraction
        self.salt = salt

    def member(self, processor: ProcessorId) -> Discriminator:
        if self.keep_fraction == 0.0:
            return self.base
        return _RetentionDiscriminator(processor, self.base,
                                       self.keep_fraction, self.salt)

    def is_uniform(self) -> bool:
        return self.keep_fraction == 0.0

    def describe(self) -> str:
        return (f"local retention {self.keep_fraction:.0%} over "
                f"{self.base.describe()}")
