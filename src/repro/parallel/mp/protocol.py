"""Wire protocol of the multiprocessing executor.

Messages are plain picklable tuples; the first element is a tag.

Data plane (worker → worker):

* ``("data", sender, pairs, epoch, stamp)`` — tuples on a channel (the
  paper's ``t_ij`` predicates), coalesced: ``pairs`` is a list of
  ``(predicate, facts)`` groups, so one message (one queue put, one
  pickle) can carry a whole step burst's output for the peer across
  several predicates.  ``facts`` is either a plain list of fact tuples
  or, under the columnar backend, a packed column payload
  (``repro.facts.packing``; detected with ``is_packed`` and decoded
  with ``unpack_facts``) — self-contained either way, and all
  protocol accounting below counts *unpacked facts*, so the wire
  format never affects quiescence or replay.  ``epoch`` is the
  *recovery epoch* the sender was in when it *flushed* (see below);
  receivers always ingest the facts (monotonicity makes stale
  deliveries harmless) but count them toward quiescence only when the
  epochs match.  ``stamp`` is the channel watermark stamp
  ``(incarnation, seq)``: ``incarnation`` is the epoch the sending
  worker was *spawned* in (strictly increasing over a processor's
  successive incarnations) and ``seq`` a per-channel message counter,
  so stamps are lexicographically monotone per channel; receivers keep
  the maximum stamp dequeued per sender and publish it in their
  checkpoints (see the checkpoint plane below).

Control plane (coordinator ↔ worker):

* ``("probe", seq, horizon)`` — coordinator → worker, a quiescence
  probe.  ``horizon`` is the coordinator's latest view of the minimum
  ``clock`` over workers that still hold work (``None`` = no bound
  currently applies); it is how the SSP staleness bound reaches the
  workers, and it is ignored under the legacy free-running mode.
* ``("ack", processor, seq, sent, received, activity, epoch, clock,
  pending)`` — worker → coordinator, counters at probe time.
  ``sent``/``received`` count only current-epoch data tuples;
  ``activity`` is a monotone counter of tuples ingested, emitted and
  re-sent; ``clock`` is the worker's local step count (its SSP
  logical clock); ``pending`` is True iff the worker holds staged
  input it has not yet processed — under SSP a throttled worker can
  sit on staged input with *static* activity, so termination must
  additionally require all ``pending`` flags False (see below).
* ``("stop",)`` — coordinator → worker, terminate and report.
* ``("result", processor, outputs, stats)`` — worker → coordinator,
  final output relations and cumulative counters.
* ``("error", processor, text)`` — worker → coordinator, crash report
  (only reachable when the worker's Python level survives to format a
  traceback — a ``SIGKILL`` produces no message at all, which is why
  the coordinator also polls ``Process.is_alive``).
* ``("trace", processor, events)`` — worker → coordinator, a batch of
  trace events in flat dict form (see :mod:`repro.obs`); sent only when
  the run is traced, flushed at probe time and before the final result.

Recovery plane (coordinator → worker, see :mod:`.runner`):

* ``("reset", epoch)`` — a worker died and was restarted; survivors
  enter recovery epoch ``epoch`` and zero their quiescence counters.
* ``("replay", target)`` — re-send every tuple still held in the
  per-target sent-log for ``target`` under the current epoch (the full
  history under ``recovery="restart"``; the post-truncation suffix
  under ``recovery="checkpoint"``).

Checkpoint plane (``recovery="checkpoint"``, see :mod:`.checkpoint`):

* ``("checkpoint", processor, payload)`` — worker → coordinator, a
  self-contained snapshot of the worker's derived state (packed with
  the column wire format), its cumulative counters, its own sent-log,
  and its per-sender watermarks.  The coordinator keeps only the
  latest payload per processor (checkpoints are cumulative, not
  incremental) and fans the watermarks out as ``truncate`` messages.
* ``("truncate", target, stamp)`` — coordinator → worker: ``target``'s
  checkpoint acknowledged everything you sent it up to ``stamp``; drop
  those facts from your sent-log for ``target``.

Watermark/truncation invariant
------------------------------

A sender may truncate a log entry for ``target`` exactly when the fact
is guaranteed to be inside ``target``'s last checkpoint.  The stamp
machinery makes that checkable locally: queues are FIFO per channel and
stamps are lexicographically monotone per channel (``incarnation``
breaks ties across a sender's restarts — a dying worker flushes and
closes its queues before exiting, so a successor's messages really do
follow its predecessor's), hence every message with stamp ≤ the
receiver's watermark was *dequeued* — and therefore staged or ingested
— before the checkpoint snapshot was cut.  Log entries whose fact has
not yet been carried by any enqueued message (buffered, delayed or
dropped by an injected fault) hold no stamp and are never truncated, so
the retry/replay paths still cover them.  Replay after truncation is
unchanged code: "re-send the whole remaining log" is exactly "re-send
the unacknowledged suffix".

Quiescence invariant
--------------------

The coordinator detects termination with a counting double probe
(Mattern-style).  A wave is *balanced* when ``Σ sent == Σ received``
over all acks of the wave, and *unchanged* when no worker's
``activity`` moved since the previous wave.  Balanced + unchanged over
two consecutive waves implies all channels are empty and all workers
are idle, because:

1. every data tuple increments exactly one ``sent`` at the sender (at
   enqueue time) and one ``received`` at the receiver (at dequeue
   time), so ``Σ sent − Σ received`` equals the number of in-flight
   tuples — *provided both ends count in the same epoch*, which the
   epoch stamp guarantees.  Send coalescing does not weaken this:
   tuples sitting in a worker's outbound buffer are counted by
   *neither* end, but every buffer is flushed (and counted) before the
   worker acks a probe, so at every snapshot the coordinator compares,
   "in flight" still means exactly "enqueued and not yet dequeued".
   Buffered tuples that straddle a ``reset`` are stamped and counted in
   the epoch at flush time, symmetric with the receiver's
   dequeue-time epoch check;
2. a worker with staged-but-unprocessed input has already bumped
   ``activity`` for it, and processing staged input either derives
   nothing new (then the worker is genuinely idle) or emits tuples,
   which bump ``activity`` again — so two identical ``activity``
   snapshots bracket a window in which no work happened;
3. balanced counters taken *between* two unchanged snapshots cannot be
   a coincidence of crossing messages: any message received after wave
   one would have moved ``activity`` by wave two.

Recovery epochs exist to protect invariant (1) across a restart: the
counters of a dead worker vanish with it, so the global sums would
never balance again.  Bumping the epoch and zeroing every survivor's
``sent``/``received`` restarts the accounting from a consistent cut —
tuples from the old epoch that are still in flight are ingested but
not counted (their send-side count was zeroed too), and every replayed
or newly derived tuple is counted symmetrically in the new epoch.

Stale-synchronous relaxation (``sync="ssp"``)
---------------------------------------------

Under SSP each worker carries a logical *clock* — its local step
count — reported in every ack.  The coordinator computes the *horizon*,
the minimum clock over workers that reported pending work (staged
input), and broadcasts it on the next probe.  A worker whose
``clock − horizon >= staleness`` stops *stepping* (it still drains its
inbox, stages tuples, acks probes and serves replays — only rule
evaluation is throttled), so no worker races more than ``staleness``
steps ahead of the slowest worker that still has work to do.  Workers
without pending work are excluded from the horizon: a finished worker's
frozen clock must never throttle the rest, and an all-idle cluster
must be able to terminate.  The bound is enforced to within one probe
wave of slack — the horizon a worker sees is at most one wave old.

Soundness is unchanged from the epoch argument above: stepping on a
stale delta can only derive tuples *later*, never different ones
(set-monotone, non-redundant derivations), so the fixpoint — and the
pooled answer — is identical to the free-running and sequential runs.

Termination under SSP needs one extra conjunct.  A throttled worker
holds staged input while its ``activity`` is static and the global
counters are balanced, which satisfies the legacy double-probe test —
invariant (2) assumed a worker always processes what it stages.  The
coordinator therefore also requires every ack of the wave to report
``pending == False``.  This cannot deadlock: if any worker holds work,
the minimum-clock worker among the pending ones has lag 0 < staleness
and is free to step (which is also why ``staleness >= 1`` is
required).  The extra conjunct is sound for the legacy mode too — a
transiently-True ``pending`` flag coincides with moved ``activity``,
so it only delays detection, never falsifies it.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

__all__ = [
    "DATA",
    "PROBE",
    "ACK",
    "STOP",
    "RESULT",
    "ERROR",
    "TRACE",
    "RESET",
    "REPLAY",
    "CHECKPOINT",
    "TRUNCATE",
    "WorkerStats",
    "typed_sort_key",
]


def typed_sort_key(fact: Tuple[object, ...]) -> Tuple[Tuple[str, object], ...]:
    """Deterministic total order over fact tuples with mixed-type values.

    Values are ordered by type name first, then natively within a type.
    This replaces ``key=repr``, which was both slow (a string render per
    comparison key) and ordering-fragile: ``repr`` interleaves types
    lexicographically (``repr(10) < repr(9)``, quoted strings sorting
    among digits), so pooled output order depended on value spellings
    rather than values.
    """
    return tuple((type(value).__name__, value) for value in fact)

DATA = "data"
PROBE = "probe"
ACK = "ack"
STOP = "stop"
RESULT = "result"
ERROR = "error"
TRACE = "trace"
RESET = "reset"
REPLAY = "replay"
CHECKPOINT = "checkpoint"
TRUNCATE = "truncate"


class WorkerStats:
    """Picklable snapshot of one worker's cumulative counters.

    Unlike the per-epoch quiescence counters in ``ack`` messages, these
    are cumulative over the worker's lifetime (a restarted worker starts
    fresh — its predecessor's counters died with it).

    Attributes:
        firings: successful ground substitutions.
        probes: index probes performed by the engine.
        iterations: local semi-naive iterations.
        sent_by_target: per-peer count of tuples actually put on the
            peer's queue (replays included, dropped-by-fault excluded).
        messages_by_target: per-peer count of coalesced ``data``
            messages carrying those tuples (each = one queue put and
            one pickle); ``total_sent() / total_messages()`` is the
            achieved batching factor.
        bytes_by_target: per-peer approximate payload bytes (the
            deterministic size model of
            :func:`repro.parallel.metrics.approx_batch_bytes`).
        received: data tuples taken off the inbox.
        duplicates_dropped: received tuples discarded as duplicates.
        self_delivered: tuples routed to the worker itself (no queue).
        replayed: tuples re-sent while serving ``replay`` requests.
        retried: tuples re-sent by the reliable retry path after an
            injected ``drop`` fault swallowed their first transmission
            (faults apply to first transmissions only, so one retry
            heals every drop).
        sent_log_facts: total facts held in the deduplicated per-peer
            replay logs at exit (the bounded-memory satellite metric;
            under ``recovery="checkpoint"`` truncation keeps this from
            growing with total derived facts).
        checkpoints: checkpoint payloads shipped to the coordinator.
        checkpoint_bytes: approximate bytes of those payloads under the
            deterministic size model.
        log_truncated: sent-log facts dropped after a peer's checkpoint
            watermark covered them.
        restored_facts: facts loaded from a checkpoint at restore time
            (0 unless this worker is a checkpoint-restored incarnation).
        throttle_waits: number of times the SSP staleness bound made
            the worker hold back a step it was otherwise ready to run
            (counted once per entry into the throttled state, not per
            poll; always 0 in the legacy mode).
        max_lag: largest ``clock − horizon`` lead this worker observed
            for itself at the moment it started a step (so it is
            bounded by ``staleness`` up to one probe wave of slack).
    """

    __slots__ = ("firings", "probes", "iterations", "sent_by_target",
                 "messages_by_target", "bytes_by_target", "received",
                 "duplicates_dropped", "self_delivered", "replayed",
                 "retried", "sent_log_facts", "throttle_waits", "max_lag",
                 "checkpoints", "checkpoint_bytes", "log_truncated",
                 "restored_facts")

    def __init__(self) -> None:
        self.firings: int = 0
        self.probes: int = 0
        self.iterations: int = 0
        self.sent_by_target: Dict[Hashable, int] = {}
        self.messages_by_target: Dict[Hashable, int] = {}
        self.bytes_by_target: Dict[Hashable, int] = {}
        self.received: int = 0
        self.duplicates_dropped: int = 0
        self.self_delivered: int = 0
        self.replayed: int = 0
        self.retried: int = 0
        self.sent_log_facts: int = 0
        self.throttle_waits: int = 0
        self.max_lag: int = 0
        self.checkpoints: int = 0
        self.checkpoint_bytes: int = 0
        self.log_truncated: int = 0
        self.restored_facts: int = 0

    def total_sent(self) -> int:
        """Tuples this worker put on remote channels."""
        return sum(self.sent_by_target.values())

    def total_messages(self) -> int:
        """Coalesced data messages this worker put on remote channels."""
        return sum(self.messages_by_target.values())
