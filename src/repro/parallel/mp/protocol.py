"""Wire protocol of the multiprocessing executor.

Messages are plain picklable tuples; the first element is a tag:

* ``("data", sender, predicate, facts)`` — worker → worker, tuples on a
  channel (the paper's ``t_ij`` predicates).
* ``("probe", seq)`` — coordinator → worker, a quiescence probe.
* ``("ack", processor, seq, sent, received, activity)`` — worker →
  coordinator, counters at probe time.  ``activity`` is a monotone
  counter of messages ingested and emitted; two identical consecutive
  snapshots with balanced global counters mean quiescence.
* ``("stop",)`` — coordinator → worker, terminate and report.
* ``("result", processor, outputs, stats)`` — worker → coordinator,
  final output relations and counters.
* ``("error", processor, text)`` — worker → coordinator, crash report.
* ``("trace", processor, events)`` — worker → coordinator, a batch of
  trace events in flat dict form (see :mod:`repro.obs`); sent only when
  the run is traced, flushed at probe time and before the final result.
"""

from __future__ import annotations

from typing import Dict, Hashable

__all__ = [
    "DATA",
    "PROBE",
    "ACK",
    "STOP",
    "RESULT",
    "ERROR",
    "TRACE",
    "WorkerStats",
]

DATA = "data"
PROBE = "probe"
ACK = "ack"
STOP = "stop"
RESULT = "result"
ERROR = "error"
TRACE = "trace"


class WorkerStats:
    """Picklable snapshot of one worker's counters."""

    __slots__ = ("firings", "probes", "iterations", "sent_by_target",
                 "received", "duplicates_dropped", "self_delivered")

    def __init__(self) -> None:
        self.firings: int = 0
        self.probes: int = 0
        self.iterations: int = 0
        self.sent_by_target: Dict[Hashable, int] = {}
        self.received: int = 0
        self.duplicates_dropped: int = 0
        self.self_delivered: int = 0

    def total_sent(self) -> int:
        """Tuples this worker put on remote channels."""
        return sum(self.sent_by_target.values())
