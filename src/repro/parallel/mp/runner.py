"""Coordinator of the multiprocessing executor.

Spawns one OS process per processor of a rewritten program, wires a
queue per channel, and detects global quiescence with a counting
double-probe (Mattern-style): two consecutive probe waves in which no
worker's activity counter moved, the global sent/received counters
balance, and no worker reports staged-but-unprocessed input imply that
no data message can be in flight and no work remains, i.e. the paper's
termination condition — all processors idle and all channels empty.
The full invariant argument lives in :mod:`.protocol`.

Under ``sync="ssp"`` the coordinator additionally computes the
*horizon* — the minimum step clock over workers that acked with
pending work — from each probe wave and broadcasts it on the next, so
workers can throttle themselves to the staleness bound.  Under the
default free-running mode the horizon is never set and workers step
unboundedly; either way answers are exact because termination uses the
same counting double-probe.

Fault tolerance.  The coordinator polls ``Process.is_alive`` inside the
ack-collection loop, so a worker that dies *silently* (``SIGKILL``, OOM
kill, an injected fault) is detected within about one probe interval
instead of hanging the run to the global timeout.  What happens next is
the ``recovery`` policy:

* ``"fail"`` (default) — raise :class:`~repro.errors.ExecutionError`
  naming the dead worker and its exit code;
* ``"restart"`` — exploit Theorem 1 plus monotonicity: respawn the
  worker from its base fragment, bump the *recovery epoch* (survivors
  zero their quiescence counters — see :mod:`.protocol` for why), and
  ask every survivor to replay its per-target sent-log to the newcomer.
  Re-derivation is idempotent and duplicates are discarded by the
  receiving step, so the recovered run's answer equals an undisturbed
  one exactly;
* ``"checkpoint"`` — like ``"restart"``, but workers additionally ship
  a consistent snapshot of their derived state to the coordinator every
  ``checkpoint_interval`` bursts (see :mod:`.checkpoint`).  A dead
  worker respawns *from its last checkpoint* instead of its base
  fragment, so it re-derives only the work since the snapshot; the
  checkpoint's per-sender watermarks let every peer truncate its
  sent-log down to the unacknowledged suffix, so replays shrink the
  same way.  Answers and total firings still equal an undisturbed run.

Every restart of the same worker after the first is preceded by an
exponentially growing backoff sleep (base :data:`_BACKOFF_BASE`, cap
:data:`_BACKOFF_CAP`), so a flapping processor cannot hot-loop the
spawn path; the global ``max_restarts`` budget still bounds the total.

A worker that is alive but fails to ack for the ack deadline is
reported as wedged (that is a bug or a deadlock, not a crash — restart
cannot be assumed safe, so this always raises).  The default deadline
is not a constant: :func:`default_ack_deadline` scales it with the
processor count and, under SSP, the staleness bound, and the resolved
value is logged on the trace's ``run_start`` event.

Python's GIL makes *thread*-level parallelism useless for this
workload; separate processes sidestep it, at the cost of pickling
tuples across queues.  The executor demonstrates that the rewritten
programs really run asynchronously and terminate; throughput studies
are the simulator's job.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import queue as queue_module
import time
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from ...errors import ConfigurationError, ExecutionError
from ...facts.database import Database
from ...engine.plan import join_kernel
from ...facts.backend import fact_backend, make_relation
from ...facts.packing import pack_facts
from ...facts.relation import Relation
from ...obs.tracer import Tracer, ensure_tracer
from ..faults import FaultPlan
from ..metrics import ParallelMetrics
from ..naming import processor_tag
from ..plans import ParallelProgram
from .checkpoint import approx_checkpoint_bytes
from .protocol import (
    ACK,
    CHECKPOINT,
    ERROR,
    PROBE,
    REPLAY,
    RESET,
    RESULT,
    STOP,
    TRACE,
    TRUNCATE,
    WorkerStats,
    typed_sort_key,
)
from .worker import worker_main

__all__ = ["MPResult", "default_ack_deadline", "run_multiprocessing"]

ProcessorId = Hashable

# Restart backoff: before the n-th respawn of the same worker (n >= 2)
# the coordinator sleeps min(base * 2**(n-2), cap) seconds.  The first
# restart is immediate — one-shot injected kills and isolated crashes
# should recover as fast as the detector allows.
_BACKOFF_BASE = 0.05
_BACKOFF_CAP = 1.0


def default_ack_deadline(processors: int, sync: str = "bsp",
                         staleness: int = 2) -> float:
    """The default wedged-worker deadline, scaled to the run's shape.

    A worker that stays alive but does not ack a probe wave for this
    many seconds is declared wedged.  The floor covers interpreter
    start-up and scheduler noise; every extra processor adds probe
    fan-out and queue contention, and under SSP a throttled worker may
    legitimately sit on a full staleness window of staged work before
    it next drains its inbox, so the bound widens with the staleness.
    """
    deadline = 15.0 + 0.5 * processors
    if sync == "ssp":
        deadline += 2.0 * staleness
    return deadline


@dataclass
class MPResult:
    """Outcome of a multiprocessing execution.

    Attributes:
        output: pooled answer, one relation per derived predicate.
        metrics: counters comparable with the simulator's (per-round
            fields stay empty — real execution has no global rounds).
        stats: raw per-worker counter snapshots.
        wall_seconds: end-to-end wall-clock time including process
            start-up and termination detection.
        restarts: workers restarted by the ``"restart"`` recovery
            policy (0 for an undisturbed run).
    """

    output: Database
    metrics: ParallelMetrics
    stats: Dict[ProcessorId, WorkerStats]
    wall_seconds: float
    restarts: int = 0

    def relation(self, predicate: str) -> Relation:
        """Convenience accessor for a pooled output relation."""
        return self.output.relation(predicate)


def _picklable_local(program: ParallelProgram, processor: ProcessorId,
                     database: Database,
                     backend: Optional[str] = None
                     ) -> Dict[str, Tuple[int, object]]:
    """The picklable base fragments of one worker.

    Under the columnar backend large fragments ship as packed column
    payloads (:mod:`repro.facts.packing`) rather than tuple lists, so
    the spawn-time pickle cost shrinks the same way DATA messages do.
    """
    if backend is None:
        backend = fact_backend()
    local = program.local_database(processor, database)
    picklable: Dict[str, Tuple[int, object]] = {}
    for rel in local:
        facts = sorted(rel, key=typed_sort_key)
        if backend == "columnar" and len(facts) >= 8:
            picklable[rel.name] = (rel.arity, pack_facts(facts))
        else:
            picklable[rel.name] = (rel.arity, facts)
    return picklable


def run_multiprocessing(program: ParallelProgram, database: Database,
                        probe_interval: float = 0.02,
                        timeout: float = 120.0,
                        start_method: Optional[str] = None,
                        tracer: Optional[Tracer] = None,
                        recovery: str = "fail",
                        faults: Optional[FaultPlan] = None,
                        max_restarts: int = 3,
                        ack_timeout: Optional[float] = None,
                        sync: str = "bsp",
                        staleness: int = 2,
                        checkpoint_interval: int = 4) -> MPResult:
    """Execute a rewritten program on real OS processes.

    Args:
        program: the rewritten program.
        database: the global extensional input.
        probe_interval: seconds between quiescence probe waves; also
            bounds failure-detection latency (a dead worker is noticed
            within about two intervals).
        timeout: overall wall-clock limit.
        start_method: multiprocessing start method (default: ``fork``
            when available, else the platform default).
        tracer: optional :class:`~repro.obs.Tracer`.  Workers buffer
            typed events and stream them back as ``("trace", ...)``
            batches; the coordinator forwards them into the tracer's
            sink alongside its own lifecycle/probe/recovery events.
        recovery: ``"fail"`` — a dead worker aborts the run with a
            precise error; ``"restart"`` — dead workers are respawned
            from their base fragments and peers replay their sent-logs
            (the recovered answer is exactly the undisturbed one);
            ``"checkpoint"`` — dead workers are respawned from their
            last coordinator-held checkpoint and peers replay only the
            unacknowledged suffix of their sent-logs (same answer,
            strictly less re-derivation and replay).
        faults: optional :class:`~repro.parallel.faults.FaultPlan` to
            inject (kills and channel disturbances).  Kill faults are
            one-shot: restarted workers are spawned unarmed.
        max_restarts: total worker restarts allowed before giving up
            (must be ``>= 0``).
        ack_timeout: seconds a live worker may go without acking a
            probe before the run is declared wedged; ``None`` (the
            default) derives the deadline from the run's shape via
            :func:`default_ack_deadline`.
        checkpoint_interval: bursts between worker checkpoints under
            ``recovery="checkpoint"`` (must be ``>= 1``); ignored by
            the other policies.
        sync: ``"bsp"`` (default) — workers run free, never held back
            (real execution has no barriers; the name states which
            semantics the mode matches, not that rounds exist);
            ``"ssp"`` — workers throttle their stepping to at most
            ``staleness`` steps ahead of the probe-carried horizon.
        staleness: SSP lead bound; must be ``>= 1`` so the slowest
            work-holding worker can always step.

    Raises:
        ConfigurationError: on an invalid parameter value.
        ExecutionError: on worker crash, unrecovered death, wedged
            worker or timeout.
    """
    if recovery not in ("fail", "restart", "checkpoint"):
        raise ConfigurationError(
            f"unknown recovery policy {recovery!r}: expected 'fail', "
            "'restart' or 'checkpoint'")
    if sync not in ("bsp", "ssp"):
        raise ExecutionError(
            f"unknown sync mode {sync!r}: expected 'bsp' or 'ssp'")
    if sync == "ssp" and staleness < 1:
        raise ExecutionError(
            "ssp requires staleness >= 1: the slowest work-holding worker "
            "has lag 0 and must always be allowed to step")
    if max_restarts < 0:
        raise ConfigurationError(
            f"max_restarts must be >= 0, got {max_restarts}")
    if checkpoint_interval < 1:
        raise ConfigurationError(
            f"checkpoint_interval must be >= 1 burst, got "
            f"{checkpoint_interval}")
    if ack_timeout is not None and ack_timeout <= 0:
        raise ConfigurationError(
            f"ack deadline must be positive, got {ack_timeout}")
    started = time.perf_counter()
    tracer = ensure_tracer(tracer)
    tracing = tracer.enabled
    if start_method is None:
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else methods[0]
    context = multiprocessing.get_context(start_method)

    order = sorted(program.processors, key=processor_tag)
    tags = {proc: processor_tag(proc) for proc in order}
    if ack_timeout is None:
        ack_timeout = default_ack_deadline(len(order), sync, staleness)
    if faults is not None:
        known = set(tags.values())
        for kill in faults.kills:
            if kill.processor not in known:
                raise ExecutionError(
                    f"kill fault names unknown processor "
                    f"{kill.processor!r}; known: {sorted(known)}")
    inboxes = {proc: context.Queue() for proc in order}
    coordinator_queue = context.Queue()
    backend = fact_backend()
    kernel = join_kernel()
    locals_by_proc = {proc: _picklable_local(program, proc, database, backend)
                      for proc in order}
    worker_faults = {
        proc: faults.worker_faults(tags[proc]) if faults is not None else None
        for proc in order
    }

    if tracing:
        tracer.run_start(scheme=program.scheme + "+mp",
                         processors=[tags[p] for p in order], executor="mp",
                         recovery=recovery,
                         ack_deadline=round(ack_timeout, 3))

    processes: Dict[ProcessorId, multiprocessing.Process] = {}
    epoch = 0
    restarts = 0
    restart_counts: Dict[ProcessorId, int] = {}
    checkpoints: Dict[ProcessorId, Dict[str, object]] = {}
    checkpoint_bytes_total = 0
    # recovery_seconds: death detection -> the next fully-acked probe
    # wave (every worker back in the protocol).  A death while recovery
    # is still pending (cascading failure) extends the same window.
    recovery_pending = False
    recovery_started = 0.0
    recovery_seconds_total = 0.0

    def spawn(proc: ProcessorId, armed: bool,
              restore: Optional[Dict[str, object]] = None) -> None:
        """Start (or restart) the worker of ``proc``.

        Restarted workers reuse their original inbox queue — messages
        already enqueued for the dead predecessor are still valid input
        (monotonicity) — and are spawned with ``armed=False`` so an
        injected kill fires at most once per processor.  Under
        ``recovery="checkpoint"`` a restart passes the dead worker's
        last checkpoint payload as ``restore``, so the newcomer resumes
        from the snapshot instead of the base fragment.
        """
        injected = worker_faults[proc]
        if injected is not None and not armed:
            injected = dataclasses.replace(injected, kill_after=None)
            if injected.kill_after is None and not injected.channel_faults:
                injected = None
        interval = checkpoint_interval if recovery == "checkpoint" else None
        process = context.Process(
            target=worker_main,
            args=(program.program_for(proc), locals_by_proc[proc],
                  inboxes[proc], inboxes, coordinator_queue, tracing,
                  injected, epoch, sync, staleness, backend, kernel,
                  interval, restore),
            daemon=True)
        process.start()
        processes[proc] = process

    def absorb_checkpoint(message: tuple, fanout: bool = True) -> None:
        """Store a worker's latest checkpoint; fan out truncations.

        Each watermark in the payload tells one peer how far its
        sent-log toward the checkpointing worker is already covered by
        the snapshot; a ``(TRUNCATE, proc, stamp)`` lets that peer drop
        the covered prefix.  Inbox FIFO order guarantees the peer sees
        the TRUNCATE before any later REPLAY request for ``proc``, so
        replays are exactly the post-truncation suffix.
        """
        nonlocal checkpoint_bytes_total
        _, proc, payload = message
        checkpoints[proc] = payload
        checkpoint_bytes_total += approx_checkpoint_bytes(payload)
        if not fanout:
            return
        for sender, stamp in payload["watermarks"].items():
            inbox = inboxes.get(sender)
            if inbox is not None:
                inbox.put((TRUNCATE, proc, stamp))

    def fail_dead(dead: List[ProcessorId], reason: str) -> None:
        names = ", ".join(
            f"{tags[proc]!r} (exit code {processes[proc].exitcode})"
            for proc in dead)
        raise ExecutionError(
            f"worker{'s' if len(dead) > 1 else ''} {names} died without "
            f"reporting an error; {reason}")

    def handle_dead(dead: List[ProcessorId]) -> None:
        """Apply the recovery policy to silently-dead workers."""
        nonlocal epoch, restarts, recovery_pending, recovery_started
        # A death detected while a previous recovery is still pending
        # (peers mid-replay, newcomer mid-catch-up) is a *cascading*
        # failure; the trace marks it so soak runs can tell the two
        # apart.
        cascading = recovery_pending
        if tracing:
            for proc in dead:
                tracer.worker_down(tags[proc],
                                   exitcode=processes[proc].exitcode,
                                   epoch=epoch, cascading=cascading)
        if recovery == "fail":
            fail_dead(dead, "recovery policy is 'fail'")
        if restarts + len(dead) > max_restarts:
            fail_dead(dead, f"max_restarts={max_restarts} exhausted")
        restarts += len(dead)
        if not recovery_pending:
            recovery_pending = True
            recovery_started = time.perf_counter()
        epoch += 1
        # Survivors first zero their quiescence counters at the new
        # epoch, then replay their sent-logs to every newcomer; inbox
        # FIFO order guarantees each survivor processes its RESET
        # before the probes of the next wave.  RESET goes out *before*
        # the respawn (and its backoff sleep), shrinking the window in
        # which a newcomer's first DATA could reach a survivor still
        # counting in the old epoch.
        survivors = [proc for proc in order if proc not in dead]
        for proc in survivors:
            inboxes[proc].put((RESET, epoch))
        for proc in dead:
            processes[proc].join(timeout=1.0)
            count = restart_counts.get(proc, 0) + 1
            restart_counts[proc] = count
            if count > 1:
                # Per-worker exponential backoff: a flapping processor
                # cannot hot-loop the spawn path, and repeated deaths
                # burn wall-clock instead of churning the cluster.
                time.sleep(min(_BACKOFF_BASE * 2.0 ** (count - 2),
                               _BACKOFF_CAP))
            restore = (checkpoints.get(proc)
                       if recovery == "checkpoint" else None)
            spawn(proc, armed=False, restore=restore)
            if tracing:
                tracer.worker_restart(tags[proc], epoch=epoch,
                                      restored=restore is not None)
        for proc in survivors:
            for casualty in dead:
                inboxes[proc].put((REPLAY, casualty))

    workers_started = False
    try:
        for proc in order:
            spawn(proc, armed=True)
            if tracing:
                tracer.worker_spawn(tags[proc])
        workers_started = True

        sequence = 0
        probes_sent = 0
        previous: Optional[Dict[ProcessorId,
                                Tuple[int, int, int, int, bool]]] = None
        # SSP horizon broadcast on the next probe wave: min clock over
        # workers whose last ack reported pending work, None when no
        # bound currently applies (free-running mode, first wave, the
        # wave after a recovery, or an all-drained cluster).
        horizon: Optional[int] = None
        deadline = started + timeout
        while True:
            if time.perf_counter() > deadline:
                raise ExecutionError(
                    f"no quiescence within {timeout} seconds")
            sequence += 1
            for proc in order:
                inboxes[proc].put((PROBE, sequence, horizon))
                probes_sent += 1
            if tracing:
                tracer.probe(seq=sequence, wave=len(order), horizon=horizon)
            snapshot: Dict[ProcessorId, Tuple[int, int, int, int, bool]] = {}
            wave_started = time.perf_counter()
            recovered = False
            while len(snapshot) < len(order):
                now = time.perf_counter()
                if now > deadline:
                    raise ExecutionError(
                        f"no quiescence within {timeout} seconds")
                dead = [proc for proc in order
                        if proc not in snapshot
                        and not processes[proc].is_alive()]
                if dead:
                    # Prefer a worker's own crash report when one is
                    # already queued (a polite crash exits 0 after
                    # posting ERROR; only truly silent deaths recover).
                    while True:
                        try:
                            message = coordinator_queue.get_nowait()
                        except queue_module.Empty:
                            break
                        if message[0] == ERROR:
                            raise ExecutionError(
                                f"worker {tags[message[1]]!r} crashed:\n"
                                f"{message[2]}")
                        if message[0] == TRACE:
                            for payload in message[2]:
                                tracer.ingest(payload)
                        if message[0] == CHECKPOINT:
                            # A snapshot that raced the death is still
                            # the latest one; keep it (and let peers
                            # truncate) before deciding how to respawn.
                            absorb_checkpoint(message)
                    handle_dead(dead)
                    recovered = True
                    break
                if now - wave_started > ack_timeout:
                    missing = ", ".join(repr(tags[proc]) for proc in order
                                        if proc not in snapshot)
                    raise ExecutionError(
                        f"worker(s) {missing} alive but did not ack probe "
                        f"{sequence} within {ack_timeout} seconds (wedged?)")
                try:
                    message = coordinator_queue.get(
                        timeout=min(probe_interval, deadline - now))
                except queue_module.Empty:
                    continue
                tag = message[0]
                if tag == ERROR:
                    raise ExecutionError(
                        f"worker {tags[message[1]]!r} crashed:\n{message[2]}")
                if tag == TRACE:
                    for payload in message[2]:
                        tracer.ingest(payload)
                    continue
                if tag == CHECKPOINT:
                    absorb_checkpoint(message)
                    continue
                if tag == ACK and message[2] == sequence and message[6] == epoch:
                    (_, proc, _seq, sent, received, activity, _epoch,
                     clock, pending) = message
                    snapshot[proc] = (sent, received, activity, clock, pending)
            if recovered:
                # The aborted wave's counters are meaningless across the
                # epoch change; restart the double-probe from scratch.
                # The stale horizon goes too: the restarted worker's
                # clock is 0 and must not be throttled against pre-death
                # clocks (one unbounded wave is within the SSP slack).
                previous = None
                horizon = None
                continue
            if recovery_pending:
                # First fully-acked wave after a death: every worker
                # (newcomers included) is back in the protocol, so the
                # recovery window closes here.
                recovery_seconds_total += time.perf_counter() - recovery_started
                recovery_pending = False
            if sync == "ssp":
                pending_clocks = [snapshot[p][3] for p in order
                                  if snapshot[p][4]]
                horizon = min(pending_clocks) if pending_clocks else None
            total_sent = sum(entry[0] for entry in snapshot.values())
            total_received = sum(entry[1] for entry in snapshot.values())
            balanced = total_sent == total_received
            unchanged = previous is not None and all(
                snapshot[p][2] == previous[p][2] for p in order)
            # ``pending`` must be clear too: an SSP-throttled worker can
            # sit on staged input with static activity and balanced
            # counters (see .protocol); the conjunct is sound — and a
            # no-op in steady state — for the free-running mode as well.
            if balanced and unchanged and not any(
                    snapshot[p][4] for p in order):
                break
            previous = snapshot
            time.sleep(probe_interval)

        for proc in order:
            inboxes[proc].put((STOP,))
        outputs: Dict[ProcessorId, Dict[str, List[tuple]]] = {}
        stats: Dict[ProcessorId, WorkerStats] = {}
        while len(outputs) < len(order):
            now = time.perf_counter()
            if now > deadline:
                raise ExecutionError(
                    f"workers did not report within {timeout} seconds")
            # A worker that exits non-zero here died between quiescence
            # and its final report; its peers have already been told to
            # stop, so replay targets are gone and restart is no longer
            # possible — fail precisely instead.
            dead = [proc for proc in order
                    if proc not in outputs
                    and not processes[proc].is_alive()
                    and processes[proc].exitcode not in (None, 0)]
            if dead:
                fail_dead(dead, "death during result collection is not "
                                "recoverable")
            try:
                message = coordinator_queue.get(
                    timeout=min(0.1, deadline - now))
            except queue_module.Empty:
                continue
            tag = message[0]
            if tag == ERROR:
                raise ExecutionError(
                    f"worker {tags[message[1]]!r} crashed:\n{message[2]}")
            if tag == TRACE:
                for payload in message[2]:
                    tracer.ingest(payload)
                continue
            if tag == CHECKPOINT:
                # Workers have been told to stop; keep the slot current
                # but skip the truncation fan-out (nobody will read it).
                absorb_checkpoint(message, fanout=False)
                continue
            if tag == RESULT:
                _, proc, worker_outputs, worker_stats = message
                outputs[proc] = worker_outputs
                stats[proc] = worker_stats
                if tracing:
                    tracer.worker_exit(tags[proc],
                                       firings=worker_stats.firings,
                                       probes=worker_stats.probes,
                                       received=worker_stats.received)
        for process in processes.values():
            process.join(timeout=5.0)
    finally:
        if workers_started or processes:
            for process in processes.values():
                if process.is_alive():
                    process.terminate()

    metrics = ParallelMetrics(scheme=program.scheme + "+mp",
                              processors=tuple(order), sync=sync,
                              staleness=staleness if sync == "ssp" else None)
    metrics.control_messages = probes_sent
    metrics.restarts = restarts
    metrics.recovery_seconds = recovery_seconds_total
    # Coordinator-side total: a worker's own checkpoint_bytes counter
    # dies with it, the slot ledger does not.
    metrics.checkpoint_bytes = checkpoint_bytes_total
    for proc in order:
        worker_stats = stats[proc]
        metrics.recovery_replayed_facts += worker_stats.replayed
        metrics.retried += worker_stats.retried
        metrics.log_truncated += worker_stats.log_truncated
        metrics.firings[proc] = worker_stats.firings
        metrics.probes[proc] = worker_stats.probes
        metrics.received[proc] = worker_stats.received
        metrics.duplicates_dropped[proc] = worker_stats.duplicates_dropped
        metrics.self_delivered[proc] = worker_stats.self_delivered
        metrics.replayed[proc] = worker_stats.replayed
        # Real execution has no tick model: ``stalled`` counts throttle
        # *episodes* here (entries into the throttled state), and
        # ``max_staleness_lag`` is the workers' own step-start maximum.
        if worker_stats.throttle_waits:
            metrics.stalled[proc] = worker_stats.throttle_waits
        if worker_stats.max_lag > metrics.max_staleness_lag:
            metrics.max_staleness_lag = worker_stats.max_lag
        for target, count in worker_stats.sent_by_target.items():
            metrics.sent[(proc, target)] += count
        for target, count in worker_stats.messages_by_target.items():
            metrics.channel_messages[(proc, target)] += count
        for target, nbytes in worker_stats.bytes_by_target.items():
            metrics.channel_bytes[(proc, target)] += nbytes

    output = Database()
    for predicate in program.derived:
        arity = program.program_for(order[0]).arities[predicate]
        pooled = make_relation(predicate, arity)
        for proc in order:
            facts = outputs[proc].get(predicate, [])
            pooled.update(facts)
            metrics.pooled_tuples += len(facts)
        output.attach(pooled)

    wall_seconds = time.perf_counter() - started
    if tracing:
        tracer.run_end(firings=metrics.total_firings(),
                       sent=metrics.total_sent(),
                       control_messages=probes_sent,
                       restarts=restarts,
                       wall_seconds=wall_seconds)
    return MPResult(output=output, metrics=metrics, stats=stats,
                    wall_seconds=wall_seconds, restarts=restarts)
