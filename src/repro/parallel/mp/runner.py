"""Coordinator of the multiprocessing executor.

Spawns one OS process per processor of a rewritten program, wires a
queue per channel, and detects global quiescence with a counting
double-probe (Mattern-style): two consecutive probe waves in which no
worker's activity counter moved and the global sent/received counters
balance imply that no data message can be in flight, i.e. the paper's
termination condition — all processors idle and all channels empty.

Python's GIL makes *thread*-level parallelism useless for this
workload; separate processes sidestep it, at the cost of pickling
tuples across queues.  The executor demonstrates that the rewritten
programs really run asynchronously and terminate; throughput studies
are the simulator's job.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from ...errors import ExecutionError
from ...facts.database import Database
from ...facts.relation import Relation
from ...obs.tracer import Tracer, ensure_tracer
from ..metrics import ParallelMetrics
from ..naming import processor_tag
from ..plans import ParallelProgram
from .protocol import ACK, ERROR, PROBE, RESULT, STOP, TRACE, WorkerStats
from .worker import worker_main

__all__ = ["MPResult", "run_multiprocessing"]

ProcessorId = Hashable


@dataclass
class MPResult:
    """Outcome of a multiprocessing execution.

    Attributes:
        output: pooled answer, one relation per derived predicate.
        metrics: counters comparable with the simulator's (per-round
            fields stay empty — real execution has no global rounds).
        stats: raw per-worker counter snapshots.
        wall_seconds: end-to-end wall-clock time including process
            start-up and termination detection.
    """

    output: Database
    metrics: ParallelMetrics
    stats: Dict[ProcessorId, WorkerStats]
    wall_seconds: float

    def relation(self, predicate: str) -> Relation:
        """Convenience accessor for a pooled output relation."""
        return self.output.relation(predicate)


def _picklable_local(program: ParallelProgram, processor: ProcessorId,
                     database: Database) -> Dict[str, Tuple[int, List[tuple]]]:
    local = program.local_database(processor, database)
    return {rel.name: (rel.arity, sorted(rel, key=repr)) for rel in local}


def run_multiprocessing(program: ParallelProgram, database: Database,
                        probe_interval: float = 0.02,
                        timeout: float = 120.0,
                        start_method: Optional[str] = None,
                        tracer: Optional[Tracer] = None) -> MPResult:
    """Execute a rewritten program on real OS processes.

    Args:
        program: the rewritten program.
        database: the global extensional input.
        probe_interval: seconds between quiescence probe waves.
        timeout: overall wall-clock limit.
        start_method: multiprocessing start method (default: ``fork``
            when available, else the platform default).
        tracer: optional :class:`~repro.obs.Tracer`.  Workers buffer
            typed events and stream them back as ``("trace", ...)``
            batches; the coordinator forwards them into the tracer's
            sink alongside its own lifecycle/probe events.

    Raises:
        ExecutionError: on worker crash or timeout.
    """
    started = time.perf_counter()
    tracer = ensure_tracer(tracer)
    tracing = tracer.enabled
    if start_method is None:
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else methods[0]
    context = multiprocessing.get_context(start_method)

    order = sorted(program.processors, key=processor_tag)
    tags = {proc: processor_tag(proc) for proc in order}
    inboxes = {proc: context.Queue() for proc in order}
    coordinator_queue = context.Queue()

    if tracing:
        tracer.run_start(scheme=program.scheme + "+mp",
                         processors=[tags[p] for p in order], executor="mp")
    workers = []
    try:
        for proc in order:
            process = context.Process(
                target=worker_main,
                args=(program.program_for(proc),
                      _picklable_local(program, proc, database),
                      inboxes[proc], inboxes, coordinator_queue, tracing),
                daemon=True)
            process.start()
            workers.append(process)
            if tracing:
                tracer.worker_spawn(tags[proc])

        sequence = 0
        probes_sent = 0
        previous: Optional[Dict[ProcessorId, Tuple[int, int, int]]] = None
        deadline = started + timeout
        while True:
            if time.perf_counter() > deadline:
                raise ExecutionError(
                    f"no quiescence within {timeout} seconds")
            sequence += 1
            for proc in order:
                inboxes[proc].put((PROBE, sequence))
                probes_sent += 1
            if tracing:
                tracer.probe(seq=sequence, wave=len(order))
            snapshot: Dict[ProcessorId, Tuple[int, int, int]] = {}
            while len(snapshot) < len(order):
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    raise ExecutionError(
                        f"no quiescence within {timeout} seconds")
                message = coordinator_queue.get(timeout=remaining)
                tag = message[0]
                if tag == ERROR:
                    raise ExecutionError(
                        f"worker {message[1]!r} crashed:\n{message[2]}")
                if tag == TRACE:
                    for payload in message[2]:
                        tracer.ingest(payload)
                    continue
                if tag == ACK and message[2] == sequence:
                    _, proc, _seq, sent, received, activity = message
                    snapshot[proc] = (sent, received, activity)
            total_sent = sum(s for s, _, _ in snapshot.values())
            total_received = sum(r for _, r, _ in snapshot.values())
            balanced = total_sent == total_received
            unchanged = previous is not None and all(
                snapshot[p][2] == previous[p][2] for p in order)
            if balanced and unchanged:
                break
            previous = snapshot
            time.sleep(probe_interval)

        for proc in order:
            inboxes[proc].put((STOP,))
        outputs: Dict[ProcessorId, Dict[str, List[tuple]]] = {}
        stats: Dict[ProcessorId, WorkerStats] = {}
        while len(outputs) < len(order):
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                raise ExecutionError(
                    f"workers did not report within {timeout} seconds")
            message = coordinator_queue.get(timeout=remaining)
            tag = message[0]
            if tag == ERROR:
                raise ExecutionError(
                    f"worker {message[1]!r} crashed:\n{message[2]}")
            if tag == TRACE:
                for payload in message[2]:
                    tracer.ingest(payload)
                continue
            if tag == RESULT:
                _, proc, worker_outputs, worker_stats = message
                outputs[proc] = worker_outputs
                stats[proc] = worker_stats
                if tracing:
                    tracer.worker_exit(tags[proc],
                                       firings=worker_stats.firings,
                                       probes=worker_stats.probes,
                                       received=worker_stats.received)
        for process in workers:
            process.join(timeout=5.0)
    finally:
        for process in workers:
            if process.is_alive():
                process.terminate()

    metrics = ParallelMetrics(scheme=program.scheme + "+mp",
                              processors=tuple(order))
    metrics.control_messages = probes_sent
    for proc in order:
        worker_stats = stats[proc]
        metrics.firings[proc] = worker_stats.firings
        metrics.probes[proc] = worker_stats.probes
        metrics.received[proc] = worker_stats.received
        metrics.duplicates_dropped[proc] = worker_stats.duplicates_dropped
        metrics.self_delivered[proc] = worker_stats.self_delivered
        for target, count in worker_stats.sent_by_target.items():
            metrics.sent[(proc, target)] += count

    output = Database()
    for predicate in program.derived:
        arity = program.program_for(order[0]).arities[predicate]
        pooled = Relation(predicate, arity)
        for proc in order:
            facts = outputs[proc].get(predicate, [])
            pooled.update(facts)
            metrics.pooled_tuples += len(facts)
        output.attach(pooled)

    wall_seconds = time.perf_counter() - started
    if tracing:
        tracer.run_end(firings=metrics.total_firings(),
                       sent=metrics.total_sent(),
                       control_messages=probes_sent,
                       wall_seconds=wall_seconds)
    return MPResult(output=output, metrics=metrics, stats=stats,
                    wall_seconds=wall_seconds)
