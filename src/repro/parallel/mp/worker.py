"""The worker process of the multiprocessing executor.

Each worker owns one :class:`~repro.parallel.processor.ProcessorRuntime`
and a queue per peer.  It drains its inbox, steps the semi-naive loop on
whatever arrived (receives are asynchronous — the paper's stipulation),
routes new tuples through the compiled
:class:`~repro.parallel.routing.RouterTable`, and answers the
coordinator's quiescence probes with its counters (see
:mod:`.protocol` for the probe/ack invariants).

Send coalescing.  Outbound tuples are not put on peer queues as they
are routed: they accumulate in a per-peer buffer across the steps of
one burst (the inner ``while has_pending_input()`` loop) and are
flushed as a single multi-predicate ``data`` message — one queue put
and one pickle per peer per burst — when the burst ends, when a
buffer crosses :data:`_COALESCE_MAX_FACTS`, at every probe (before the
ack, so buffered tuples can never hide from the quiescence balance),
and before an injected kill.  ``REPRO_MP_COALESCE=off`` restores
one message per ``(target, predicate)`` routing batch for comparison.
The quiescence counters are incremented at flush time, symmetric with
the receiver counting at dequeue time, so Theorem-2 accounting is
untouched (see :mod:`.protocol`).

Stale-synchronous throttling.  Under ``sync="ssp"`` the worker
compares its local step count against the horizon the coordinator
broadcasts on probes and stops *stepping* once it leads by the
staleness bound — the inbox keeps draining, probes keep being acked
(with the worker's clock and a pending flag), and replays keep being
served, so only rule evaluation is paced.  See :mod:`.protocol` for
the soundness and termination argument.

Fault tolerance.  Every worker keeps a *sent-log*: per peer and
predicate, the set of facts it has routed there, in first-send order
(an insertion-ordered dict doubling as the dedup set), each entry
carrying the channel stamp of the last message that carried the fact
(``None`` while the fact has not reached the wire).  When the
coordinator restarts a dead peer it asks the survivors to ``replay``
their logs to it; combined with the restarted worker re-deriving its
own outputs from its base fragment (``recovery="restart"``) or
resuming from its last checkpoint (``recovery="checkpoint"``),
monotonicity plus duplicate-dropping makes the recovered run's answer
identical to an undisturbed one (Theorem 1 under failure).

Checkpointing (``recovery="checkpoint"``).  Every
``checkpoint_interval`` productive step bursts the worker snapshots its
runtime (:meth:`~repro.parallel.processor.ProcessorRuntime.
export_state`), counters, sent-log and per-sender watermarks into a
:class:`~.checkpoint.WorkerCheckpoint` and ships it to the coordinator,
which fans the watermarks back out as ``truncate`` messages — peers
then drop the acknowledged prefix of their logs, so log memory and
replay cost stop growing with total derived facts.  A worker spawned
with a ``restore`` payload loads the snapshot instead of running its
initialization rules (its init output is already inside the restored
``t_out``), then re-sends every *unwired* log entry — facts its
predecessor buffered, delayed or had dropped — through the reliable
path, healing whatever died with the old incarnation.

Reliable retry.  Injected ``drop`` faults apply to *first*
transmissions only (the same convention replays always had): dropped
facts are remembered and re-sent at the next probe through
:func:`send_now`, so a lossy channel delays a fact by at most one probe
interval instead of losing it.  This is what lets the chaos harness
demand exact answers under drop faults for *both* recovery policies.

Replay equivalence of the deduplicated log: receivers discard
duplicates (the difference step of the paper's receiving rules), so
replaying each logged fact once is indistinguishable to the receiver
from replaying the raw historical send sequence — any extra copies in
that sequence would have been dropped on arrival anyway.  Deduplication
also bounds the log: per peer it can never exceed this worker's own
``t_out`` sizes (times fan-out), whatever the channel faults or restart
history did; the bound is reported as ``sent_log_facts`` in
:class:`~.protocol.WorkerStats`.  ``reset`` messages carry the new
recovery epoch; see :mod:`.protocol` for why quiescence counters must
be zeroed at that cut.

Fault injection.  When a :class:`~repro.parallel.faults.WorkerFaults`
slice is supplied, the worker disturbs its *own* sends (drop / delay /
duplicate, seeded per worker) and, if armed with a kill fault, delivers
a real ``SIGKILL`` to itself once its firing count crosses the
threshold.  The suicide happens at a step boundary after flushing the
outbound queue feeders, so the shared queue locks are never torn down
mid-write — the failure is silent at the protocol level (no ``error``
message) but clean at the OS level, which is exactly the scenario the
coordinator's liveness probing exists for.
"""

from __future__ import annotations

import os
import queue as queue_module
import signal
import time
import traceback
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from ...engine.plan import set_join_kernel
from ...facts.backend import make_relation, set_fact_backend
from ...facts.database import Database
from ...facts.packing import (
    PACK_MIN_FACTS,
    is_packed,
    pack_facts,
    packed_fact_count,
    unpack_facts,
)
from ...obs.sinks import InMemorySink
from ...obs.tracer import NULL_TRACER, Tracer
from ..faults import DELAY, DELIVER, DROP, WorkerFaults
from ..metrics import approx_batch_bytes
from ..naming import processor_tag
from ..plans import ProcessorProgram
from ..processor import ProcessorRuntime
from .checkpoint import (
    Stamp,
    WorkerCheckpoint,
    approx_checkpoint_bytes,
    decode_checkpoint,
    encode_checkpoint,
)
from .protocol import (
    ACK,
    CHECKPOINT,
    DATA,
    ERROR,
    PROBE,
    REPLAY,
    RESET,
    RESULT,
    STOP,
    TRACE,
    TRUNCATE,
    WorkerStats,
    typed_sort_key,
)

__all__ = ["worker_main"]

ProcessorId = Hashable

# Adaptive idle poll bounds.  ``Queue.get(timeout)`` wakes as soon as a
# message arrives, so a long timeout costs no latency — it only sets
# how often an idle worker spins through an empty loop.  The poll
# starts snappy, doubles on every fully idle pass (nothing drained,
# nothing stepped) and snaps back to the minimum on any activity.
_POLL_MIN_SECONDS = 0.0005
_POLL_MAX_SECONDS = 0.04

# Outbound facts buffered per peer before an early flush.  The normal
# flush point is the end of a step burst; the cap only bounds message
# size (pickling cost, peer latency) inside very productive bursts.
_COALESCE_MAX_FACTS = 512

# Minimum batch size worth transposing into packed columns on the wire
# (below it the per-column overhead outweighs the per-fact savings; the
# byte model in parallel/metrics.py reflects both formats either way).
# Shared with the checkpoint encoder via repro.facts.packing.
_PACK_MIN_FACTS = PACK_MIN_FACTS


def _rebuild_database(relations: Mapping[str, Tuple[int, object]]) -> Database:
    """Reconstruct a local database from its picklable form.

    Each value is ``(arity, payload)`` where the payload is a fact list
    or, under the columnar wire format, a packed column payload.
    """
    database = Database()
    for name, (arity, payload) in relations.items():
        facts = unpack_facts(payload) if is_packed(payload) else payload
        database.attach(make_relation(name, arity, facts))
    return database


def worker_main(program: ProcessorProgram,
                local_relations: Mapping[str, Tuple[int, List[tuple]]],
                inbox, peer_queues: Mapping[ProcessorId, object],
                coordinator_queue, trace: bool = False,
                faults: Optional[WorkerFaults] = None,
                epoch: int = 0, sync: str = "bsp",
                staleness: int = 2, backend: str = "tuple",
                kernel: str = "compiled",
                checkpoint_interval: Optional[int] = None,
                restore: Optional[Dict[str, object]] = None) -> None:
    """Entry point of a worker process.

    Args:
        program: this processor's rewritten program.
        local_relations: picklable base fragments ``{name: (arity, facts)}``.
        inbox: this worker's receive queue.
        peer_queues: send queues of every processor (self included).
        coordinator_queue: queue for acks/results to the coordinator.
        trace: when True, buffer typed trace events locally and stream
            them to the coordinator as ``("trace", ...)`` batches.
        faults: optional injected-fault slice for this worker.
        epoch: recovery epoch to start in (non-zero for workers spawned
            as replacements after a failure).
        sync: ``"bsp"`` — free-running (steps are never held back);
            ``"ssp"`` — the worker throttles its own stepping when its
            clock runs ``staleness`` or more ahead of the horizon the
            coordinator broadcasts on probes (see :mod:`.protocol`).
            Only stepping is throttled: draining, acking, replaying and
            flushing continue, so termination detection and recovery
            are unaffected.
        staleness: SSP lead bound (ignored unless ``sync == "ssp"``).
        backend: fact-storage backend for this worker's local database
            (``set_fact_backend`` is applied before any relation is
            built).  Under ``"columnar"`` outbound DATA payloads of
            :data:`_PACK_MIN_FACTS` or more facts ship as packed column
            buffers (:mod:`repro.facts.packing`) instead of pickled
            tuple lists; receivers of either format reconstruct the
            identical fact tuples, so the choice is invisible to
            routing and quiescence accounting.
        kernel: join kernel for this worker's rule evaluation
            (``set_join_kernel`` is applied alongside the backend, so
            workers inherit the coordinator process's kernel choice).
        checkpoint_interval: when set (``recovery="checkpoint"``), ship
            a checkpoint to the coordinator every this many productive
            step bursts.
        restore: optional encoded checkpoint payload
            (:func:`~.checkpoint.encode_checkpoint`); when given, the
            worker resumes from the snapshot instead of firing its
            initialization rules.
    """
    set_fact_backend(backend)
    set_join_kernel(kernel)
    pack_wire = backend == "columnar"
    me = program.processor
    tag = processor_tag(me)
    stats = WorkerStats()
    activity = 0
    # SSP state: the freshest horizon seen on a probe (None until the
    # first probe arrives — the bound is enforced to within one wave),
    # and whether the last burst ended in the throttled state (so the
    # stall is counted and traced once per episode, not per poll).
    throttling = sync == "ssp"
    horizon: Optional[int] = None
    was_throttled = False
    # Per-epoch quiescence counters: zeroed on RESET so the global
    # sent/received balance survives the loss of a dead peer's counters.
    epoch_sent = 0
    epoch_received = 0
    # Channel stamps: the incarnation is the epoch this worker process
    # was *spawned* in — it never moves with later RESETs, so stamps of
    # successive incarnations of one processor are strictly ordered —
    # and out_seq counts messages per target channel.
    incarnation = epoch
    out_seq: Dict[ProcessorId, int] = {}
    # Highest stamp dequeued per sender; published in checkpoints so the
    # coordinator can fan out sent-log truncations (see .protocol).
    watermarks: Dict[ProcessorId, Stamp] = {}
    # Per-peer, per-predicate log of everything ever routed there, for
    # replay on a peer's restart.  The inner dict is insertion-ordered
    # and keyed by fact, so it deduplicates while preserving first-send
    # order; the value is the stamp of the last message that carried
    # the fact (None while it has not reached the wire).  See the
    # module docstring for why the deduplicated log is
    # replay-equivalent and memory-bounded.
    sent_log: Dict[ProcessorId, Dict[str, Dict[tuple, Optional[Stamp]]]] = {}
    # Facts whose first transmission an injected drop fault swallowed,
    # re-sent reliably at the next probe (see module docstring).
    unsent: Dict[ProcessorId, Dict[str, List[tuple]]] = {}
    bursts_since_checkpoint = 0
    # Outbound coalescing buffers: facts per peer per predicate, and a
    # per-peer fact count driving the early-flush threshold.  Read the
    # toggle here (not at import) so tests can set the env var before
    # spawning workers.
    coalesce = os.environ.get("REPRO_MP_COALESCE", "on") != "off"
    outbound: Dict[ProcessorId, Dict[str, List[tuple]]] = {}
    outbound_counts: Dict[ProcessorId, int] = {}
    # Sends held back by an injected delay fault, flushed at the next
    # probe (so a delayed tuple is late by at most one probe interval).
    delayed: List[Tuple[ProcessorId, str, tuple]] = []
    channel_faults = faults.channel_state() if faults is not None else None
    kill_after = faults.kill_after if faults is not None else None
    if trace:
        trace_sink = InMemorySink()
        tracer: Tracer = Tracer(trace_sink, clock=time.monotonic)
    else:
        trace_sink = None  # type: ignore[assignment]
        tracer = NULL_TRACER

    def flush_trace() -> None:
        if trace and trace_sink.events:
            coordinator_queue.put(
                (TRACE, me,
                 [event.to_dict() for event in trace_sink.drain()]))

    try:
        runtime = ProcessorRuntime(program, _rebuild_database(local_relations),
                                   tracer=tracer)
        router = program.router_table()

        def maybe_die() -> None:
            """Carry out an armed kill fault (a genuine self-SIGKILL).

            Called only at step boundaries; flushes the coalescing
            buffers and this process's buffered queue writes first so no
            peer is left blocked on a lock the dying feeder thread held
            (and so the sent-log matches what actually reached the
            wire).
            """
            if kill_after is None:
                return
            if runtime.counters.total_firings() < kill_after:
                return
            flush_outbound()
            for peer_queue in peer_queues.values():
                peer_queue.close()
                peer_queue.join_thread()
            coordinator_queue.close()
            coordinator_queue.join_thread()
            os.kill(os.getpid(), signal.SIGKILL)

        def send_now(target: ProcessorId,
                     pairs: List[Tuple[str, List[tuple]]],
                     replay: bool = False) -> None:
            """Put one coalesced data message on ``target``'s queue.

            ``pairs`` is the multi-predicate payload
            ``[(predicate, facts), ...]``.  All tuple counters are
            incremented here — the enqueue point — matching the
            receiver's dequeue-side accounting (see :mod:`.protocol`).
            """
            nonlocal activity, epoch_sent
            if pack_wire:
                wire_pairs = [
                    (predicate,
                     pack_facts(facts) if len(facts) >= _PACK_MIN_FACTS
                     else facts)
                    for predicate, facts in pairs]
            else:
                wire_pairs = pairs
            seq = out_seq.get(target, 0) + 1
            out_seq[target] = seq
            stamp = (incarnation, seq)
            peer_queues[target].put((DATA, me, wire_pairs, epoch, stamp))
            # Record the carrying stamp on every logged fact: once the
            # receiver's watermark passes it, the entry is truncatable.
            log_by_pred = sent_log.setdefault(target, {})
            for predicate, facts in pairs:
                log = log_by_pred.setdefault(predicate, {})
                for fact in facts:
                    log[fact] = stamp
            count = sum(len(facts) for _, facts in pairs)
            stats.sent_by_target[target] = (
                stats.sent_by_target.get(target, 0) + count)
            stats.messages_by_target[target] = (
                stats.messages_by_target.get(target, 0) + 1)
            stats.bytes_by_target[target] = (
                stats.bytes_by_target.get(target, 0)
                + approx_batch_bytes(wire_pairs))
            epoch_sent += count
            activity += count
            if replay:
                stats.replayed += count
            elif trace:
                target_tag = processor_tag(target)
                for predicate, facts in pairs:
                    tracer.tuple_sent(tag, target_tag, predicate,
                                      count=len(facts))

        def flush_target(target: ProcessorId) -> None:
            by_pred = outbound.get(target)
            if not by_pred:
                return
            outbound[target] = {}
            outbound_counts[target] = 0
            send_now(target, list(by_pred.items()))

        def flush_outbound() -> None:
            """Flush every non-empty coalescing buffer."""
            for target in outbound:
                flush_target(target)

        def enqueue(target: ProcessorId, predicate: str,
                    facts: List[tuple]) -> None:
            """Buffer facts for ``target``; flush early past the cap."""
            if not coalesce:
                send_now(target, [(predicate, facts)])
                return
            by_pred = outbound.get(target)
            if by_pred is None:
                by_pred = outbound[target] = {}
            group = by_pred.get(predicate)
            if group is None:
                by_pred[predicate] = list(facts)
            else:
                group.extend(facts)
            total = outbound_counts.get(target, 0) + len(facts)
            outbound_counts[target] = total
            if total >= _COALESCE_MAX_FACTS:
                flush_target(target)

        def route(emissions: List[Tuple[str, tuple]]) -> None:
            """Partition a step's emissions and buffer the remote ones."""
            nonlocal activity
            if not emissions:
                return
            by_pred: Dict[str, List[tuple]] = {}
            for predicate, fact in emissions:
                by_pred.setdefault(predicate, []).append(fact)
            for predicate, facts in by_pred.items():
                buckets, _ = router.partition(predicate, facts)
                for target, bucket in buckets.items():
                    if target == me:
                        runtime.receive(predicate, bucket, remote=False)
                        stats.self_delivered += len(bucket)
                        activity += len(bucket)
                        continue
                    # Logged before any fault decision: a dropped send
                    # must still be replayable.  setdefault-style insert
                    # keeps an existing stamp if a restored log already
                    # holds the fact.
                    log = sent_log.setdefault(target, {}).setdefault(
                        predicate, {})
                    for fact in bucket:
                        if fact not in log:
                            log[fact] = None
                    if channel_faults is not None:
                        target_tag = processor_tag(target)
                        deliver: List[tuple] = []
                        for fact in bucket:
                            verdict = channel_faults.decide(tag, target_tag)
                            if verdict == DROP:
                                # Remembered for the reliable retry at
                                # the next probe; faults only ever hit
                                # first transmissions.
                                unsent.setdefault(target, {}).setdefault(
                                    predicate, []).append(fact)
                                continue
                            if verdict == DELAY:
                                delayed.append((target, predicate, fact))
                                continue
                            if verdict != DELIVER:  # duplicate
                                deliver.append(fact)
                            deliver.append(fact)
                        bucket = deliver
                    if bucket:
                        enqueue(target, predicate, bucket)

        def flush_delayed() -> None:
            """Deliver sends an injected delay fault held back."""
            if not delayed:
                return
            held, delayed[:] = list(delayed), []
            by_target: Dict[ProcessorId, Dict[str, List[tuple]]] = {}
            for target, predicate, fact in held:
                by_target.setdefault(target, {}).setdefault(
                    predicate, []).append(fact)
            for target, by_pred in by_target.items():
                send_now(target, list(by_pred.items()))

        def retry_unsent() -> None:
            """Reliably re-send facts whose first transmission was
            dropped by an injected fault (drops are transient: the
            retry path never consults the fault state)."""
            if not unsent:
                return
            held = dict(unsent)
            unsent.clear()
            for target, by_pred in held.items():
                pairs = [(predicate, facts)
                         for predicate, facts in by_pred.items() if facts]
                if pairs:
                    stats.retried += sum(len(facts) for _, facts in pairs)
                    send_now(target, pairs)

        def replay_to(target: ProcessorId) -> None:
            """Re-send the remaining sent-log of ``target`` (its restart).

            Under ``recovery="checkpoint"`` truncation has already
            removed the acknowledged prefix, so "the remaining log" is
            exactly the unacknowledged suffix.  Replays bypass the
            coalescing buffer: they already ship as one message per
            peer, and keeping them out of ``outbound`` keeps the
            replayed/sent counter split exact.
            """
            log = sent_log.get(target)
            if not log:
                return
            pairs = [(predicate, list(facts))
                     for predicate, facts in log.items() if facts]
            if not pairs:
                return
            send_now(target, pairs, replay=True)
            if trace:
                tracer.replay(tag, processor_tag(target),
                              sum(len(facts) for _, facts in pairs))

        def truncate_log(target: ProcessorId, stamp: Stamp) -> None:
            """Drop log entries for ``target`` acknowledged by ``stamp``.

            Only wired entries at or below the watermark go; unwired
            entries (stamp ``None``) stay until the retry/replay paths
            deal with them.  Rebuilding the dict preserves the
            first-send order of the kept suffix.
            """
            log_by_pred = sent_log.get(target)
            if not log_by_pred:
                return
            removed = 0
            for predicate, log in list(log_by_pred.items()):
                kept = {fact: s for fact, s in log.items()
                        if s is None or s > stamp}
                removed += len(log) - len(kept)
                log_by_pred[predicate] = kept
            if removed:
                stats.log_truncated += removed
                if trace:
                    tracer.log_truncate(tag, processor_tag(target), removed)

        def take_checkpoint() -> None:
            """Snapshot and ship recoverable state to the coordinator.

            Called only at burst boundaries with flushed outbound
            buffers, so the snapshot is the consistent cut
            :mod:`.checkpoint` documents.
            """
            in_facts, out_facts, staged = runtime.export_state()
            snapshot = WorkerCheckpoint(
                epoch=epoch,
                in_facts=in_facts,
                out_facts=out_facts,
                staged=staged,
                counters=runtime.counters.as_dict(),
                duplicates_dropped=runtime.duplicates_dropped,
                received=stats.received,
                self_delivered=stats.self_delivered,
                sent_log=sent_log,
                watermarks=watermarks,
            )
            payload = encode_checkpoint(snapshot)
            coordinator_queue.put((CHECKPOINT, me, payload))
            nbytes = approx_checkpoint_bytes(payload)
            stats.checkpoints += 1
            stats.checkpoint_bytes += nbytes
            if trace:
                tracer.checkpoint(tag, snapshot.fact_count(), nbytes, epoch)

        if restore is not None:
            # Resume from the predecessor's checkpoint: load state and
            # counters, adopt its sent-log and watermarks, and skip
            # initialize() — the init-rule output is already inside the
            # restored t_out relations (and was already routed).
            snapshot = decode_checkpoint(restore)
            runtime.import_state(snapshot.in_facts, snapshot.out_facts,
                                 snapshot.staged,
                                 counters=snapshot.counters,
                                 duplicates_dropped=snapshot.duplicates_dropped)
            stats.received = snapshot.received
            stats.self_delivered = snapshot.self_delivered
            stats.restored_facts = snapshot.fact_count()
            for target, by_pred in snapshot.sent_log.items():
                sent_log[target] = {predicate: dict(entries)
                                    for predicate, entries in by_pred.items()}
            watermarks.update(snapshot.watermarks)
            if trace:
                tracer.restore(tag, stats.restored_facts, epoch)
            # Heal what died with the predecessor: every unwired log
            # entry (buffered, delayed or dropped at death) goes out
            # reliably under the new incarnation's stamps.
            for target, by_pred in sent_log.items():
                pairs = []
                for predicate, entries in by_pred.items():
                    pending = [fact for fact, s in entries.items()
                               if s is None]
                    if pending:
                        pairs.append((predicate, pending))
                if pairs:
                    send_now(target, pairs)
        else:
            route(runtime.initialize())
        flush_outbound()
        maybe_die()
        running = True
        idle_poll = _POLL_MIN_SECONDS
        while running:
            # Drain everything currently queued, blocking briefly when idle.
            drained_any = False
            while True:
                try:
                    message = inbox.get(timeout=0.0 if drained_any
                                        else idle_poll)
                except queue_module.Empty:
                    break
                kind = message[0]
                if kind == DATA:
                    _, sender, pairs, msg_epoch, stamp = message
                    count = 0
                    for predicate, payload in pairs:
                        # Packed batches stay in wire form: the runtime
                        # decodes them columnwise at the next step, so
                        # no per-fact tuple loop runs here.
                        if is_packed(payload):
                            runtime.receive_packed(predicate, payload,
                                                   remote=True)
                            received = packed_fact_count(payload)
                        else:
                            runtime.receive(predicate, payload, remote=True)
                            received = len(payload)
                        count += received
                        if trace:
                            tracer.tuple_received(tag, processor_tag(sender),
                                                  predicate, count=received)
                    current = watermarks.get(sender)
                    if current is None or stamp > current:
                        watermarks[sender] = stamp
                    stats.received += count
                    if msg_epoch == epoch:
                        epoch_received += count
                    activity += count
                    drained_any = True
                elif kind == PROBE:
                    _, seq, probe_horizon = message
                    if probe_horizon is not None:
                        horizon = probe_horizon
                        drained_any = True  # a new horizon may unthrottle
                    # Buffered tuples must hit the wire (and the
                    # epoch_sent counter) before the ack snapshots it,
                    # or coalescing could fake a sent/received balance.
                    flush_outbound()
                    flush_delayed()
                    retry_unsent()
                    stats.firings = runtime.counters.total_firings()
                    stats.probes = runtime.counters.probes
                    stats.iterations = runtime.counters.iterations
                    stats.duplicates_dropped = runtime.duplicates_dropped
                    coordinator_queue.put(
                        (ACK, me, seq, epoch_sent, epoch_received, activity,
                         epoch, runtime.counters.iterations,
                         runtime.has_pending_input()))
                    if trace:
                        tracer.probe(tag, seq=seq, activity=activity)
                        flush_trace()
                elif kind == RESET:
                    # A stale RESET can linger in a dead worker's inbox
                    # and be read by its replacement (which spawns in a
                    # later epoch); epochs must never regress.
                    _, new_epoch = message
                    if new_epoch > epoch:
                        epoch = new_epoch
                        epoch_sent = 0
                        epoch_received = 0
                elif kind == REPLAY:
                    _, target = message
                    replay_to(target)
                    drained_any = True
                elif kind == TRUNCATE:
                    _, target, stamp = message
                    truncate_log(target, stamp)
                    drained_any = True
                elif kind == STOP:
                    running = False
                    break
                else:  # pragma: no cover - defensive
                    raise ValueError(f"unknown message tag {kind!r}")
            if not running:
                break
            # Step as long as staged input remains (self-deliveries from
            # route() can immediately enable further steps).  Events of a
            # step are labelled with the worker-local iteration number —
            # real execution has no global rounds.  The whole burst
            # accumulates into the coalescing buffers, flushed once at
            # the end so peers see the burst's output before this worker
            # blocks on its inbox again.
            stepped = False
            while runtime.has_pending_input():
                if throttling and horizon is not None:
                    lag = runtime.counters.iterations - horizon
                    if lag >= staleness:
                        # Staleness bound hit: stop stepping (draining,
                        # acking and replaying continue) until a fresher
                        # horizon arrives on a probe.
                        if not was_throttled:
                            was_throttled = True
                            stats.throttle_waits += 1
                            if trace:
                                tracer.worker_stalled(
                                    tag, lag, staged=runtime.staged_size())
                        break
                    if lag > stats.max_lag:
                        stats.max_lag = lag
                was_throttled = False
                stepped = True
                if trace:
                    tracer.current_round = runtime.counters.iterations + 1
                emissions = runtime.step()
                if emissions:
                    activity += len(emissions)
                route(emissions)
                maybe_die()
            flush_outbound()
            # Periodic checkpoint at the burst boundary: buffers are
            # flushed, no step is in progress — the consistent cut the
            # restore semantics rely on.
            if checkpoint_interval is not None and stepped:
                bursts_since_checkpoint += 1
                if bursts_since_checkpoint >= checkpoint_interval:
                    bursts_since_checkpoint = 0
                    take_checkpoint()
            if drained_any or stepped:
                idle_poll = _POLL_MIN_SECONDS
            else:
                idle_poll = min(idle_poll * 2, _POLL_MAX_SECONDS)

        stats.firings = runtime.counters.total_firings()
        stats.probes = runtime.counters.probes
        stats.iterations = runtime.counters.iterations
        stats.duplicates_dropped = runtime.duplicates_dropped
        stats.sent_log_facts = sum(
            len(facts) for log in sent_log.values() for facts in log.values())
        flush_trace()
        outputs = {
            pred: sorted(runtime.output_relation(pred), key=typed_sort_key)
            for pred in program.out_names
        }
        coordinator_queue.put((RESULT, me, outputs, stats))
    except Exception:  # pragma: no cover - crash path
        coordinator_queue.put((ERROR, me, traceback.format_exc()))
