"""The worker process of the multiprocessing executor.

Each worker owns one :class:`~repro.parallel.processor.ProcessorRuntime`
and a queue per peer.  It drains its inbox, steps the semi-naive loop on
whatever arrived (receives are asynchronous — the paper's stipulation),
pushes new tuples straight onto the destination queues, and answers the
coordinator's quiescence probes with its counters.
"""

from __future__ import annotations

import queue as queue_module
import traceback
from typing import Dict, Hashable, List, Mapping, Tuple

from ...facts.database import Database
from ...facts.relation import Relation
from ..plans import ProcessorProgram
from ..processor import ProcessorRuntime
from .protocol import ACK, DATA, ERROR, PROBE, RESULT, STOP, WorkerStats

__all__ = ["worker_main"]

ProcessorId = Hashable
_POLL_SECONDS = 0.005


def _rebuild_database(relations: Mapping[str, Tuple[int, List[tuple]]]) -> Database:
    """Reconstruct a local database from its picklable form."""
    database = Database()
    for name, (arity, facts) in relations.items():
        database.attach(Relation(name, arity, facts))
    return database


def worker_main(program: ProcessorProgram,
                local_relations: Mapping[str, Tuple[int, List[tuple]]],
                inbox, peer_queues: Mapping[ProcessorId, object],
                coordinator_queue) -> None:
    """Entry point of a worker process.

    Args:
        program: this processor's rewritten program.
        local_relations: picklable base fragments ``{name: (arity, facts)}``.
        inbox: this worker's receive queue.
        peer_queues: send queues of every processor (self included).
        coordinator_queue: queue for acks/results to the coordinator.
    """
    me = program.processor
    stats = WorkerStats()
    activity = 0
    try:
        runtime = ProcessorRuntime(program, _rebuild_database(local_relations))

        def route(emissions: List[Tuple[str, tuple]]) -> None:
            nonlocal activity
            batches: Dict[ProcessorId, List[Tuple[str, tuple]]] = {}
            for predicate, fact in emissions:
                targets = []
                seen = set()
                for rte in program.routes_for(predicate):
                    for target in rte.targets(fact):
                        if target not in seen:
                            seen.add(target)
                            targets.append(target)
                for target in targets:
                    if target == me:
                        runtime.receive(predicate, [fact], remote=False)
                        stats.self_delivered += 1
                        activity += 1
                    else:
                        batches.setdefault(target, []).append((predicate, fact))
            for target, batch in batches.items():
                by_pred: Dict[str, List[tuple]] = {}
                for predicate, fact in batch:
                    by_pred.setdefault(predicate, []).append(fact)
                for predicate, facts in by_pred.items():
                    peer_queues[target].put((DATA, me, predicate, facts))
                    stats.sent_by_target[target] = (
                        stats.sent_by_target.get(target, 0) + len(facts))
                    activity += len(facts)

        route(runtime.initialize())
        running = True
        while running:
            # Drain everything currently queued, blocking briefly when idle.
            drained_any = False
            while True:
                try:
                    message = inbox.get(timeout=0.0 if drained_any
                                        else _POLL_SECONDS)
                except queue_module.Empty:
                    break
                tag = message[0]
                if tag == DATA:
                    _, _sender, predicate, facts = message
                    runtime.receive(predicate, facts, remote=True)
                    stats.received += len(facts)
                    activity += len(facts)
                    drained_any = True
                elif tag == PROBE:
                    _, seq = message
                    stats.firings = runtime.counters.total_firings()
                    stats.probes = runtime.counters.probes
                    stats.iterations = runtime.counters.iterations
                    stats.duplicates_dropped = runtime.duplicates_dropped
                    coordinator_queue.put(
                        (ACK, me, seq, stats.total_sent(),
                         stats.received, activity))
                elif tag == STOP:
                    running = False
                    break
                else:  # pragma: no cover - defensive
                    raise ValueError(f"unknown message tag {tag!r}")
            if not running:
                break
            # Step as long as staged input remains (self-deliveries from
            # route() can immediately enable further steps).
            while runtime.has_pending_input():
                emissions = runtime.step()
                if emissions:
                    activity += len(emissions)
                route(emissions)

        stats.firings = runtime.counters.total_firings()
        stats.probes = runtime.counters.probes
        stats.iterations = runtime.counters.iterations
        stats.duplicates_dropped = runtime.duplicates_dropped
        outputs = {
            pred: sorted(runtime.output_relation(pred), key=repr)
            for pred in program.out_names
        }
        coordinator_queue.put((RESULT, me, outputs, stats))
    except Exception:  # pragma: no cover - crash path
        coordinator_queue.put((ERROR, me, traceback.format_exc()))
