"""The worker process of the multiprocessing executor.

Each worker owns one :class:`~repro.parallel.processor.ProcessorRuntime`
and a queue per peer.  It drains its inbox, steps the semi-naive loop on
whatever arrived (receives are asynchronous — the paper's stipulation),
pushes new tuples straight onto the destination queues, and answers the
coordinator's quiescence probes with its counters.
"""

from __future__ import annotations

import queue as queue_module
import time
import traceback
from typing import Dict, Hashable, List, Mapping, Tuple

from ...facts.database import Database
from ...facts.relation import Relation
from ...obs.sinks import InMemorySink
from ...obs.tracer import NULL_TRACER, Tracer
from ..naming import processor_tag
from ..plans import ProcessorProgram
from ..processor import ProcessorRuntime
from .protocol import ACK, DATA, ERROR, PROBE, RESULT, STOP, TRACE, WorkerStats

__all__ = ["worker_main"]

ProcessorId = Hashable
_POLL_SECONDS = 0.005


def _rebuild_database(relations: Mapping[str, Tuple[int, List[tuple]]]) -> Database:
    """Reconstruct a local database from its picklable form."""
    database = Database()
    for name, (arity, facts) in relations.items():
        database.attach(Relation(name, arity, facts))
    return database


def worker_main(program: ProcessorProgram,
                local_relations: Mapping[str, Tuple[int, List[tuple]]],
                inbox, peer_queues: Mapping[ProcessorId, object],
                coordinator_queue, trace: bool = False) -> None:
    """Entry point of a worker process.

    Args:
        program: this processor's rewritten program.
        local_relations: picklable base fragments ``{name: (arity, facts)}``.
        inbox: this worker's receive queue.
        peer_queues: send queues of every processor (self included).
        coordinator_queue: queue for acks/results to the coordinator.
        trace: when True, buffer typed trace events locally and stream
            them to the coordinator as ``("trace", ...)`` batches.
    """
    me = program.processor
    tag = processor_tag(me)
    stats = WorkerStats()
    activity = 0
    if trace:
        trace_sink = InMemorySink()
        tracer: Tracer = Tracer(trace_sink, clock=time.monotonic)
    else:
        trace_sink = None  # type: ignore[assignment]
        tracer = NULL_TRACER

    def flush_trace() -> None:
        if trace and trace_sink.events:
            coordinator_queue.put(
                (TRACE, me,
                 [event.to_dict() for event in trace_sink.drain()]))

    try:
        runtime = ProcessorRuntime(program, _rebuild_database(local_relations),
                                   tracer=tracer)

        def route(emissions: List[Tuple[str, tuple]]) -> None:
            nonlocal activity
            batches: Dict[ProcessorId, List[Tuple[str, tuple]]] = {}
            for predicate, fact in emissions:
                targets = []
                seen = set()
                for rte in program.routes_for(predicate):
                    for target in rte.targets(fact):
                        if target not in seen:
                            seen.add(target)
                            targets.append(target)
                for target in targets:
                    if target == me:
                        runtime.receive(predicate, [fact], remote=False)
                        stats.self_delivered += 1
                        activity += 1
                    else:
                        batches.setdefault(target, []).append((predicate, fact))
            for target, batch in batches.items():
                by_pred: Dict[str, List[tuple]] = {}
                for predicate, fact in batch:
                    by_pred.setdefault(predicate, []).append(fact)
                target_tag = processor_tag(target)
                for predicate, facts in by_pred.items():
                    peer_queues[target].put((DATA, me, predicate, facts))
                    stats.sent_by_target[target] = (
                        stats.sent_by_target.get(target, 0) + len(facts))
                    activity += len(facts)
                    if trace:
                        for _ in facts:
                            tracer.tuple_sent(tag, target_tag, predicate)

        route(runtime.initialize())
        running = True
        while running:
            # Drain everything currently queued, blocking briefly when idle.
            drained_any = False
            while True:
                try:
                    message = inbox.get(timeout=0.0 if drained_any
                                        else _POLL_SECONDS)
                except queue_module.Empty:
                    break
                kind = message[0]
                if kind == DATA:
                    _, sender, predicate, facts = message
                    runtime.receive(predicate, facts, remote=True)
                    stats.received += len(facts)
                    activity += len(facts)
                    drained_any = True
                    if trace:
                        sender_tag = processor_tag(sender)
                        for _ in facts:
                            tracer.tuple_received(tag, sender_tag, predicate)
                elif kind == PROBE:
                    _, seq = message
                    stats.firings = runtime.counters.total_firings()
                    stats.probes = runtime.counters.probes
                    stats.iterations = runtime.counters.iterations
                    stats.duplicates_dropped = runtime.duplicates_dropped
                    coordinator_queue.put(
                        (ACK, me, seq, stats.total_sent(),
                         stats.received, activity))
                    if trace:
                        tracer.probe(tag, seq=seq, activity=activity)
                        flush_trace()
                elif kind == STOP:
                    running = False
                    break
                else:  # pragma: no cover - defensive
                    raise ValueError(f"unknown message tag {kind!r}")
            if not running:
                break
            # Step as long as staged input remains (self-deliveries from
            # route() can immediately enable further steps).  Events of a
            # step are labelled with the worker-local iteration number —
            # real execution has no global rounds.
            while runtime.has_pending_input():
                if trace:
                    tracer.current_round = runtime.counters.iterations + 1
                emissions = runtime.step()
                if emissions:
                    activity += len(emissions)
                route(emissions)

        stats.firings = runtime.counters.total_firings()
        stats.probes = runtime.counters.probes
        stats.iterations = runtime.counters.iterations
        stats.duplicates_dropped = runtime.duplicates_dropped
        flush_trace()
        outputs = {
            pred: sorted(runtime.output_relation(pred), key=repr)
            for pred in program.out_names
        }
        coordinator_queue.put((RESULT, me, outputs, stats))
    except Exception:  # pragma: no cover - crash path
        coordinator_queue.put((ERROR, me, traceback.format_exc()))
