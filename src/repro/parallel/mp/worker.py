"""The worker process of the multiprocessing executor.

Each worker owns one :class:`~repro.parallel.processor.ProcessorRuntime`
and a queue per peer.  It drains its inbox, steps the semi-naive loop on
whatever arrived (receives are asynchronous — the paper's stipulation),
pushes new tuples straight onto the destination queues, and answers the
coordinator's quiescence probes with its counters (see
:mod:`.protocol` for the probe/ack invariants).

Fault tolerance.  Every worker keeps a *sent-log*: per peer, the exact
``(predicate, fact)`` sequence it has routed there.  When the
coordinator restarts a dead peer it asks the survivors to ``replay``
their logs to it; combined with the restarted worker re-deriving its own
outputs from its base fragment, monotonicity plus duplicate-dropping
makes the recovered run's answer identical to an undisturbed one
(Theorem 1 under failure).  ``reset`` messages carry the new recovery
epoch; see :mod:`.protocol` for why quiescence counters must be zeroed
at that cut.

Fault injection.  When a :class:`~repro.parallel.faults.WorkerFaults`
slice is supplied, the worker disturbs its *own* sends (drop / delay /
duplicate, seeded per worker) and, if armed with a kill fault, delivers
a real ``SIGKILL`` to itself once its firing count crosses the
threshold.  The suicide happens at a step boundary after flushing the
outbound queue feeders, so the shared queue locks are never torn down
mid-write — the failure is silent at the protocol level (no ``error``
message) but clean at the OS level, which is exactly the scenario the
coordinator's liveness probing exists for.
"""

from __future__ import annotations

import os
import queue as queue_module
import signal
import time
import traceback
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from ...facts.database import Database
from ...facts.relation import Relation
from ...obs.sinks import InMemorySink
from ...obs.tracer import NULL_TRACER, Tracer
from ..faults import DELAY, DELIVER, DROP, WorkerFaults
from ..naming import processor_tag
from ..plans import ProcessorProgram
from ..processor import ProcessorRuntime
from .protocol import (
    ACK,
    DATA,
    ERROR,
    PROBE,
    REPLAY,
    RESET,
    RESULT,
    STOP,
    TRACE,
    WorkerStats,
)

__all__ = ["worker_main"]

ProcessorId = Hashable
_POLL_SECONDS = 0.005


def _rebuild_database(relations: Mapping[str, Tuple[int, List[tuple]]]) -> Database:
    """Reconstruct a local database from its picklable form."""
    database = Database()
    for name, (arity, facts) in relations.items():
        database.attach(Relation(name, arity, facts))
    return database


def worker_main(program: ProcessorProgram,
                local_relations: Mapping[str, Tuple[int, List[tuple]]],
                inbox, peer_queues: Mapping[ProcessorId, object],
                coordinator_queue, trace: bool = False,
                faults: Optional[WorkerFaults] = None,
                epoch: int = 0) -> None:
    """Entry point of a worker process.

    Args:
        program: this processor's rewritten program.
        local_relations: picklable base fragments ``{name: (arity, facts)}``.
        inbox: this worker's receive queue.
        peer_queues: send queues of every processor (self included).
        coordinator_queue: queue for acks/results to the coordinator.
        trace: when True, buffer typed trace events locally and stream
            them to the coordinator as ``("trace", ...)`` batches.
        faults: optional injected-fault slice for this worker.
        epoch: recovery epoch to start in (non-zero for workers spawned
            as replacements after a failure).
    """
    me = program.processor
    tag = processor_tag(me)
    stats = WorkerStats()
    activity = 0
    # Per-epoch quiescence counters: zeroed on RESET so the global
    # sent/received balance survives the loss of a dead peer's counters.
    epoch_sent = 0
    epoch_received = 0
    # Per-peer log of everything ever routed there, for replay on a
    # peer's restart.  Kept as flat (predicate, fact) pairs in send
    # order; memory is bounded by the peer's t_in size times fan-out.
    sent_log: Dict[ProcessorId, List[Tuple[str, tuple]]] = {}
    # Sends held back by an injected delay fault, flushed at the next
    # probe (so a delayed tuple is late by at most one probe interval).
    delayed: List[Tuple[ProcessorId, str, tuple]] = []
    channel_faults = faults.channel_state() if faults is not None else None
    kill_after = faults.kill_after if faults is not None else None
    if trace:
        trace_sink = InMemorySink()
        tracer: Tracer = Tracer(trace_sink, clock=time.monotonic)
    else:
        trace_sink = None  # type: ignore[assignment]
        tracer = NULL_TRACER

    def flush_trace() -> None:
        if trace and trace_sink.events:
            coordinator_queue.put(
                (TRACE, me,
                 [event.to_dict() for event in trace_sink.drain()]))

    try:
        runtime = ProcessorRuntime(program, _rebuild_database(local_relations),
                                   tracer=tracer)

        def maybe_die() -> None:
            """Carry out an armed kill fault (a genuine self-SIGKILL).

            Called only at step boundaries; flushes this process's
            buffered queue writes first so no peer is left blocked on a
            lock the dying feeder thread held.
            """
            if kill_after is None:
                return
            if runtime.counters.total_firings() < kill_after:
                return
            for peer_queue in peer_queues.values():
                peer_queue.close()
                peer_queue.join_thread()
            coordinator_queue.close()
            coordinator_queue.join_thread()
            os.kill(os.getpid(), signal.SIGKILL)

        def send(target: ProcessorId, predicate: str, facts: List[tuple],
                 replay: bool = False) -> None:
            """Put one data batch on ``target``'s queue and count it."""
            nonlocal activity, epoch_sent
            peer_queues[target].put((DATA, me, predicate, facts, epoch))
            stats.sent_by_target[target] = (
                stats.sent_by_target.get(target, 0) + len(facts))
            epoch_sent += len(facts)
            activity += len(facts)
            if replay:
                stats.replayed += len(facts)
            if trace and not replay:
                target_tag = processor_tag(target)
                for _ in facts:
                    tracer.tuple_sent(tag, target_tag, predicate)

        def route(emissions: List[Tuple[str, tuple]]) -> None:
            nonlocal activity
            batches: Dict[ProcessorId, List[Tuple[str, tuple]]] = {}
            for predicate, fact in emissions:
                targets = []
                seen = set()
                for rte in program.routes_for(predicate):
                    for target in rte.targets(fact):
                        if target not in seen:
                            seen.add(target)
                            targets.append(target)
                for target in targets:
                    if target == me:
                        runtime.receive(predicate, [fact], remote=False)
                        stats.self_delivered += 1
                        activity += 1
                    else:
                        # Logged before any fault decision: a dropped
                        # send must still be replayable.
                        sent_log.setdefault(target, []).append(
                            (predicate, fact))
                        batches.setdefault(target, []).append((predicate, fact))
            for target, batch in batches.items():
                by_pred: Dict[str, List[tuple]] = {}
                for predicate, fact in batch:
                    if channel_faults is not None:
                        verdict = channel_faults.decide(
                            tag, processor_tag(target))
                        if verdict == DROP:
                            continue
                        if verdict == DELAY:
                            delayed.append((target, predicate, fact))
                            continue
                        if verdict != DELIVER:  # duplicate
                            by_pred.setdefault(predicate, []).append(fact)
                    by_pred.setdefault(predicate, []).append(fact)
                for predicate, facts in by_pred.items():
                    send(target, predicate, facts)

        def flush_delayed() -> None:
            """Deliver sends an injected delay fault held back."""
            if not delayed:
                return
            held, delayed[:] = list(delayed), []
            by_target: Dict[ProcessorId, Dict[str, List[tuple]]] = {}
            for target, predicate, fact in held:
                by_target.setdefault(target, {}).setdefault(
                    predicate, []).append(fact)
            for target, by_pred in by_target.items():
                for predicate, facts in by_pred.items():
                    send(target, predicate, facts)

        def replay_to(target: ProcessorId) -> None:
            """Re-send the full sent-log of ``target`` (its restart)."""
            log = sent_log.get(target, [])
            if not log:
                return
            by_pred: Dict[str, List[tuple]] = {}
            for predicate, fact in log:
                by_pred.setdefault(predicate, []).append(fact)
            for predicate, facts in by_pred.items():
                send(target, predicate, facts, replay=True)
            if trace:
                tracer.replay(tag, processor_tag(target), len(log))

        route(runtime.initialize())
        maybe_die()
        running = True
        while running:
            # Drain everything currently queued, blocking briefly when idle.
            drained_any = False
            while True:
                try:
                    message = inbox.get(timeout=0.0 if drained_any
                                        else _POLL_SECONDS)
                except queue_module.Empty:
                    break
                kind = message[0]
                if kind == DATA:
                    _, sender, predicate, facts, msg_epoch = message
                    runtime.receive(predicate, facts, remote=True)
                    stats.received += len(facts)
                    if msg_epoch == epoch:
                        epoch_received += len(facts)
                    activity += len(facts)
                    drained_any = True
                    if trace:
                        sender_tag = processor_tag(sender)
                        for _ in facts:
                            tracer.tuple_received(tag, sender_tag, predicate)
                elif kind == PROBE:
                    _, seq = message
                    flush_delayed()
                    stats.firings = runtime.counters.total_firings()
                    stats.probes = runtime.counters.probes
                    stats.iterations = runtime.counters.iterations
                    stats.duplicates_dropped = runtime.duplicates_dropped
                    coordinator_queue.put(
                        (ACK, me, seq, epoch_sent, epoch_received, activity,
                         epoch))
                    if trace:
                        tracer.probe(tag, seq=seq, activity=activity)
                        flush_trace()
                elif kind == RESET:
                    # A stale RESET can linger in a dead worker's inbox
                    # and be read by its replacement (which spawns in a
                    # later epoch); epochs must never regress.
                    _, new_epoch = message
                    if new_epoch > epoch:
                        epoch = new_epoch
                        epoch_sent = 0
                        epoch_received = 0
                elif kind == REPLAY:
                    _, target = message
                    replay_to(target)
                    drained_any = True
                elif kind == STOP:
                    running = False
                    break
                else:  # pragma: no cover - defensive
                    raise ValueError(f"unknown message tag {kind!r}")
            if not running:
                break
            # Step as long as staged input remains (self-deliveries from
            # route() can immediately enable further steps).  Events of a
            # step are labelled with the worker-local iteration number —
            # real execution has no global rounds.
            while runtime.has_pending_input():
                if trace:
                    tracer.current_round = runtime.counters.iterations + 1
                emissions = runtime.step()
                if emissions:
                    activity += len(emissions)
                route(emissions)
                maybe_die()

        stats.firings = runtime.counters.total_firings()
        stats.probes = runtime.counters.probes
        stats.iterations = runtime.counters.iterations
        stats.duplicates_dropped = runtime.duplicates_dropped
        flush_trace()
        outputs = {
            pred: sorted(runtime.output_relation(pred), key=repr)
            for pred in program.out_names
        }
        coordinator_queue.put((RESULT, me, outputs, stats))
    except Exception:  # pragma: no cover - crash path
        coordinator_queue.put((ERROR, me, traceback.format_exc()))
