"""Real multiprocessing execution of rewritten programs."""

from .protocol import WorkerStats
from .runner import MPResult, run_multiprocessing

__all__ = ["MPResult", "WorkerStats", "run_multiprocessing"]
