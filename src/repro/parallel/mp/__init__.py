"""Real multiprocessing execution of rewritten programs.

One OS process per processor, one queue per channel, a Mattern-style
counting double-probe for quiescence, and a restart-and-replay fault
tolerance layer (``recovery="restart"``) backed by Theorem 1 plus
Datalog's monotonicity.  The protocol and its invariants are documented
in :mod:`.protocol`; liveness detection and recovery live in
:mod:`.runner`; the per-process loop and sent-logs in :mod:`.worker`.
"""

from .protocol import WorkerStats
from .runner import MPResult, run_multiprocessing

__all__ = ["MPResult", "WorkerStats", "run_multiprocessing"]
