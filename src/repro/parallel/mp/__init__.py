"""Real multiprocessing execution of rewritten programs.

One OS process per processor, one queue per channel, a Mattern-style
counting double-probe for quiescence, and a fault tolerance layer
backed by Theorem 1 plus Datalog's monotonicity: restart-and-replay
from the base fragment (``recovery="restart"``) or from periodic
coordinator-held snapshots with sent-log truncation at the
acknowledged watermarks (``recovery="checkpoint"``), under a restart
budget with per-worker exponential backoff.  The protocol and its
invariants are documented in :mod:`.protocol`; liveness detection,
recovery and the derived ack deadlines live in :mod:`.runner`; the
per-process loop, sent-logs and retry path in :mod:`.worker`; the
snapshot payload format in :mod:`.checkpoint` (see also
``docs/FAULT_TOLERANCE.md``).
"""

from .protocol import WorkerStats
from .runner import MPResult, default_ack_deadline, run_multiprocessing

__all__ = ["MPResult", "WorkerStats", "default_ack_deadline",
           "run_multiprocessing"]
