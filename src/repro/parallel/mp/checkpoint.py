"""Checkpoint payloads of the multiprocessing executor.

Under ``recovery="checkpoint"`` each worker periodically snapshots its
derived state and ships it to the coordinator (one ``("checkpoint",
processor, payload)`` message; the coordinator keeps only the latest
payload per processor).  The snapshot is cut at a *burst boundary* —
outbound buffers flushed, no step in progress — which makes it a
consistent local cut:

* the input relations travel as full facts only (every fact in full has
  already fired as a delta, so the restored runtime loads them into
  full *and* prev with empty deltas and never re-fires on them);
* the output relations travel so the restored worker dedups new
  derivations against everything its predecessor already routed;
* the cumulative :class:`~repro.engine.counters.EvalCounters` travel so
  restored-plus-new firings equal an undisturbed run (the
  firings-identical-to-sequential property survives recovery);
* the worker's own sent-log (with its channel stamps) travels so a
  restored worker can keep serving replays for peers that die later;
* the per-sender *watermarks* travel so the coordinator can tell every
  peer how far its sent-log is acknowledged (see the
  watermark/truncation invariant in :mod:`.protocol`).

Fact batches are encoded with the packed column wire format of
:mod:`repro.facts.packing` — self-contained, no interner state crosses
the process boundary — so both fact backends checkpoint compactly and a
checkpoint written under one backend restores under the other.

The payload is a plain picklable dict (versioned, see
:data:`CHECKPOINT_VERSION`); :func:`encode_checkpoint` /
:func:`decode_checkpoint` are exact inverses on the dataclass form
(property-tested in ``tests/parallel/test_checkpoint.py``), and
:func:`approx_checkpoint_bytes` prices a payload with the same
deterministic size model the channel accounting uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from ...facts.packing import ensure_facts, is_packed, maybe_pack
from ...facts.relation import Fact
from ..metrics import (
    BATCH_OVERHEAD_BYTES,
    MESSAGE_OVERHEAD_BYTES,
    approx_fact_bytes,
    approx_packed_bytes,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "Stamp",
    "WorkerCheckpoint",
    "approx_checkpoint_bytes",
    "decode_checkpoint",
    "encode_checkpoint",
]

CHECKPOINT_VERSION = 1

ProcessorId = Hashable
# (incarnation, per-channel message seq); lexicographically monotone
# per channel — see the watermark/truncation invariant in `.protocol`.
Stamp = Tuple[int, int]
_STAMP_BYTES = 16


@dataclass
class WorkerCheckpoint:
    """One worker's recoverable state at a burst boundary.

    Attributes:
        epoch: recovery epoch the worker was in when it snapshot.
        in_facts: full input relations per derived predicate.
        out_facts: output relations per derived predicate.
        staged: received-but-unprocessed tuples per predicate.
        counters: :meth:`EvalCounters.as_dict` snapshot.
        duplicates_dropped: cumulative duplicate-drop count.
        received: cumulative received-tuple count (WorkerStats).
        self_delivered: cumulative self-delivery count (WorkerStats).
        sent_log: per-target per-predicate fact → stamp-or-``None`` map
            (``None`` = not yet carried by any enqueued message).
        watermarks: per-sender maximum stamp dequeued.
    """

    epoch: int = 0
    in_facts: Dict[str, List[Fact]] = field(default_factory=dict)
    out_facts: Dict[str, List[Fact]] = field(default_factory=dict)
    staged: Dict[str, List[Fact]] = field(default_factory=dict)
    counters: Dict[str, object] = field(default_factory=dict)
    duplicates_dropped: int = 0
    received: int = 0
    self_delivered: int = 0
    sent_log: Dict[ProcessorId, Dict[str, Dict[Fact, Optional[Stamp]]]] = \
        field(default_factory=dict)
    watermarks: Dict[ProcessorId, Stamp] = field(default_factory=dict)

    def fact_count(self) -> int:
        """Derived facts in the snapshot (inputs + outputs + staged)."""
        return (sum(len(facts) for facts in self.in_facts.values())
                + sum(len(facts) for facts in self.out_facts.values())
                + sum(len(facts) for facts in self.staged.values()))


def _encode_relations(relations: Dict[str, List[Fact]]) -> Dict[str, object]:
    return {pred: maybe_pack(facts) for pred, facts in relations.items()}


def _decode_relations(encoded: Dict[str, object]) -> Dict[str, List[Fact]]:
    return {pred: ensure_facts(payload) for pred, payload in encoded.items()}


def encode_checkpoint(checkpoint: WorkerCheckpoint) -> Dict[str, object]:
    """Encode a snapshot into its picklable wire dict.

    Fact batches big enough to profit travel packed; the sent-log keeps
    its stamps in a list aligned with the (insertion-ordered) facts, so
    packing never loses the fact → stamp association.
    """
    sent_log: Dict[ProcessorId, Dict[str, Tuple[object, List]] ] = {}
    for target, by_pred in checkpoint.sent_log.items():
        encoded_preds = {}
        for pred, entries in by_pred.items():
            facts = list(entries.keys())
            stamps = list(entries.values())
            encoded_preds[pred] = (maybe_pack(facts), stamps)
        sent_log[target] = encoded_preds
    return {
        "version": CHECKPOINT_VERSION,
        "epoch": checkpoint.epoch,
        "in": _encode_relations(checkpoint.in_facts),
        "out": _encode_relations(checkpoint.out_facts),
        "staged": _encode_relations(checkpoint.staged),
        "counters": checkpoint.counters,
        "duplicates_dropped": checkpoint.duplicates_dropped,
        "received": checkpoint.received,
        "self_delivered": checkpoint.self_delivered,
        "sent_log": sent_log,
        "watermarks": dict(checkpoint.watermarks),
    }


def decode_checkpoint(payload: Dict[str, object]) -> WorkerCheckpoint:
    """Decode a wire dict back into the exact snapshot it encoded."""
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise ValueError(f"unknown checkpoint version {version!r}")
    sent_log: Dict[ProcessorId, Dict[str, Dict[Fact, Optional[Stamp]]]] = {}
    for target, by_pred in payload["sent_log"].items():  # type: ignore[union-attr]
        decoded_preds: Dict[str, Dict[Fact, Optional[Stamp]]] = {}
        for pred, (facts_payload, stamps) in by_pred.items():
            facts = ensure_facts(facts_payload)
            decoded_preds[pred] = dict(zip(facts, stamps))
        sent_log[target] = decoded_preds
    return WorkerCheckpoint(
        epoch=int(payload["epoch"]),  # type: ignore[arg-type]
        in_facts=_decode_relations(payload["in"]),  # type: ignore[arg-type]
        out_facts=_decode_relations(payload["out"]),  # type: ignore[arg-type]
        staged=_decode_relations(payload["staged"]),  # type: ignore[arg-type]
        counters=dict(payload["counters"]),  # type: ignore[call-overload]
        duplicates_dropped=int(payload["duplicates_dropped"]),  # type: ignore[arg-type]
        received=int(payload["received"]),  # type: ignore[arg-type]
        self_delivered=int(payload["self_delivered"]),  # type: ignore[arg-type]
        sent_log=sent_log,
        watermarks=dict(payload["watermarks"]),  # type: ignore[call-overload]
    )


def _approx_payload_bytes(payload: object) -> int:
    if is_packed(payload):
        return approx_packed_bytes(payload)
    return sum(approx_fact_bytes(fact) for fact in payload)  # type: ignore[union-attr]


def approx_checkpoint_bytes(payload: Dict[str, object]) -> int:
    """Deterministic approximate size of an encoded checkpoint.

    Same currency as ``channel_bytes`` (the size model of
    :mod:`repro.parallel.metrics`), so ``checkpoint_bytes`` in metrics
    and bench records is comparable across runs and platforms.
    """
    total = MESSAGE_OVERHEAD_BYTES
    for key in ("in", "out", "staged"):
        for pred, encoded in payload[key].items():  # type: ignore[union-attr]
            total += BATCH_OVERHEAD_BYTES + len(pred)
            total += _approx_payload_bytes(encoded)
    for target, by_pred in payload["sent_log"].items():  # type: ignore[union-attr]
        for pred, (facts_payload, stamps) in by_pred.items():
            total += BATCH_OVERHEAD_BYTES + len(pred)
            total += _approx_payload_bytes(facts_payload)
            total += _STAMP_BYTES * len(stamps)
    total += _STAMP_BYTES * len(payload["watermarks"])  # type: ignore[arg-type]
    return total
