"""Data structures describing a rewritten (parallelised) program.

A rewriter (Sections 3, 6 or 7 of the paper) turns a source program
into a :class:`ParallelProgram`:

* one :class:`ProcessorProgram` per processor — its initialisation and
  processing rules (referencing local ``t_in``/``t_out`` relation names
  and base fragments) plus the sender-resolved :class:`~.routing.Route`
  objects realising the *sending* rules;
* a list of :class:`FragmentSpec` stating, per base predicate, whether
  each processor needs the whole relation (shared/replicated) or only a
  fragment — the storage trade-off the paper's examples revolve around;
* the *union program* ``∪ Q_i``: a literal Datalog transliteration of
  the paper's rewriting whose sequential least model must coincide with
  the source program's (Theorems 1, 4 and 5) — used by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Mapping, Optional, Tuple

from ..datalog.program import Program
from ..datalog.rule import Rule
from ..errors import RewriteError
from ..facts.database import Database
from ..facts.fragments import FragmentationPlan
from ..facts.backend import make_relation
from ..facts.relation import Relation
from .discriminating import Discriminator
from .routing import Route, RouterTable

__all__ = ["FragmentSpec", "ProcessorProgram", "ParallelProgram"]

ProcessorId = Hashable

SHARED = "shared"
HASH = "hash"
ARBITRARY = "arbitrary"


@dataclass(frozen=True)
class FragmentSpec:
    """How one base predicate is made available to the processors.

    Attributes:
        predicate: the base predicate symbol.
        arity: the predicate's arity.
        local_name: relation name the processor rules use for it.
        kind: ``shared`` (full copy everywhere), ``hash`` (tuple kept by
            processor ``discriminator(values at positions)``) or
            ``arbitrary`` (an explicit partition drives the split; the
            discriminator is partition-defined, Example 2).
        positions: argument positions feeding the discriminator
            (``hash``/``arbitrary`` only).
        discriminator: the assigning function (``hash``/``arbitrary``).
    """

    predicate: str
    arity: int
    local_name: str
    kind: str = SHARED
    positions: Optional[Tuple[int, ...]] = None
    discriminator: Optional[Discriminator] = None

    def local_fragment(self, relation: Relation,
                       processor: ProcessorId) -> Relation:
        """Materialise this processor's fragment of ``relation``."""
        fragment = make_relation(self.local_name, relation.arity)
        if self.kind == SHARED:
            fragment.update(relation)
            return fragment
        assert self.positions is not None and self.discriminator is not None
        for fact in relation:
            values = tuple(fact[p] for p in self.positions)
            try:
                owner = self.discriminator(values)
            except Exception:  # partition-defined h: unknown tuple
                continue
            if owner == processor:
                fragment.add(fact)
        return fragment


@dataclass
class ProcessorProgram:
    """The program ``Q_i`` executed by one processor, in operational form.

    Attributes:
        processor: this processor's id.
        init_rules: rules with no ``_in`` body atom; evaluated once at
            start-up (the paper's *initialization* step).  Heads use the
            local ``t_out`` names.
        processing_rules: rules with ``_in`` body atoms; evaluated by
            semi-naive iteration over the ``_in`` deltas (the paper's
            *processing* step).
        routes: sender-resolved sending rules: each new ``t_out`` tuple
            is forwarded to the targets of every route of its predicate.
        in_names: derived predicate → local ``t_in`` relation name.
        out_names: derived predicate → local ``t_out`` relation name.
        arities: derived predicate → arity.
    """

    processor: ProcessorId
    init_rules: Tuple[Rule, ...]
    processing_rules: Tuple[Rule, ...]
    routes: Tuple[Route, ...]
    in_names: Mapping[str, str]
    out_names: Mapping[str, str]
    arities: Mapping[str, int] = field(default_factory=dict)

    def routes_for(self, predicate: str) -> Tuple[Route, ...]:
        """The routes applying to tuples of ``predicate``."""
        return tuple(r for r in self.routes if r.predicate == predicate)

    def router_table(self) -> RouterTable:
        """The compiled batch router over this program's routes.

        Compiled once per program instance and cached; the cache is a
        plain ``__dict__`` entry so ``dataclasses.replace`` and field
        mutation in tests build fresh tables, and it is dropped on
        pickling (mp workers recompile from the routes they receive).
        """
        cached = self.__dict__.get("_router_table")
        if cached is not None and cached[0] == self.routes:
            return cached[1]
        table = RouterTable(self.routes)
        self.__dict__["_router_table"] = (self.routes, table)
        return table

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_router_table", None)
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)


@dataclass
class ParallelProgram:
    """A source program rewritten for a set of processors.

    Attributes:
        source: the original Datalog program ``L`` (or ``M``).
        scheme: a short human-readable scheme label for reports.
        processors: the processor set ``P``.
        programs: per-processor operational programs.
        fragments: base-relation availability specs.
        fragmentation: the summary plan (storage requirement per base
            predicate) used in reports.
        union: the literal union program ``∪_i Q_i`` of the paper, whose
            sequential least model equals the source's (Theorems 1/4/5).
        derived: the derived predicates of the source program.
        pooled_names: derived predicate → predicate holding the pooled
            answer within the union program (normally the original name).
    """

    source: Program
    scheme: str
    processors: Tuple[ProcessorId, ...]
    programs: Dict[ProcessorId, ProcessorProgram]
    fragments: Tuple[FragmentSpec, ...]
    fragmentation: FragmentationPlan
    union: Program
    derived: Tuple[str, ...]

    def program_for(self, processor: ProcessorId) -> ProcessorProgram:
        """Return the operational program of ``processor``.

        Raises:
            RewriteError: for an unknown processor id.
        """
        try:
            return self.programs[processor]
        except KeyError:
            raise RewriteError(f"unknown processor {processor!r}") from None

    def local_database(self, processor: ProcessorId,
                       database: Database) -> Database:
        """Build the local base data of ``processor`` from the global input.

        Every fragment spec contributes one relation under its local
        name; base predicates without facts in ``database`` come up
        empty rather than failing, so partial inputs remain runnable.
        """
        local = Database()
        for spec in self.fragments:
            source = database.get(spec.predicate)
            if source is None:
                local.attach(make_relation(spec.local_name, spec.arity))
                continue
            local.attach(spec.local_fragment(source, processor))
        return local

    def replication_factor(self, database: Database) -> float:
        """Total stored base tuples across processors / input base tuples.

        1.0 means perfectly partitioned storage; N means everything is
        replicated at all N processors (Example 1's requirement).
        """
        stored = 0
        original = 0
        counted: set = set()
        for spec in self.fragments:
            source = database.get(spec.predicate)
            if source is None:
                continue
            if spec.predicate not in counted:
                counted.add(spec.predicate)
                original += len(source)
            for processor in self.processors:
                stored += len(spec.local_fragment(source, processor))
        if original == 0:
            return 1.0
        return stored / original
