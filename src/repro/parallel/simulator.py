"""A deterministic simulated cluster for rewritten programs.

The abstract architecture of Section 3: a set of processors, a reliable
channel ``ij`` for every ordered pair, asynchronous receives.  The
simulation is round-based — every round each processor ingests whatever
reached it, fires its processing rules semi-naively on the new tuples,
and the resulting outputs are routed for delivery at the next round.
Rounds make every metric exactly reproducible; message *delay* can be
injected (each in-flight tuple is independently held back a round) to
exercise the asynchrony the paper claims the schemes tolerate.

Termination is the condition that all processors are idle and all
channels empty.  The simulator sees this globally; optionally it also
runs Safra's token-ring termination-detection algorithm — the "standard
algorithm of Distributed Computing" the paper defers to [5, 7] — and
reports its control-message overhead and detection delay.

Two synchronisation regimes are supported (see
``docs/EXECUTION_MODES.md``).  ``sync="bsp"`` is the historical
round-barriered execution above.  ``sync="ssp"`` is a stale-synchronous
tick engine: each processor advances its own clock (one unit per
semi-naive step), steps cost ticks proportional to the work they
perform divided by the processor's modelled ``capacity``, and a
processor may run ahead of the slowest processor that still holds
pending work by at most ``staleness`` steps before it is throttled.
Because the discriminating-function partition makes every derivation
set-monotone and non-redundant, firing on stale deltas can only delay
tuples, never corrupt them — the pooled answer is identical to BSP and
to sequential evaluation (Theorem 1), while skewed workloads keep fast
processors busy instead of idling at barriers.

Fault injection (see :mod:`repro.parallel.faults`) shares its spec
language with the multiprocessing executor: kill faults discard a
processor's runtime state once its firing count crosses the threshold
(round granularity here, step granularity in mp), and channel faults
drop/delay/duplicate individual in-flight tuples from a seeded RNG.
Under ``recovery="restart"`` a killed processor is rebuilt from its
base fragment at the next round and its peers replay their per-target
sent-logs to it — the same monotonicity-backed protocol the mp
executor uses, so recovered outputs match undisturbed ones exactly.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from dataclasses import dataclass
from typing import (Dict, Hashable, List, Mapping, Optional, Sequence, Set,
                    Tuple)

from ..engine.counters import EvalCounters
from ..errors import ExecutionError
from ..facts.database import Database
from ..facts.backend import make_relation
from ..facts.relation import Fact, Relation
from ..network.netgraph import NetworkGraph
from ..obs.tracer import Tracer, ensure_tracer
from .faults import DELAY, DROP, DUPLICATE, FaultPlan
from .metrics import ParallelMetrics, approx_batch_bytes
from .naming import processor_tag
from .plans import ParallelProgram
from .processor import ProcessorRuntime

__all__ = ["ParallelResult", "SimulatedCluster", "run_parallel"]

ProcessorId = Hashable
Message = Tuple[ProcessorId, ProcessorId, str, Fact]  # (dest, sender, pred, tuple)


@dataclass
class ParallelResult:
    """Outcome of a simulated parallel execution.

    Attributes:
        output: pooled answer — one relation per derived predicate
            (the paper's final pooling step).
        metrics: all counters observed during the run.
        counters: per-processor engine counters.
    """

    output: Database
    metrics: ParallelMetrics
    counters: Dict[ProcessorId, EvalCounters]

    def relation(self, predicate: str) -> Relation:
        """Convenience accessor for a pooled output relation."""
        return self.output.relation(predicate)


class _SafraDetector:
    """Safra's token-based termination detection over a processor ring."""

    def __init__(self, ring: Sequence[ProcessorId]) -> None:
        self.ring = tuple(ring)
        self.colors = {proc: "white" for proc in self.ring}
        self.counts = {proc: 0 for proc in self.ring}
        self.holder_index = 0
        self.token_value = 0
        self.token_color = "white"
        self.hops = 0
        self.detected = False

    def on_send(self, sender: ProcessorId, count: int) -> None:
        self.counts[sender] += count

    def on_receive(self, receiver: ProcessorId, count: int) -> None:
        if count > 0:
            self.counts[receiver] -= count
            self.colors[receiver] = "black"

    def advance(self, idle: Dict[ProcessorId, bool]) -> None:
        """Move the token one hop if its holder is idle this round."""
        if self.detected:
            return
        holder = self.ring[self.holder_index]
        if not idle.get(holder, False):
            return
        if self.holder_index == 0:
            # The initiator's own count enters the test *fresh* (it may
            # have changed since the probe started); adding it at probe
            # start instead would allow false detections.
            if (self.hops >= len(self.ring)
                    and self.token_color == "white"
                    and self.colors[holder] == "white"
                    and self.token_value + self.counts[holder] == 0):
                self.detected = True
                return
            # Start a new probe: fresh white token, whitened initiator.
            self.token_value = 0
            self.token_color = "white"
            self.colors[holder] = "white"
            self.holder_index = 1 % len(self.ring)
            self.hops += 1
            return
        self.token_value += self.counts[holder]
        if self.colors[holder] == "black":
            self.token_color = "black"
        self.colors[holder] = "white"
        self.holder_index = (self.holder_index + 1) % len(self.ring)
        self.hops += 1


class SimulatedCluster:
    """Executes a :class:`ParallelProgram` over an input database.

    Args:
        program: the rewritten program.
        database: the global extensional input.
        delay_probability: chance that an in-flight tuple is held back
            one extra round (asynchrony injection; 0 = synchronous BSP).
        seed: RNG seed for delay injection.
        detect_termination: additionally run Safra's algorithm and
            record its control-message overhead.
        reorder: allow the planner's greedy body reordering.
        max_rounds: safety valve against non-terminating executions.
        network: optional :class:`~repro.network.netgraph.NetworkGraph`
            restricting which channels exist (Definition 3 — no
            indirect routing).  A send over a missing channel raises
            :class:`~repro.errors.ExecutionError`; running a program on
            its own derived minimal network must therefore succeed
            (Section 5's "adapt the parallel execution onto an existing
            parallel architecture").
        tracer: optional :class:`~repro.obs.Tracer`.  The simulator is
            round-based and fully deterministic, so the tracer should
            carry no clock: equal seeds then yield byte-identical
            event streams.
        faults: optional :class:`~repro.parallel.faults.FaultPlan` to
            inject (kills at round granularity, per-tuple channel
            drop/delay/duplicate from the plan's own seeded RNG).
        recovery: ``"fail"`` — an injected kill aborts the run with
            :class:`~repro.errors.ExecutionError`; ``"restart"`` — the
            killed processor is rebuilt from its base fragment and its
            peers replay their sent-logs to it.
        sync: ``"bsp"`` (default) — barriered rounds; ``"ssp"`` — the
            stale-synchronous tick engine (see the module docstring and
            ``docs/EXECUTION_MODES.md``).
        staleness: SSP lead bound — a processor may start a step only
            while its clock is less than ``staleness`` ahead of the
            slowest processor that still holds work.  Must be ``>= 1``
            (the slowest work-holder itself always has lag 0 and can
            step, which is what makes SSP live).  Ignored under BSP.
        capacity: optional per-processor speed map (processor *tag* ->
            work-units per tick, default 1.0) for the SSP cost model; a
            step performing ``w`` work occupies ``ceil(max(w, 1) /
            capacity)`` ticks.  Lets experiments model deliberately
            slow processors.  SSP only.
    """

    def __init__(self, program: ParallelProgram, database: Database,
                 delay_probability: float = 0.0, seed: int = 0,
                 detect_termination: bool = False, reorder: bool = True,
                 max_rounds: int = 1_000_000,
                 network: Optional[NetworkGraph] = None,
                 tracer: Optional[Tracer] = None,
                 faults: Optional[FaultPlan] = None,
                 recovery: str = "fail",
                 sync: str = "bsp",
                 staleness: int = 2,
                 capacity: Optional[Mapping[str, float]] = None) -> None:
        if recovery not in ("fail", "restart"):
            raise ExecutionError(
                f"unknown recovery policy {recovery!r}: expected 'fail' or "
                "'restart'")
        if sync not in ("bsp", "ssp"):
            raise ExecutionError(
                f"unknown sync mode {sync!r}: expected 'bsp' or 'ssp'")
        if sync == "ssp":
            if staleness < 1:
                raise ExecutionError(
                    "ssp requires staleness >= 1: the slowest work-holding "
                    "processor has lag 0 and must always be allowed to step")
            if detect_termination:
                raise ExecutionError(
                    "Safra's detector is defined over barriered rounds; "
                    "detect_termination requires sync='bsp'")
        elif capacity:
            raise ExecutionError(
                "per-processor capacity modelling is part of the SSP cost "
                "model; pass sync='ssp' to use it")
        self.program = program
        self.database = database
        self.delay_probability = delay_probability
        self.detect_termination = detect_termination
        self.max_rounds = max_rounds
        self.network = network
        self.tracer = ensure_tracer(tracer)
        self.recovery = recovery
        self.sync = sync
        self.staleness = staleness
        self._reorder = reorder
        self._rng = random.Random(seed)
        self._order = sorted(program.processors, key=processor_tag)
        self._tags = {proc: processor_tag(proc) for proc in self._order}
        self._capacity: Dict[str, float] = dict(capacity) if capacity else {}
        known_tags = set(self._tags.values())
        for tag, speed in self._capacity.items():
            if tag not in known_tags:
                raise ExecutionError(
                    f"capacity names unknown processor {tag!r}; known: "
                    f"{sorted(known_tags)}")
            if speed <= 0:
                raise ExecutionError(
                    f"capacity of {tag!r} must be positive, got {speed!r}")
        self.runtimes: Dict[ProcessorId, ProcessorRuntime] = {}
        self._routers = {}
        for proc in self._order:
            local = program.local_database(proc, database)
            self.runtimes[proc] = ProcessorRuntime(
                program.program_for(proc), local, reorder=reorder,
                tracer=self.tracer)
            self._routers[proc] = program.program_for(proc).router_table()
        self.metrics = ParallelMetrics(
            scheme=program.scheme, processors=tuple(self._order),
            sync=sync, staleness=staleness if sync == "ssp" else None)
        self._detector = (_SafraDetector(self._order)
                          if detect_termination else None)
        # Fault injection state: kill thresholds by processor (one-shot),
        # the channel-fault decider, and per-channel sent-logs for replay.
        self._kill_after: Dict[ProcessorId, int] = {}
        self._channel_faults = None
        self._sent_log: Dict[Tuple[ProcessorId, ProcessorId],
                             List[Tuple[str, Fact]]] = {}
        if faults is not None:
            known = {tag: proc for proc, tag in self._tags.items()}
            for kill in faults.kills:
                if kill.processor not in known:
                    raise ExecutionError(
                        f"kill fault names unknown processor "
                        f"{kill.processor!r}; known: {sorted(known)}")
                self._kill_after[known[kill.processor]] = kill.after_firings
            self._channel_faults = faults.channel_state()

    # ------------------------------------------------------------------
    def _route(self, sender: ProcessorId,
               emissions: Sequence[Tuple[str, Fact]]) -> List[Message]:
        """Apply the sending rules of ``sender`` to its new outputs.

        The whole emission list is partitioned into per-target buffers
        by the sender's compiled :class:`~.routing.RouterTable` in one
        pass per predicate; all counters (``sent``, ``self_delivered``,
        ``broadcast_tuples``) are bumped by bucket size, so totals are
        identical to the historical per-fact walk.  Each ``(sender,
        target, predicate)`` bucket counts as one message in the
        ``channel_messages``/``channel_bytes`` accounting and becomes
        one counted ``tuple_sent`` event.
        """
        messages: List[Message] = []
        router = self._routers[sender]
        metrics = self.metrics
        tracing = self.tracer.enabled
        total_remote = 0
        by_pred: Dict[str, List[Fact]] = {}
        for predicate, fact in emissions:
            group = by_pred.get(predicate)
            if group is None:
                by_pred[predicate] = [fact]
            else:
                group.append(fact)
        for predicate, facts in by_pred.items():
            buckets, broadcasts = router.partition(predicate, facts)
            metrics.broadcast_tuples += broadcasts
            for target, bucket in buckets.items():
                count = len(bucket)
                if target == sender:
                    metrics.self_delivered[sender] += count
                else:
                    if (self.network is not None
                            and not self.network.has_edge(sender, target)):
                        raise ExecutionError(
                            f"channel {sender!r} -> {target!r} needed for a "
                            f"{predicate} tuple is absent from the imposed "
                            "network graph (Definition 3 forbids indirect "
                            "routing)")
                    channel = (sender, target)
                    metrics.sent[channel] += count
                    metrics.channel_messages[channel] += 1
                    metrics.channel_bytes[channel] += approx_batch_bytes(
                        ((predicate, bucket),))
                    total_remote += count
                    if self._kill_after:
                        # Sent-logs only accumulate while a kill fault is
                        # armed; replay needs them, undisturbed runs don't.
                        self._sent_log.setdefault(channel, []).extend(
                            (predicate, fact) for fact in bucket)
                    if tracing:
                        self.tracer.tuple_sent(self._tags[sender],
                                               self._tags[target], predicate,
                                               count=count)
                messages.extend(
                    (target, sender, predicate, fact) for fact in bucket)
        if self._detector is not None:
            self._detector.on_send(sender, total_remote)
        return messages

    def _deliver(self, messages: List[Message]
                 ) -> Tuple[List[Message], Dict[ProcessorId, int]]:
        """Deliver in-flight messages, possibly holding some back.

        Returns the held-back messages and the per-processor count of
        remote tuples delivered this round.
        """
        held: List[Message] = []
        remote_received: Dict[ProcessorId, int] = {}
        if self.delay_probability <= 0.0 and self._channel_faults is None:
            # Fault-free fast path: no per-message RNG draw is owed, so
            # messages can be delivered as whole ``(dest, sender, pred)``
            # batches — one ``receive`` call and one counted
            # ``tuple_received`` event per batch.
            tracing = self.tracer.enabled
            groups: Dict[Tuple[ProcessorId, ProcessorId, str],
                         List[Fact]] = {}
            for destination, sender, predicate, fact in messages:
                key = (destination, sender, predicate)
                group = groups.get(key)
                if group is None:
                    groups[key] = [fact]
                else:
                    group.append(fact)
            for (destination, sender, predicate), facts in groups.items():
                remote = destination != sender
                self.runtimes[destination].receive(predicate, facts,
                                                   remote=remote)
                if remote:
                    remote_received[destination] = (
                        remote_received.get(destination, 0) + len(facts))
                    if tracing:
                        self.tracer.tuple_received(self._tags[destination],
                                                   self._tags[sender],
                                                   predicate,
                                                   count=len(facts))
            if self._detector is not None:
                for proc, count in remote_received.items():
                    self._detector.on_receive(proc, count)
            return held, remote_received
        for message in messages:
            if (self.delay_probability > 0.0
                    and self._rng.random() < self.delay_probability):
                held.append(message)
                continue
            destination, sender, predicate, fact = message
            copies = 1
            if self._channel_faults is not None and destination != sender:
                verdict = self._channel_faults.decide(
                    self._tags[sender], self._tags[destination])
                if verdict == DROP:
                    continue
                if verdict == DELAY:
                    held.append(message)
                    continue
                if verdict == DUPLICATE:
                    copies = 2
            remote = destination != sender
            for _ in range(copies):
                self.runtimes[destination].receive(predicate, [fact],
                                                   remote=remote)
                if remote:
                    remote_received[destination] = (
                        remote_received.get(destination, 0) + 1)
                    if self.tracer.enabled:
                        self.tracer.tuple_received(self._tags[destination],
                                                   self._tags[sender],
                                                   predicate)
        if self._detector is not None:
            for proc, count in remote_received.items():
                self._detector.on_receive(proc, count)
        return held, remote_received

    def _apply_kills(self, in_flight: List[Message]) -> None:
        """Fire armed kill faults whose firing threshold was crossed.

        Called at round boundaries.  Under ``recovery="fail"`` the
        first kill aborts the run; under ``"restart"`` the processor's
        runtime is rebuilt from its base fragment (all derived state is
        lost, modelling a process death), peers replay their sent-logs
        to it, and its initialization rules re-fire.  Kills are
        one-shot: a restarted processor is never re-killed.
        """
        tracing = self.tracer.enabled
        for proc, threshold in list(self._kill_after.items()):
            firings = self.runtimes[proc].counters.total_firings()
            if firings < threshold:
                continue
            del self._kill_after[proc]
            tag = self._tags[proc]
            if tracing:
                self.tracer.worker_down(tag, firings=firings,
                                        round=self.metrics.rounds)
            if self.recovery != "restart":
                raise ExecutionError(
                    f"processor {tag!r} killed by injected fault after "
                    f"{firings} firings (recovery policy is 'fail')")
            local = self.program.local_database(proc, self.database)
            self.runtimes[proc] = ProcessorRuntime(
                self.program.program_for(proc), local,
                reorder=self._reorder, tracer=self.tracer)
            self.metrics.restarts += 1
            if tracing:
                self.tracer.worker_restart(tag, round=self.metrics.rounds)
            for src in self._order:
                if src == proc:
                    continue
                log = self._sent_log.get((src, proc), [])
                if not log:
                    continue
                replay_pairs: Dict[str, List[Fact]] = {}
                for predicate, fact in log:
                    in_flight.append((proc, src, predicate, fact))
                    replay_pairs.setdefault(predicate, []).append(fact)
                self.metrics.sent[(src, proc)] += len(log)
                # A replay burst travels as one coalesced message.
                self.metrics.channel_messages[(src, proc)] += 1
                self.metrics.channel_bytes[(src, proc)] += approx_batch_bytes(
                    replay_pairs.items())
                self.metrics.replayed[src] += len(log)
                if self._detector is not None:
                    self._detector.on_send(src, len(log))
                if tracing:
                    self.tracer.replay(self._tags[src], tag, len(log))
            in_flight.extend(
                self._route(proc, self.runtimes[proc].initialize()))

    def run(self) -> ParallelResult:
        """Execute to quiescence and pool the answers.

        Raises:
            ExecutionError: if ``max_rounds`` is exceeded, or an
                injected kill fires under ``recovery="fail"``.
        """
        if self.sync == "ssp":
            return self._run_ssp()
        tracer = self.tracer
        tracing = tracer.enabled
        if tracing:
            tracer.run_start(scheme=self.program.scheme,
                             processors=[self._tags[p] for p in self._order],
                             executor="simulator")
            tracer.current_round = 0
            for proc in self._order:
                tracer.worker_spawn(self._tags[proc])
        in_flight: List[Message] = []
        for proc in self._order:
            emissions = self.runtimes[proc].initialize()
            in_flight.extend(self._route(proc, emissions))

        quiescent_round: Optional[int] = None
        while True:
            data_pending = bool(in_flight) or any(
                self.runtimes[p].has_pending_input() for p in self._order)
            if not data_pending and quiescent_round is None:
                quiescent_round = self.metrics.rounds
            if not data_pending and (self._detector is None
                                     or self._detector.detected):
                break
            if self.metrics.rounds >= self.max_rounds:
                raise ExecutionError(
                    f"no quiescence after {self.max_rounds} rounds")

            self.metrics.rounds += 1
            if tracing:
                tracer.round_start(self.metrics.rounds)
            in_flight, delivered = self._deliver(in_flight)

            round_work: Dict[ProcessorId, float] = {}
            round_sent: Dict[ProcessorId, int] = {}
            round_received: Dict[ProcessorId, int] = {}
            idle: Dict[ProcessorId, bool] = {}
            for proc in self._order:
                runtime = self.runtimes[proc]
                before_work = runtime.work_done()
                emissions = runtime.step()
                idle[proc] = not emissions and not runtime.has_pending_input()
                messages = self._route(proc, emissions)
                in_flight.extend(messages)
                round_work[proc] = runtime.work_done() - before_work
                round_sent[proc] = sum(
                    1 for destination, _, _, _ in messages if destination != proc)
                round_received[proc] = delivered.get(proc, 0)
            self.metrics.per_round_work.append(round_work)
            self.metrics.per_round_sent.append(round_sent)
            self.metrics.per_round_received.append(round_received)
            if tracing:
                tracer.round_end(
                    self.metrics.rounds,
                    work={self._tags[p]: round_work[p] for p in self._order},
                    sent={self._tags[p]: round_sent[p] for p in self._order},
                    received={self._tags[p]: round_received[p]
                              for p in self._order})

            if self._kill_after:
                self._apply_kills(in_flight)

            if self._detector is not None:
                hops_before = self._detector.hops
                self._detector.advance(idle)
                if tracing and self._detector.hops > hops_before:
                    tracer.probe(algorithm="safra-token",
                                 hops=self._detector.hops,
                                 detected=self._detector.detected)

        if self._detector is not None:
            self.metrics.control_messages = self._detector.hops
            if quiescent_round is not None:
                self.metrics.detection_rounds = (
                    self.metrics.rounds - quiescent_round)
        # Derive barrier busy/idle accounting from the per-round loads:
        # each round lasts as long as its most loaded processor, everyone
        # else waits at the barrier for the difference.  This puts BSP in
        # the same busy/idle/ticks currency the SSP engine measures
        # natively, so utilisation is comparable across modes.
        for round_work in self.metrics.per_round_work:
            peak = max((round_work.get(p, 0.0) for p in self._order),
                       default=0.0)
            if peak <= 0:
                continue
            self.metrics.ticks += int(math.ceil(peak))
            for proc in self._order:
                work = round_work.get(proc, 0.0)
                self.metrics.busy[proc] += int(work)
                self.metrics.idle[proc] += int(math.ceil(peak)) - int(work)
        return self._finish()

    # ------------------------------------------------------------------
    # Stale-synchronous (SSP) tick engine
    # ------------------------------------------------------------------
    def _schedule_ssp(self, messages: Sequence[Message], base_tick: int,
                      deliveries: Dict[int, List[Message]],
                      inflight_to: Counter) -> None:
        """Schedule routed messages for future delivery.

        Arrival is ``base_tick + 1`` (a channel hop costs one tick);
        injected delay — probabilistic or from a channel fault — pushes
        it further out, drop discards here (so a scheduled message is
        always eventually delivered), duplicate schedules two copies.
        """
        for message in messages:
            destination, sender, _predicate, _fact = message
            arrival = base_tick + 1
            if (self.delay_probability > 0.0
                    and self._rng.random() < self.delay_probability):
                arrival += 1
            copies = 1
            if self._channel_faults is not None and destination != sender:
                verdict = self._channel_faults.decide(
                    self._tags[sender], self._tags[destination])
                if verdict == DROP:
                    continue
                if verdict == DELAY:
                    arrival += 2
                elif verdict == DUPLICATE:
                    copies = 2
            for _ in range(copies):
                deliveries.setdefault(arrival, []).append(message)
                inflight_to[destination] += 1

    def _deliver_ssp(self, messages: Sequence[Message],
                     inflight_to: Counter) -> None:
        """Stage due messages, batched per ``(dest, sender, pred)``."""
        tracing = self.tracer.enabled
        groups: Dict[Tuple[ProcessorId, ProcessorId, str], List[Fact]] = {}
        for destination, sender, predicate, fact in messages:
            inflight_to[destination] -= 1
            groups.setdefault((destination, sender, predicate), []).append(fact)
        for (destination, sender, predicate), facts in groups.items():
            remote = destination != sender
            self.runtimes[destination].receive(predicate, facts, remote=remote)
            if remote and tracing:
                self.tracer.tuple_received(
                    self._tags[destination], self._tags[sender], predicate,
                    count=len(facts))

    def _apply_kill_ssp(self, proc: ProcessorId, tick: int,
                        deliveries: Dict[int, List[Message]],
                        inflight_to: Counter,
                        clock: Dict[ProcessorId, int],
                        busy_until: Dict[ProcessorId, int]) -> None:
        """Fire one armed kill at a step boundary of the SSP engine.

        Same restart-and-replay protocol as the BSP path, adapted to the
        tick clock: the rebuilt processor's SSP clock restarts at 0,
        which can only *lower* the horizon — peers over-throttle rather
        than race ahead of a recovering processor, which is the sound
        direction.
        """
        firings = self.runtimes[proc].counters.total_firings()
        tag = self._tags[proc]
        tracing = self.tracer.enabled
        del self._kill_after[proc]
        if tracing:
            self.tracer.worker_down(tag, firings=firings, tick=tick)
        if self.recovery != "restart":
            raise ExecutionError(
                f"processor {tag!r} killed by injected fault after "
                f"{firings} firings (recovery policy is 'fail')")
        local = self.program.local_database(proc, self.database)
        self.runtimes[proc] = ProcessorRuntime(
            self.program.program_for(proc), local,
            reorder=self._reorder, tracer=self.tracer)
        self.metrics.restarts += 1
        clock[proc] = 0
        if tracing:
            self.tracer.worker_restart(tag, tick=tick)
        for src in self._order:
            if src == proc:
                continue
            log = self._sent_log.get((src, proc), [])
            if not log:
                continue
            replay_pairs: Dict[str, List[Fact]] = {}
            for predicate, fact in log:
                deliveries.setdefault(tick + 1, []).append(
                    (proc, src, predicate, fact))
                inflight_to[proc] += 1
                replay_pairs.setdefault(predicate, []).append(fact)
            self.metrics.sent[(src, proc)] += len(log)
            self.metrics.channel_messages[(src, proc)] += 1
            self.metrics.channel_bytes[(src, proc)] += approx_batch_bytes(
                replay_pairs.items())
            self.metrics.replayed[src] += len(log)
            if tracing:
                self.tracer.replay(self._tags[src], tag, len(log))
        self._schedule_ssp(self._route(proc, self.runtimes[proc].initialize()),
                           tick, deliveries, inflight_to)
        busy_until[proc] = tick + 1  # re-initialization occupies one tick

    def _run_ssp(self) -> ParallelResult:
        """Execute under bounded staleness until global quiescence.

        The engine advances a global tick.  Each processor is either
        *busy* (inside a step whose cost is ``ceil(max(work, 1) /
        capacity)`` ticks), *idle* (no staged input), *stalled*
        (staged input but throttled by the staleness bound), or starts
        a new step.  The horizon is the minimum clock over processors
        that still hold work — staged input, a step in progress, or
        in-flight messages headed their way; processors without work
        are excluded so a finished processor can never throttle the
        rest (and an idle cluster terminates).  A processor may start
        a step only while ``clock - horizon < staleness``.
        """
        tracer = self.tracer
        tracing = tracer.enabled
        metrics = self.metrics
        if tracing:
            tracer.run_start(scheme=self.program.scheme,
                             processors=[self._tags[p] for p in self._order],
                             executor="simulator")
            for proc in self._order:
                tracer.worker_spawn(self._tags[proc])

        deliveries: Dict[int, List[Message]] = {}
        inflight_to: Counter = Counter()
        clock: Dict[ProcessorId, int] = {p: 0 for p in self._order}
        busy_until: Dict[ProcessorId, int] = {p: 1 for p in self._order}
        stalled_now: Set[ProcessorId] = set()
        for proc in self._order:
            # Initialization rules fire at tick 0 and occupy it.
            emissions = self.runtimes[proc].initialize()
            self._schedule_ssp(self._route(proc, emissions), 0,
                               deliveries, inflight_to)
            metrics.busy[proc] += 1

        tick = 1
        while True:
            if tick > self.max_rounds:
                raise ExecutionError(
                    f"no quiescence after {self.max_rounds} ticks")
            arrivals = deliveries.pop(tick, None)
            if arrivals:
                self._deliver_ssp(arrivals, inflight_to)

            busy = {p: busy_until[p] > tick for p in self._order}
            if self._kill_after:
                for proc in list(self._kill_after):
                    threshold = self._kill_after[proc]
                    if (not busy[proc] and self.runtimes[proc].counters
                            .total_firings() >= threshold):
                        self._apply_kill_ssp(proc, tick, deliveries,
                                             inflight_to, clock, busy_until)
                        busy[proc] = True

            pending = {p: self.runtimes[p].has_pending_input()
                       for p in self._order}
            holders = [p for p in self._order
                       if busy[p] or pending[p] or inflight_to[p] > 0]
            if not holders:
                break
            horizon = min(clock[p] for p in holders)

            for proc in self._order:
                if busy[proc]:
                    metrics.busy[proc] += 1
                    continue
                runtime = self.runtimes[proc]
                if not pending[proc]:
                    metrics.idle[proc] += 1
                    stalled_now.discard(proc)
                    continue
                lag = clock[proc] - horizon
                if lag >= self.staleness:
                    metrics.stalled[proc] += 1
                    if proc not in stalled_now:
                        stalled_now.add(proc)
                        if tracing:
                            tracer.worker_stalled(
                                self._tags[proc], lag,
                                staged=runtime.staged_size(), tick=tick)
                    continue
                stalled_now.discard(proc)
                lead = clock[proc] + 1 - horizon
                if lead > metrics.max_staleness_lag:
                    metrics.max_staleness_lag = lead
                before = runtime.work_done()
                emissions = runtime.step()
                work = runtime.work_done() - before
                speed = self._capacity.get(self._tags[proc], 1.0)
                duration = max(1, int(math.ceil(max(work, 1.0) / speed)))
                clock[proc] += 1
                busy_until[proc] = tick + duration
                metrics.busy[proc] += 1
                # Emissions travel once the step completes: schedule
                # against the step's last busy tick.
                self._schedule_ssp(self._route(proc, emissions),
                                   tick + duration - 1, deliveries,
                                   inflight_to)
            tick += 1

        metrics.ticks = tick
        metrics.rounds = max(clock.values(), default=0)
        return self._finish()

    # ------------------------------------------------------------------
    def _finish(self) -> ParallelResult:
        """Harvest counters, pool the answers, close the trace."""
        tracer = self.tracer
        tracing = tracer.enabled
        counters = {p: self.runtimes[p].counters for p in self._order}
        for proc in self._order:
            self.metrics.firings[proc] = counters[proc].total_firings()
            self.metrics.probes[proc] = counters[proc].probes
            self.metrics.received[proc] = self.runtimes[proc].received_remote
            self.metrics.duplicates_dropped[proc] = (
                self.runtimes[proc].duplicates_dropped)
            if tracing:
                tracer.worker_exit(self._tags[proc],
                                   firings=self.metrics.firings[proc],
                                   probes=self.metrics.probes[proc],
                                   received=self.metrics.received[proc])
        output = Database()
        for predicate in self.program.derived:
            arity = self.program.program_for(self._order[0]).arities[predicate]
            pooled = make_relation(predicate, arity)
            for proc in self._order:
                pooled.update(self.runtimes[proc].output_relation(predicate))
                self.metrics.pooled_tuples += len(
                    self.runtimes[proc].output_relation(predicate))
            output.attach(pooled)
        if tracing:
            tracer.run_end(rounds=self.metrics.rounds,
                           firings=self.metrics.total_firings(),
                           sent=self.metrics.total_sent(),
                           pooled=self.metrics.pooled_tuples)
        return ParallelResult(output=output, metrics=self.metrics,
                              counters=counters)


def run_parallel(program: ParallelProgram, database: Database,
                 **options: object) -> ParallelResult:
    """Convenience wrapper: build a cluster and run it to completion."""
    return SimulatedCluster(program, database, **options).run()
