"""Fault injection for the parallel executors.

The paper's correctness story (Theorem 1) makes worker failure benign
in principle: the parallel least model equals the sequential one, and
Datalog's monotonicity means re-deriving a fact is idempotent — a
restarted processor that replays its inputs converges to the same
answer, with duplicates discarded by the receiving step's difference
operation.  This module supplies the *faults* against which that claim
is exercised:

* **kill faults** — terminate processor *p* once its cumulative firing
  count reaches *N* (``kill:p1@50``).  The multiprocessing executor
  delivers a real ``SIGKILL`` to the worker process, after flushing its
  outbound queue buffers so the shared-queue locks are never torn down
  mid-write; the simulator discards the processor's runtime state at
  the end of the round in which the threshold is crossed.  Kills are
  one-shot: a restarted worker is not re-killed.
* **channel faults** — for each tuple crossing a remote channel,
  independently ``drop`` it (it vanishes; the paper assumes reliable
  channels, so this demonstrates *why*), ``delay`` it (held back and
  delivered later — one probe interval in the mp executor, one round in
  the simulator), or ``dup``licate it (delivered twice; harmless by
  monotonicity).  Decisions come from a seeded RNG, so runs are
  reproducible.

Both executors consume the same :class:`FaultPlan`; the multiprocessing
executor hands each worker a picklable :class:`WorkerFaults` slice.
Specs are parsed from the CLI's ``--inject-fault`` strings by
:func:`parse_fault_spec` / :func:`build_fault_plan`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..errors import ReproError

__all__ = [
    "DELAY",
    "DELIVER",
    "DROP",
    "DUPLICATE",
    "ChannelFault",
    "ChannelFaultState",
    "FaultPlan",
    "KillFault",
    "WorkerFaults",
    "build_fault_plan",
    "parse_fault_spec",
]

# Channel-fault actions / per-tuple verdicts.
DELIVER = "deliver"
DROP = "drop"
DELAY = "delay"
DUPLICATE = "duplicate"

_CHANNEL_ACTIONS = {"drop": DROP, "delay": DELAY, "dup": DUPLICATE,
                    "duplicate": DUPLICATE}


@dataclass(frozen=True)
class KillFault:
    """Kill one processor after its ``after_firings``-th firing.

    Attributes:
        processor: name-safe processor tag (see
            :func:`repro.parallel.naming.processor_tag`).
        after_firings: cumulative firing count that triggers the kill.
    """

    processor: str
    after_firings: int


@dataclass(frozen=True)
class ChannelFault:
    """Independently disturb each tuple on matching remote channels.

    Attributes:
        action: :data:`DROP`, :data:`DELAY` or :data:`DUPLICATE`.
        probability: per-tuple chance in ``[0, 1]`` of the disturbance.
        src: restrict to tuples sent by this processor tag (``None`` =
            any sender).
        dst: restrict to tuples destined for this tag (``None`` = any).
    """

    action: str
    probability: float
    src: Optional[str] = None
    dst: Optional[str] = None

    def applies(self, src: str, dst: str) -> bool:
        """True iff this fault covers the channel ``src -> dst``."""
        return ((self.src is None or self.src == src)
                and (self.dst is None or self.dst == dst))


@dataclass(frozen=True)
class WorkerFaults:
    """The picklable slice of a :class:`FaultPlan` one mp worker needs.

    Attributes:
        tag: this worker's processor tag (also salts its RNG).
        kill_after: firing count triggering self-``SIGKILL``, or ``None``.
        channel_faults: channel faults whose ``src`` covers this worker.
        seed: base seed shared by the whole plan.
    """

    tag: str
    kill_after: Optional[int]
    channel_faults: Tuple[ChannelFault, ...]
    seed: int

    def channel_state(self) -> Optional["ChannelFaultState"]:
        """Build this worker's channel-fault decider (``None`` if clean)."""
        if not self.channel_faults:
            return None
        return ChannelFaultState(self.channel_faults, self.seed, salt=self.tag)


class ChannelFaultState:
    """Seeded per-tuple decision maker shared by simulator and workers.

    The RNG is salted so every (plan seed, owner) pair draws an
    independent reproducible stream; the simulator owns one global
    state, each mp worker owns one salted with its tag.
    """

    def __init__(self, faults: Sequence[ChannelFault], seed: int,
                 salt: str = "") -> None:
        self.faults = tuple(faults)
        self._rng = random.Random(f"{seed}:{salt}:channel-faults")
        self.dropped = 0
        self.delayed = 0
        self.duplicated = 0

    def decide(self, src: str, dst: str) -> str:
        """Verdict for one tuple on ``src -> dst``.

        The first matching fault whose dice roll hits wins; with no hit
        the tuple is delivered normally.
        """
        for fault in self.faults:
            if not fault.applies(src, dst):
                continue
            if self._rng.random() < fault.probability:
                if fault.action == DROP:
                    self.dropped += 1
                elif fault.action == DELAY:
                    self.delayed += 1
                else:
                    self.duplicated += 1
                return fault.action
        return DELIVER


@dataclass(frozen=True)
class FaultPlan:
    """Everything to inject into one run.

    Attributes:
        kills: kill faults, at most one per processor tag.
        channel_faults: channel disturbances.
        seed: RNG seed for the channel-fault streams.
    """

    kills: Tuple[KillFault, ...] = ()
    channel_faults: Tuple[ChannelFault, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        tags = [kill.processor for kill in self.kills]
        if len(tags) != len(set(tags)):
            raise ReproError("at most one kill fault per processor")

    def kill_for(self, tag: str) -> Optional[KillFault]:
        """The kill fault of processor ``tag``, if any."""
        for kill in self.kills:
            if kill.processor == tag:
                return kill
        return None

    def worker_faults(self, tag: str) -> Optional[WorkerFaults]:
        """The picklable slice for mp worker ``tag`` (``None`` if clean).

        Channel faults are applied sender-side in the mp executor, so a
        worker receives exactly the faults whose ``src`` covers it.
        """
        kill = self.kill_for(tag)
        channel = tuple(f for f in self.channel_faults
                        if f.src is None or f.src == tag)
        if kill is None and not channel:
            return None
        return WorkerFaults(tag=tag,
                            kill_after=kill.after_firings if kill else None,
                            channel_faults=channel, seed=self.seed)

    def channel_state(self) -> Optional[ChannelFaultState]:
        """A global channel-fault decider (the simulator's mode)."""
        if not self.channel_faults:
            return None
        return ChannelFaultState(self.channel_faults, self.seed)

    def __bool__(self) -> bool:
        return bool(self.kills or self.channel_faults)


def parse_fault_spec(text: str):
    """Parse one ``--inject-fault`` spec string.

    Grammar::

        kill:<tag>@<firings>          e.g.  kill:p1@50
        drop:<prob>[@<src>-><dst>]    e.g.  drop:0.1   drop:0.5@p0->p1
        delay:<prob>[@<src>-><dst>]   e.g.  delay:0.25
        dup:<prob>[@<src>-><dst>]     e.g.  dup:0.05@*->p2

    ``*`` (or an empty side) matches any processor.

    Returns:
        A :class:`KillFault` or :class:`ChannelFault`.

    Raises:
        ReproError: on a malformed spec.
    """
    head, sep, rest = text.partition(":")
    head = head.strip().lower()
    if not sep or not rest:
        raise ReproError(
            f"malformed fault spec {text!r}: expected kind:args, e.g. "
            "kill:p1@50 or drop:0.1")
    if head == "kill":
        tag, sep, count = rest.partition("@")
        if not sep:
            raise ReproError(
                f"malformed kill spec {text!r}: expected kill:<tag>@<firings>")
        try:
            after = int(count)
        except ValueError:
            raise ReproError(
                f"malformed kill spec {text!r}: firing count {count!r} "
                "is not an integer") from None
        if after < 0:
            raise ReproError(f"kill spec {text!r}: firing count must be >= 0")
        if not tag:
            raise ReproError(f"kill spec {text!r}: empty processor tag")
        return KillFault(processor=tag.strip(), after_firings=after)
    if head in _CHANNEL_ACTIONS:
        prob_text, _sep, channel = rest.partition("@")
        try:
            probability = float(prob_text)
        except ValueError:
            raise ReproError(
                f"malformed fault spec {text!r}: probability {prob_text!r} "
                "is not a number") from None
        if not 0.0 <= probability <= 1.0:
            raise ReproError(
                f"fault spec {text!r}: probability must be in [0, 1]")
        src = dst = None
        if channel:
            src_text, arrow, dst_text = channel.partition("->")
            if not arrow:
                raise ReproError(
                    f"malformed fault spec {text!r}: channel must be "
                    "<src>-><dst>")
            src = src_text.strip() or None
            dst = dst_text.strip() or None
            src = None if src == "*" else src
            dst = None if dst == "*" else dst
        return ChannelFault(action=_CHANNEL_ACTIONS[head],
                            probability=probability, src=src, dst=dst)
    raise ReproError(
        f"unknown fault kind {head!r} in {text!r}: expected kill, drop, "
        "delay or dup")


def build_fault_plan(specs: Sequence[str], seed: int = 0) -> FaultPlan:
    """Parse a list of spec strings into one :class:`FaultPlan`."""
    kills = []
    channel = []
    for spec in specs:
        fault = parse_fault_spec(spec)
        if isinstance(fault, KillFault):
            kills.append(fault)
        else:
            channel.append(fault)
    return FaultPlan(kills=tuple(kills), channel_faults=tuple(channel),
                     seed=seed)
