"""Per-processor runtime: the semi-naive loop of one ``Q_i``.

A :class:`ProcessorRuntime` owns the local database of one processor —
its base fragments, the ``t_in``/``t_out`` relations and their
delta/prev companions — and exposes the two operations the abstract
architecture of Section 3 needs: *initialize* (fire the initialization
rules once) and *step* (ingest received tuples, fire the processing
rules semi-naively on the new ones, and emit the newly generated output
tuples for the sending rules to route).

Receives are asynchronous (the paper stresses this): a step simply
consumes whatever has been staged so far and never waits for any
particular sender.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..datalog.rule import Rule
from ..engine.counters import EvalCounters
from ..engine.planner import compile_plan
from ..engine.seminaive import DELTA_SUFFIX, PREV_SUFFIX, delta_variants
from ..facts.database import Database
from ..facts.packing import packed_fact_count, unpack_columns, unpack_facts
from ..facts.relation import Fact, Relation
from ..obs.tracer import Tracer, ensure_tracer
from .naming import processor_tag
from .plans import ProcessorProgram

__all__ = ["ProcessorRuntime"]

ProcessorId = Hashable
Emission = Tuple[str, Fact]  # (derived predicate, tuple)


class ProcessorRuntime:
    """Executable state of one processor.

    Args:
        program: the processor's rewritten program.
        local_base: the processor's base fragments (consumed; the
            runtime takes ownership of the database).
        counters: optional externally owned counters.
        reorder: allow the planner's greedy body reordering.
        tracer: optional :class:`~repro.obs.Tracer`; every firing,
            duplicate drop and staged receive becomes a typed event.
    """

    def __init__(self, program: ProcessorProgram, local_base: Database,
                 counters: Optional[EvalCounters] = None,
                 reorder: bool = True,
                 tracer: Optional[Tracer] = None) -> None:
        self.program = program
        self.tracer = ensure_tracer(tracer)
        self.tag = processor_tag(program.processor)
        self.counters = counters if counters is not None else EvalCounters()
        self.working = local_base
        self.duplicates_dropped = 0
        self.received_total = 0
        self.received_remote = 0

        self._out_to_pred: Dict[str, str] = {}
        self._in_full: Dict[str, Relation] = {}
        self._in_delta: Dict[str, Relation] = {}
        self._in_prev: Dict[str, Relation] = {}
        self._out: Dict[str, Relation] = {}
        self._staged: Dict[str, List[Fact]] = {}
        self._staged_packed: Dict[str, List[Tuple]] = {}

        for pred, iname in program.in_names.items():
            arity = program.arities[pred]
            self._in_full[pred] = self.working.declare(iname, arity)
            self._in_delta[pred] = self.working.declare(iname + DELTA_SUFFIX, arity)
            self._in_prev[pred] = self.working.declare(iname + PREV_SUFFIX, arity)
            self._staged[pred] = []
            self._staged_packed[pred] = []
        for pred, oname in program.out_names.items():
            self._out[pred] = self.working.declare(oname, program.arities[pred])
            self._out_to_pred[oname] = pred

        self._init_plans = [compile_plan(rule, label=_plain_label(rule),
                                         reorder=reorder)
                            for rule in program.init_rules]
        in_names = set(program.in_names.values())
        self._variant_plans = []
        for rule in program.processing_rules:
            for variant in delta_variants(rule, in_names):
                plan = compile_plan(variant.rule, label=_plain_label(rule),
                                    reorder=reorder,
                                    pinned_first=variant.delta_position)
                self._variant_plans.append(plan)

    # ------------------------------------------------------------------
    # The five execution steps (operational form)
    # ------------------------------------------------------------------
    def initialize(self) -> List[Emission]:
        """Fire the initialization rules once; return new output tuples."""
        tracer = self.tracer
        tracing = tracer.enabled
        emissions: List[Emission] = []
        for plan in self._init_plans:
            pred = self._out_to_pred[plan.rule.head.predicate]
            out = self._out[pred]
            produced = plan.execute(self.working, self.counters)
            if tracing:
                produced = list(produced)
                for fact in produced:
                    tracer.rule_fired(self.tag, plan.label, fact)
            # Batch dedup against the output relation; the fresh facts
            # (first-occurrence order) are exactly what gets routed.
            fresh = out.add_new_many(produced)
            if fresh:
                self.counters.record_new(plan.label, len(fresh))
                for fact in fresh:
                    emissions.append((pred, fact))
        return emissions

    def receive(self, predicate: str, facts: Sequence[Fact],
                remote: bool = True) -> None:
        """Stage tuples arriving on this processor's channels.

        Args:
            predicate: the derived predicate the tuples belong to.
            facts: the tuples.
            remote: False for self-deliveries, which cost no
                communication (Example 1's zero-communication schemes
                deliver everything this way).
        """
        self._staged[predicate].extend(facts)
        self.received_total += len(facts)
        if remote:
            self.received_remote += len(facts)

    def receive_packed(self, predicate: str, payload: Tuple,
                       remote: bool = True) -> None:
        """Stage a packed-column DATA payload without row reconstruction.

        The payload (see :mod:`repro.facts.packing`) is held in wire
        form and decoded columnwise at the next :meth:`step`, where the
        whole batch is ingested through one ``add_new_many`` — the mp
        workers hand large DATA batches straight here so no per-fact
        tuple loop runs between the channel and the delta relation.
        """
        count = packed_fact_count(payload)
        self._staged_packed[predicate].append(payload)
        self.received_total += count
        if remote:
            self.received_remote += count

    def has_pending_input(self) -> bool:
        """True iff staged tuples await the next step."""
        return (any(self._staged.values())
                or any(self._staged_packed.values()))

    def staged_size(self) -> int:
        """Staged tuples awaiting the next step (duplicates included).

        The SSP executors report this when a processor is throttled, so
        traces show how much work the staleness bound is holding back.
        """
        return (sum(len(staged) for staged in self._staged.values())
                + sum(packed_fact_count(payload)
                      for payloads in self._staged_packed.values()
                      for payload in payloads))

    def step(self) -> List[Emission]:
        """Run one semi-naive round over the staged input.

        Returns the newly generated output tuples (for routing).  With
        no staged input the processor is idle and emits nothing.
        """
        # Close the previous round: prev catches up with full.
        for pred in self._in_full:
            self._in_prev[pred].update(self._in_delta[pred])
            self._in_delta[pred].clear()

        # Ingest: new tuples feed the deltas, duplicates are discarded
        # by the difference operation of the paper's receiving step.
        # Bulk path: plain staged rows and packed payloads (decoded
        # columnwise, one zip per batch) combine into a single
        # ``add_new_many`` per predicate — first occurrence wins, every
        # later occurrence is a drop, exactly the per-fact ``add``
        # accounting — and the fresh facts land on the columnar
        # backend's append path for both full and delta.
        tracer = self.tracer
        tracing = tracer.enabled
        fired = False
        for pred, staged in self._staged.items():
            payloads = self._staged_packed[pred]
            if not staged and not payloads:
                continue
            total = len(staged)
            rows: List[Fact] = staged if not payloads else list(staged)
            for payload in payloads:
                count, arity, columns = unpack_columns(payload)
                total += count
                if not count:
                    continue
                if arity > 1:
                    rows.extend(zip(*columns))
                elif arity == 1:
                    rows.extend((value,) for value in columns[0])
                else:
                    rows.extend(() for _ in range(count))
            fresh = self._in_full[pred].add_new_many(rows)
            dropped = total - len(fresh)
            if fresh:
                self._in_delta[pred].update(fresh)
                fired = True
            if dropped:
                self.duplicates_dropped += dropped
                if tracing:
                    tracer.tuple_dropped(self.tag, pred, count=dropped)
            staged.clear()
            payloads.clear()
        if not fired:
            return []

        self.counters.iterations += 1
        emissions: List[Emission] = []
        for plan in self._variant_plans:
            pred = self._out_to_pred[plan.rule.head.predicate]
            out = self._out[pred]
            produced = plan.execute(self.working, self.counters)
            if tracing:
                produced = list(produced)
                for fact in produced:
                    tracer.rule_fired(self.tag, plan.label, fact)
            # Batch dedup against the output relation; the fresh facts
            # (first-occurrence order) are exactly what gets routed.
            fresh = out.add_new_many(produced)
            if fresh:
                self.counters.record_new(plan.label, len(fresh))
                for fact in fresh:
                    emissions.append((pred, fact))
        return emissions

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def export_state(self) -> Tuple[Dict[str, List[Fact]],
                                    Dict[str, List[Fact]],
                                    Dict[str, List[Fact]]]:
        """Snapshot the derived state for a checkpoint.

        Returns ``(in_facts, out_facts, staged)``: the full input
        relations, the output relations and any staged-but-unprocessed
        tuples.  Taken at a burst boundary (no step in progress) this is
        a consistent cut of the processor: every fact in ``in_facts``
        has already fired as a delta, so the deltas need not travel.
        """
        staged: Dict[str, List[Fact]] = {
            pred: list(rows) for pred, rows in self._staged.items() if rows}
        # Packed payloads snapshot as plain rows: checkpoints stay
        # independent of the wire format a batch happened to arrive in.
        for pred, payloads in self._staged_packed.items():
            if payloads:
                rows = staged.setdefault(pred, [])
                for payload in payloads:
                    rows.extend(unpack_facts(payload))
        return ({pred: list(rel) for pred, rel in self._in_full.items()},
                {pred: list(rel) for pred, rel in self._out.items()},
                staged)

    def import_state(self, in_facts: Dict[str, Sequence[Fact]],
                     out_facts: Dict[str, Sequence[Fact]],
                     staged: Dict[str, Sequence[Fact]],
                     counters: Optional[Dict[str, object]] = None,
                     duplicates_dropped: int = 0) -> None:
        """Restore an :meth:`export_state` snapshot into a fresh runtime.

        Checkpointed input facts load into *full and prev* with empty
        deltas: the checkpoint was cut at a burst boundary, where every
        fact in full had already fired, so re-firing on them would only
        re-derive duplicates (monotonicity makes that sound but
        wasteful, and it would double-count firings).  Output facts
        reload so later derivations dedup against them — a restored
        worker must not re-emit what its predecessor already routed.
        ``counters`` (an :meth:`EvalCounters.as_dict` snapshot) carries
        the predecessor's firing counts forward, keeping the cluster
        total equal to an undisturbed run.

        Call before :meth:`initialize`-time routing — a restored worker
        skips ``initialize()`` entirely, since its init-rule output is
        already inside ``out_facts``.
        """
        for pred, facts in in_facts.items():
            self._in_full[pred].update(facts)
            self._in_prev[pred].update(facts)
        for pred, facts in out_facts.items():
            self._out[pred].update(facts)
        for pred, facts in staged.items():
            self._staged[pred].extend(facts)
        if counters is not None:
            self.counters = EvalCounters.from_dict(counters)
        self.duplicates_dropped += duplicates_dropped

    def output_relation(self, predicate: str) -> Relation:
        """The local ``t_out`` relation of ``predicate`` (final pooling)."""
        return self._out[predicate]

    def output_size(self) -> int:
        """Total tuples in all local output relations."""
        return sum(len(rel) for rel in self._out.values())

    def work_done(self) -> float:
        """Engine operations performed so far (firings + probes)."""
        return self.counters.total_firings() + self.counters.probes

    def __repr__(self) -> str:
        return (f"ProcessorRuntime({self.program.processor!r}, "
                f"out={self.output_size()}, {self.counters!r})")


def _plain_label(rule: Rule) -> str:
    """A stable counter label for a rewritten rule."""
    return str(rule)
