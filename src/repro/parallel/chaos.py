"""Chaos soak harness: seeded random fault schedules vs. exactness.

The fault-tolerance contract of the mp executor is absolute — whatever
combination of worker kills and channel disturbances a run suffers,
the pooled answer must equal the sequential least model *exactly*.
Individual tests pin single fault shapes; this module soaks the
cross-product.  Each seed deterministically derives one *case*:

* a point in the configuration grid — rewriting scheme x sync mode
  (bsp/ssp) x fact backend (tuple/columnar) x recovery policy
  (restart/checkpoint) — cycled so consecutive seeds disagree on the
  recovery policy first (the axis under test);
* a workload (random tree or diamond-rich DAG under the ancestor
  program, size and shape drawn from the seed);
* a fault schedule: one or two SIGKILLs at random firing counts on
  distinct victims, plus up to two channel faults (drop / delay / dup
  at a random probability).

``random.Random(f"chaos:{seed}")`` derives everything, so a failing
seed replays exactly (`repro chaos --seeds 1 --start-seed <n>`), and a
soak never depends on wall-clock or interpreter hash randomisation.

A case *passes* iff the run completes within its budgets and every
derived relation equals the sequential evaluation of the same program.
Any :class:`~repro.errors.ReproError` (budget exhausted, wedged
worker, timeout) is a recorded failure, not a crash of the soak.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..engine import evaluate
from ..errors import ReproError
from ..facts.backend import set_fact_backend
from ..facts.database import Database
from ..workloads import ancestor_program, random_dag_edges, random_tree_edges
from .faults import build_fault_plan
from .naming import processor_tag
from .plans import ParallelProgram
from .schemes import (
    example2_scheme,
    example3_scheme,
    hash_scheme,
    wolfson_scheme,
)

__all__ = ["ChaosCase", "ChaosOutcome", "build_case", "run_case",
           "run_chaos", "summarize"]

# Grid axes, ordered by how fast they cycle across consecutive seeds.
# Recovery varies fastest: it is the axis this harness exists to soak,
# and any contiguous seed range then covers both policies evenly.
_RECOVERIES = ("restart", "checkpoint")
_SCHEMES = ("example3", "hash", "example2", "wolfson")
_SYNCS = ("bsp", "ssp")
_BACKENDS = ("tuple", "columnar")


@dataclass(frozen=True)
class ChaosCase:
    """One deterministic soak case (everything derived from ``seed``)."""

    seed: int
    scheme: str
    sync: str
    staleness: int
    backend: str
    recovery: str
    workload: str            # "tree" or "dag"
    size: int
    workload_seed: int
    fault_specs: Tuple[str, ...]
    fault_seed: int
    max_restarts: int = 4
    checkpoint_interval: int = 2

    def describe(self) -> str:
        faults = ", ".join(self.fault_specs) if self.fault_specs else "none"
        mode = (f"ssp(s={self.staleness})" if self.sync == "ssp" else "bsp")
        return (f"seed {self.seed}: {self.scheme}/{mode}/{self.backend}/"
                f"{self.recovery} on {self.workload}-{self.size} "
                f"[{faults}]")


@dataclass
class ChaosOutcome:
    """What happened when a case ran."""

    case: ChaosCase
    ok: bool
    detail: str = ""
    restarts: int = 0
    retried: int = 0
    recovery_seconds: float = 0.0
    wall_seconds: float = 0.0

    def describe(self) -> str:
        status = "ok  " if self.ok else "FAIL"
        extra = (f" restarts={self.restarts} retried={self.retried}"
                 f" recovery={self.recovery_seconds:.3f}s"
                 f" wall={self.wall_seconds:.2f}s")
        tail = f" — {self.detail}" if self.detail else ""
        return f"{status} {self.case.describe()}{extra}{tail}"


def _grid_point(index: int) -> Tuple[str, str, str, str]:
    recovery = _RECOVERIES[index % len(_RECOVERIES)]
    index //= len(_RECOVERIES)
    scheme = _SCHEMES[index % len(_SCHEMES)]
    index //= len(_SCHEMES)
    sync = _SYNCS[index % len(_SYNCS)]
    index //= len(_SYNCS)
    backend = _BACKENDS[index % len(_BACKENDS)]
    return recovery, scheme, sync, backend


def _processors(scheme: str) -> Tuple[int, ...]:
    # Wolfson's scheme is defined for two processors in this repo's
    # rewriting; every other comm scheme soaks with three.
    return (0, 1) if scheme == "wolfson" else (0, 1, 2)


def build_case(seed: int, max_restarts: int = 4,
               checkpoint_interval: int = 2) -> ChaosCase:
    """Derive the soak case of ``seed`` (pure, deterministic)."""
    recovery, scheme, sync, backend = _grid_point(seed)
    rng = random.Random(f"chaos:{seed}")
    workload = rng.choice(("tree", "tree", "dag"))
    size = rng.randint(24, 48)
    workload_seed = rng.randint(0, 10_000)
    tags = [processor_tag(proc) for proc in _processors(scheme)]
    kills = rng.choice((1, 1, 2))
    victims = rng.sample(tags, k=min(kills, len(tags)))
    specs: List[str] = [f"kill:{victim}@{rng.randint(1, 40)}"
                       for victim in victims]
    for _ in range(rng.choice((0, 1, 1, 2))):
        kind = rng.choice(("drop", "delay", "dup"))
        prob = round(rng.uniform(0.05, 0.30), 2)
        specs.append(f"{kind}:{prob}")
    return ChaosCase(seed=seed, scheme=scheme, sync=sync, staleness=2,
                     backend=backend, recovery=recovery, workload=workload,
                     size=size, workload_seed=workload_seed,
                     fault_specs=tuple(specs), fault_seed=seed,
                     max_restarts=max_restarts,
                     checkpoint_interval=checkpoint_interval)


def _build_database(case: ChaosCase) -> Database:
    if case.workload == "dag":
        edges = random_dag_edges(case.size, parents=2,
                                 seed=case.workload_seed)
    else:
        edges = random_tree_edges(case.size, seed=case.workload_seed)
    return Database.from_facts({"par": edges})


def _build_parallel(case: ChaosCase, program,
                    database: Database) -> ParallelProgram:
    processors = _processors(case.scheme)
    if case.scheme == "example2":
        return example2_scheme(program, processors, database)
    if case.scheme == "hash":
        return hash_scheme(program, processors)
    if case.scheme == "wolfson":
        return wolfson_scheme(program, processors)
    return example3_scheme(program, processors)


def run_case(case: ChaosCase, timeout: float = 60.0) -> ChaosOutcome:
    """Run one case against the mp executor and judge exactness."""
    from .mp import run_multiprocessing

    program = ancestor_program()
    database = _build_database(case)
    expected = evaluate(program, database)
    parallel_program = _build_parallel(case, program, database)
    plan = build_fault_plan(list(case.fault_specs), seed=case.fault_seed)
    previous_backend = set_fact_backend(case.backend)
    try:
        result = run_multiprocessing(
            parallel_program, database, faults=plan, recovery=case.recovery,
            max_restarts=case.max_restarts,
            checkpoint_interval=case.checkpoint_interval,
            sync=case.sync, staleness=case.staleness, timeout=timeout)
    except ReproError as error:
        return ChaosOutcome(case=case, ok=False,
                            detail=f"{type(error).__name__}: {error}")
    finally:
        set_fact_backend(previous_backend)
    for predicate in parallel_program.derived:
        got = result.relation(predicate).as_set()
        want = expected.relation(predicate).as_set()
        if got != want:
            missing = len(want - got)
            extra = len(got - want)
            return ChaosOutcome(
                case=case, ok=False,
                detail=(f"answer mismatch on {predicate!r}: "
                        f"{missing} missing, {extra} extra"),
                restarts=result.restarts,
                retried=result.metrics.retried,
                recovery_seconds=result.metrics.recovery_seconds,
                wall_seconds=result.wall_seconds)
    return ChaosOutcome(case=case, ok=True, restarts=result.restarts,
                        retried=result.metrics.retried,
                        recovery_seconds=result.metrics.recovery_seconds,
                        wall_seconds=result.wall_seconds)


def run_chaos(seeds: int = 20, start_seed: int = 0, timeout: float = 60.0,
              max_restarts: int = 4, checkpoint_interval: int = 2,
              progress: Optional[Callable[[str], None]] = None
              ) -> List[ChaosOutcome]:
    """Soak ``seeds`` consecutive cases; never raises on a case failure."""
    outcomes: List[ChaosOutcome] = []
    for seed in range(start_seed, start_seed + seeds):
        case = build_case(seed, max_restarts=max_restarts,
                          checkpoint_interval=checkpoint_interval)
        outcome = run_case(case, timeout=timeout)
        outcomes.append(outcome)
        if progress is not None:
            progress(outcome.describe())
    return outcomes


def summarize(outcomes: Sequence[ChaosOutcome]) -> str:
    """A one-paragraph verdict over a soak's outcomes."""
    failures = [outcome for outcome in outcomes if not outcome.ok]
    per_policy: Dict[str, int] = {}
    for outcome in outcomes:
        per_policy[outcome.case.recovery] = \
            per_policy.get(outcome.case.recovery, 0) + 1
    policies = ", ".join(f"{policy}: {count}"
                         for policy, count in sorted(per_policy.items()))
    lines = [f"{len(outcomes)} case(s) ({policies}); "
             f"{len(failures)} failure(s)"]
    for outcome in failures:
        lines.append(f"  {outcome.describe()}")
    return "\n".join(lines)
