"""Command-line interface.

Usage (also available as ``python -m repro``)::

    repro run program.dl [--facts facts.dl] [--method seminaive]
    repro parallel program.dl --scheme example3 -n 4 [--facts facts.dl]
                   [--keep 0.5] [--mp] [--detect-termination] [--stats]
                   [--trace run.jsonl] [--delay-prob 0.2] [--seed 7]
                   [--inject-fault kill:p1@50] [--recovery checkpoint]
                   [--max-restarts 3] [--checkpoint-interval 4]
                   [--ack-deadline 20]
    repro chaos [--seeds 20] [--start-seed 0] [--timeout 60]
                   [--max-restarts 4] [--checkpoint-interval 2]
    repro trace run.jsonl [--json] [--send-cost 1.0] [--recv-cost 1.0]
    repro network program.dl [--positions 1,2] [--linear 1,-1,1]
                   [--g-range 2]
    repro workloads
    repro bench run [-o BENCH_1.json] [--matrix smoke] [--repeats 3]
    repro bench compare BENCH_1.json BENCH_2.json [--threshold 0.1]
                   [--counters-only]
    repro bench profile engine-seminaive-chain-256 [--top 20]
    repro bench list

``program.dl`` is a Datalog file; fact rules (``par(1, 2).``) may live
in the program file itself or in a separate ``--facts`` file.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, Tuple

from .datalog import parse_program
from .datalog.program import Program
from .engine import evaluate
from .errors import ReproError
from .facts import Database

__all__ = ["main", "build_parser"]


def _load(program_path: str, facts_path: Optional[str]) -> Tuple[Program, Database]:
    """Load a program and its extensional database."""
    with open(program_path, encoding="utf-8") as handle:
        program = parse_program(handle.read())
    database = Database.from_atoms(program.facts())
    if facts_path is not None:
        with open(facts_path, encoding="utf-8") as handle:
            facts_program = parse_program(handle.read(), validate=False)
        for atom in facts_program.facts():
            database.add_fact(atom.predicate, atom.to_fact())
    proper = Program(program.proper_rules())
    return proper, database


def _print_relations(database: Database, predicates: Sequence[str],
                     limit: int) -> None:
    for predicate in predicates:
        relation = database.get(predicate)
        if relation is None:
            continue
        print(f"{predicate}/{relation.arity}: {len(relation)} facts")
        for index, fact in enumerate(sorted(relation, key=repr)):
            if index >= limit:
                print(f"  ... ({len(relation) - limit} more)")
                break
            args = ", ".join(str(value) for value in fact)
            print(f"  {predicate}({args})")


def _cmd_run(args: argparse.Namespace) -> int:
    program, database = _load(args.program, args.facts)
    result = evaluate(program, database, method=args.method)
    predicates = ([args.query] if args.query
                  else list(program.derived_predicates))
    _print_relations(result.output, predicates, args.limit)
    if args.stats:
        counters = result.counters
        print(f"\nfirings: {counters.total_firings()}, "
              f"probes: {counters.probes}, "
              f"iterations: {counters.iterations}")
    return 0


def _build_scheme(args: argparse.Namespace, program: Program,
                  database: Database):
    from .parallel import (
        example1_scheme,
        example2_scheme,
        example3_scheme,
        hash_scheme,
        rewrite_general,
        tradeoff_scheme,
        wolfson_scheme,
    )

    processors = tuple(range(args.processors))
    scheme = args.scheme
    if scheme == "example1":
        return example1_scheme(program, processors)
    if scheme == "example2":
        return example2_scheme(program, processors, database)
    if scheme == "example3":
        return example3_scheme(program, processors)
    if scheme == "hash":
        return hash_scheme(program, processors)
    if scheme == "wolfson":
        return wolfson_scheme(program, processors)
    if scheme == "tradeoff":
        return tradeoff_scheme(program, processors, args.keep)
    if scheme == "general":
        return rewrite_general(program, processors)
    raise ReproError(f"unknown scheme {scheme!r}")


def _cmd_parallel(args: argparse.Namespace) -> int:
    from .parallel import run_parallel
    from .parallel.mp import run_multiprocessing

    if not 0.0 <= args.delay_prob < 1.0:
        raise ReproError(
            f"--delay-prob must be in [0, 1), got {args.delay_prob}: "
            "at 1 every tuple is re-delayed forever and the run never "
            "quiesces")
    if args.recovery == "checkpoint" and not args.mp:
        raise ReproError(
            "--recovery checkpoint needs real worker processes to "
            "snapshot; add --mp (the simulator supports fail/restart)")
    program, database = _load(args.program, args.facts)
    parallel_program = _build_scheme(args, program, database)
    mode = (f"{args.sync}(staleness={args.staleness})"
            if args.sync == "ssp" else args.sync)
    print(f"scheme: {parallel_program.scheme} on "
          f"{len(parallel_program.processors)} processors [{mode}]")
    print("base-relation storage:")
    for line in parallel_program.fragmentation.describe().splitlines():
        print(f"  {line}")

    faults = None
    if args.inject_fault:
        from .parallel.faults import build_fault_plan

        faults = build_fault_plan(args.inject_fault, seed=args.seed)
        specs = ", ".join(args.inject_fault)
        print(f"fault injection: {specs} (recovery={args.recovery}, "
              f"seed={args.seed})")

    tracer = None
    if args.trace:
        import time

        from .obs import JsonlSink, Tracer

        # The simulator's trace must be deterministic (equal seeds →
        # byte-identical files), so only the mp executor gets a clock.
        tracer = Tracer(JsonlSink(args.trace),
                        clock=time.perf_counter if args.mp else None)
    try:
        if args.mp:
            result = run_multiprocessing(parallel_program, database,
                                         timeout=args.timeout, tracer=tracer,
                                         recovery=args.recovery,
                                         faults=faults, sync=args.sync,
                                         staleness=args.staleness,
                                         max_restarts=args.max_restarts,
                                         checkpoint_interval=
                                         args.checkpoint_interval,
                                         ack_timeout=args.ack_deadline)
            print(f"\nreal multiprocessing run: "
                  f"{result.wall_seconds:.2f}s wall")
            if result.restarts:
                print(f"workers restarted after injected faults: "
                      f"{result.restarts}")
        else:
            result = run_parallel(parallel_program, database,
                                  detect_termination=args.detect_termination,
                                  delay_probability=args.delay_prob,
                                  seed=args.seed, tracer=tracer,
                                  recovery=args.recovery, faults=faults,
                                  sync=args.sync, staleness=args.staleness)
            if result.metrics.restarts:
                print(f"processors restarted after injected faults: "
                      f"{result.metrics.restarts}")
    finally:
        if tracer is not None:
            tracer.close()
    if args.trace:
        print(f"trace written to {args.trace} "
              f"(inspect with: repro trace {args.trace})")
    _print_relations(result.output, parallel_program.derived, args.limit)
    if args.stats:
        summary = dict(result.metrics.summary())
        if args.mp:
            summary["wall_seconds"] = round(result.wall_seconds, 3)
        print()
        for key, value in summary.items():
            print(f"  {key}: {value}")
    if args.check:
        sequential = evaluate(program, database)
        matches = all(
            result.relation(pred).as_set()
            == sequential.relation(pred).as_set()
            for pred in parallel_program.derived)
        print(f"\nmatches sequential evaluation: {matches}")
        if not matches:
            return 1
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .parallel.chaos import run_chaos, summarize

    if args.seeds < 1:
        raise ReproError(f"--seeds must be >= 1, got {args.seeds}")
    outcomes = run_chaos(seeds=args.seeds, start_seed=args.start_seed,
                         timeout=args.timeout,
                         max_restarts=args.max_restarts,
                         checkpoint_interval=args.checkpoint_interval,
                         progress=lambda line: print(line, flush=True))
    print()
    print(summarize(outcomes))
    return 0 if all(outcome.ok for outcome in outcomes) else 1


def _parse_int_list(text: str) -> Tuple[int, ...]:
    return tuple(int(part) for part in text.split(",") if part.strip())


def _cmd_network(args: argparse.Namespace) -> int:
    from .datalog import as_linear_sirup
    from .network import (
        derive_network,
        find_dataflow_cycle,
        format_dataflow,
        solve_linear_network,
    )
    from .parallel import TupleDiscriminator

    program, _database = _load(args.program, None)
    sirup = as_linear_sirup(program)
    print(f"dataflow graph: {format_dataflow(sirup)}")
    cycle = find_dataflow_cycle(sirup)
    if cycle is not None:
        print(f"cycle at positions {cycle}: a zero-communication choice "
              "exists (Theorem 3) — use scheme example1")
    else:
        print("acyclic: every choice needs some communication; deriving "
              "the minimal network graph")

    if args.positions:
        positions = _parse_int_list(args.positions)
    else:
        positions = cycle if cycle is not None else tuple(
            range(1, sirup.arity + 1))
    v_r = tuple(sirup.body_vars[p - 1] for p in positions)
    v_e = tuple(sirup.exit_vars[p - 1] for p in positions)
    print(f"v(r) = <{', '.join(v.name for v in v_r)}>, "
          f"v(e) = <{', '.join(v.name for v in v_e)}>")

    if args.linear:
        coefficients = _parse_int_list(args.linear)
        network = solve_linear_network(sirup, v_r, v_e, coefficients,
                                       g_range=args.g_range)
        print(f"h = linear form {coefficients} over g values; "
              f"processors {sorted(network.processors)}")
    else:
        h = TupleDiscriminator(len(v_r), g_range=args.g_range)
        network = derive_network(sirup, v_r, v_e, h, g_range=args.g_range)
        print(f"h = (g(a1), ..., g(a{len(v_r)})); "
              f"{len(network.processors)} processors")
    print("minimal network graph (remote edges):")
    for line in network.to_ascii().splitlines():
        print(f"  {line}")
    remote, complete = network.degree_summary()
    print(f"{remote} of {complete} possible channels can ever be used")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from .obs import load_trace
    from .parallel import CostModel

    report = load_trace(args.trace_file)
    cost = CostModel(send_cost=args.send_cost, recv_cost=args.recv_cost,
                     round_overhead=args.round_overhead)
    if args.json:
        print(json.dumps(report.summary(), indent=2, sort_keys=True))
    else:
        print(report.render(cost))
    return 0


def _cmd_bench_run(args: argparse.Namespace) -> int:
    from .bench import matrix_by_name, next_bench_path, run_matrix, write_report

    matrix = matrix_by_name(args.matrix)
    report = run_matrix(matrix, repeats=args.repeats, warmup=args.warmup,
                        baseline=not args.no_baseline,
                        only=args.only or None,
                        progress=lambda line: print(line, flush=True))
    path = args.output if args.output else next_bench_path()
    write_report(report, path)
    scenarios = report["scenarios"]
    print(f"\nwrote {path}: {len(scenarios)} scenario(s), "
          f"schema v{report['schema_version']}")
    speedups = [r for r in scenarios if "kernel_speedup" in r]
    if speedups:
        best = max(speedups, key=lambda r: r["kernel_speedup"])
        print(f"join-kernel speedup vs generic interpreter: best "
              f"{best['kernel_speedup']}x on {best['name']}")
    backends = [r for r in scenarios if "backend_speedup" in r]
    if backends:
        best = max(backends, key=lambda r: r["backend_speedup"])
        print(f"columnar-backend speedup vs tuple backend: best "
              f"{best['backend_speedup']}x on {best['name']}")
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from .bench import compare_reports, load_report

    old = load_report(args.old)
    new = load_report(args.new)
    result = compare_reports(old, new, threshold=args.threshold,
                             counters_only=args.counters_only,
                             force_wall=args.force_wall)
    print(result.render())
    return 0 if result.ok else 1


def _cmd_bench_profile(args: argparse.Namespace) -> int:
    from .bench import profile_scenario

    print(profile_scenario(args.scenario, top=args.top))
    return 0


def _cmd_bench_list(args: argparse.Namespace) -> int:
    from .bench import matrix_by_name

    for matrix_name in ("default", "smoke"):
        print(f"{matrix_name} matrix:")
        for scenario in matrix_by_name(matrix_name):
            print(f"  {scenario.name:32s} {scenario.describe()}")
    return 0


def _cmd_workloads(_args: argparse.Namespace) -> int:
    from .workloads import make_workload, workload_kinds

    for kind in workload_kinds():
        workload = make_workload(kind, 24, seed=0)
        print(f"{kind:16s} {workload.description}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel bottom-up Datalog evaluation via "
                    "discriminating functions (SIGMOD 1990)")
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="evaluate a program sequentially")
    run.add_argument("program", help="Datalog program file")
    run.add_argument("--facts", help="extra facts file")
    run.add_argument("--method", choices=("seminaive", "naive"),
                     default="seminaive")
    run.add_argument("--query", help="print only this derived predicate")
    run.add_argument("--limit", type=int, default=20,
                     help="max facts printed per relation")
    run.add_argument("--stats", action="store_true")
    run.set_defaults(func=_cmd_run)

    par = commands.add_parser("parallel", help="run a program in parallel")
    par.add_argument("program", help="Datalog program file")
    par.add_argument("--facts", help="extra facts file")
    par.add_argument("--scheme", default="example3",
                     choices=("example1", "example2", "example3", "hash",
                              "wolfson", "tradeoff", "general"))
    par.add_argument("-n", "--processors", type=int, default=4)
    par.add_argument("--keep", type=float, default=0.5,
                     help="retention fraction for --scheme tradeoff")
    par.add_argument("--mp", action="store_true",
                     help="use real OS processes instead of the simulator")
    par.add_argument("--sync", choices=("bsp", "ssp"), default="bsp",
                     help="synchronisation regime: bsp = barriered rounds "
                          "(free-running on --mp), ssp = stale-synchronous "
                          "with a bounded staleness lead (see "
                          "docs/EXECUTION_MODES.md)")
    par.add_argument("--staleness", type=int, default=2,
                     help="SSP lead bound: max steps a processor may run "
                          "ahead of the slowest one still holding work "
                          "(>= 1; ignored under --sync bsp)")
    par.add_argument("--detect-termination", action="store_true",
                     help="run Safra's detector (simulator only)")
    par.add_argument("--delay-prob", type=float, default=0.0,
                     help="per-tuple chance of an extra round of message "
                          "delay (simulator only; asynchrony injection)")
    par.add_argument("--seed", type=int, default=0,
                     help="RNG seed for delay injection (simulator only)")
    par.add_argument("--inject-fault", metavar="SPEC", action="append",
                     default=[],
                     help="inject a fault: kill:<tag>@<firings> (e.g. "
                          "kill:p1@50), drop:<prob>, delay:<prob> or "
                          "dup:<prob>, optionally @<src>-><dst>; repeatable")
    par.add_argument("--recovery", choices=("fail", "restart", "checkpoint"),
                     default="fail",
                     help="what to do when a worker dies: fail fast with a "
                          "precise error, restart it from its base fragment "
                          "and replay peer sent-logs, or (--mp only) resume "
                          "it from its last coordinator-held checkpoint and "
                          "replay only unacknowledged suffixes")
    par.add_argument("--max-restarts", type=int, default=3,
                     help="total worker restarts allowed per run before the "
                          "recovery policy gives up (>= 0)")
    par.add_argument("--checkpoint-interval", type=int, default=4,
                     help="bursts between worker checkpoints under "
                          "--recovery checkpoint (>= 1; ignored otherwise)")
    par.add_argument("--ack-deadline", type=float, default=None,
                     help="seconds a live worker may go without acking a "
                          "probe before the run is declared wedged "
                          "(default: derived from processor count and, "
                          "under ssp, the staleness bound)")
    par.add_argument("--trace", metavar="PATH",
                     help="write a JSONL event trace to PATH")
    par.add_argument("--timeout", type=float, default=120.0)
    par.add_argument("--limit", type=int, default=20)
    par.add_argument("--stats", action="store_true")
    par.add_argument("--check", action="store_true",
                     help="verify against sequential evaluation")
    par.set_defaults(func=_cmd_parallel)

    trace = commands.add_parser(
        "trace", help="replay a JSONL trace into timelines and histograms")
    trace.add_argument("trace_file", help="JSONL trace written by "
                                          "`repro parallel --trace`")
    trace.add_argument("--json", action="store_true",
                       help="print the machine-readable summary dict")
    trace.add_argument("--send-cost", type=float, default=1.0,
                       help="cost-model work units per tuple sent")
    trace.add_argument("--recv-cost", type=float, default=1.0,
                       help="cost-model work units per tuple received")
    trace.add_argument("--round-overhead", type=float, default=0.0,
                       help="cost-model fixed per-round overhead")
    trace.set_defaults(func=_cmd_trace)

    net = commands.add_parser("network",
                              help="derive the minimal network graph")
    net.add_argument("program", help="Datalog program file (a linear sirup)")
    net.add_argument("--positions",
                     help="1-based attribute positions for v(r), e.g. 1,2")
    net.add_argument("--linear",
                     help="coefficients of a linear h, e.g. 1,-1,1")
    net.add_argument("--g-range", type=int, default=2)
    net.set_defaults(func=_cmd_network)

    wl = commands.add_parser("workloads", help="list built-in workloads")
    wl.set_defaults(func=_cmd_workloads)

    chaos = commands.add_parser(
        "chaos", help="soak the mp executor under seeded random fault "
                      "schedules; every case must match sequential "
                      "evaluation exactly")
    chaos.add_argument("--seeds", type=int, default=20,
                       help="number of consecutive seeds to soak")
    chaos.add_argument("--start-seed", type=int, default=0,
                       help="first seed (replay a failure by pinning it "
                            "here with --seeds 1)")
    chaos.add_argument("--timeout", type=float, default=60.0,
                       help="per-case wall-clock budget in seconds")
    chaos.add_argument("--max-restarts", type=int, default=4,
                       help="per-case worker restart budget")
    chaos.add_argument("--checkpoint-interval", type=int, default=2,
                       help="bursts between checkpoints on the checkpoint-"
                            "recovery cases")
    chaos.set_defaults(func=_cmd_chaos)

    bench = commands.add_parser(
        "bench", help="measure, compare and profile performance baselines")
    bench_commands = bench.add_subparsers(dest="bench_command", required=True)

    bench_run = bench_commands.add_parser(
        "run", help="run a scenario matrix and write a BENCH_<n>.json")
    bench_run.add_argument("-o", "--output", metavar="PATH",
                           help="report path (default: first unused "
                                "BENCH_<n>.json in the current directory)")
    bench_run.add_argument("--matrix", choices=("default", "smoke"),
                           default="default")
    bench_run.add_argument("--repeats", type=int, default=3,
                           help="measured runs per scenario; wall_seconds "
                                "is their minimum")
    bench_run.add_argument("--warmup", type=int, default=1,
                           help="unmeasured warmup runs per scenario")
    bench_run.add_argument("--only", metavar="SUBSTR", action="append",
                           help="run only scenarios whose name contains "
                                "SUBSTR; repeatable")
    bench_run.add_argument("--no-baseline", action="store_true",
                           help="skip the generic-join-interpreter baseline "
                                "measurement on engine scenarios")
    bench_run.set_defaults(func=_cmd_bench_run)

    bench_compare = bench_commands.add_parser(
        "compare", help="diff two BENCH_*.json reports; non-zero exit on "
                        "regression")
    bench_compare.add_argument("old", help="reference BENCH_*.json")
    bench_compare.add_argument("new", help="candidate BENCH_*.json")
    bench_compare.add_argument("--threshold", type=float, default=0.10,
                               help="relative worsening that counts as a "
                                    "regression (default 0.10 = 10%%)")
    bench_compare.add_argument("--counters-only", action="store_true",
                               help="gate only deterministic counter "
                                    "metrics, never wall-clock (CI mode)")
    bench_compare.add_argument("--force-wall", action="store_true",
                               help="compare wall-clock even across "
                                    "differing machine fingerprints")
    bench_compare.set_defaults(func=_cmd_bench_compare)

    bench_profile = bench_commands.add_parser(
        "profile", help="cProfile one scenario + per-phase obs breakdown")
    bench_profile.add_argument("scenario", help="scenario name "
                                                "(see `repro bench list`)")
    bench_profile.add_argument("--top", type=int, default=20,
                               help="hot functions to print")
    bench_profile.set_defaults(func=_cmd_bench_profile)

    bench_list = bench_commands.add_parser(
        "list", help="list the scenario matrices")
    bench_list.set_defaults(func=_cmd_bench_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
