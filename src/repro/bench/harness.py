"""Experiment harness: one function per paper artefact (see DESIGN.md).

Each function runs the relevant schemes and returns an
:class:`~repro.bench.reporting.ExperimentTable` holding the rows a
reader would compare against the paper's qualitative claims.  The
benchmark modules under ``benchmarks/`` time these and print the
tables; EXPERIMENTS.md records the outcomes.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from ..datalog.analysis import as_linear_sirup
from ..datalog.program import Program
from ..datalog.term import Variable
from ..engine.counters import EvalCounters
from ..engine.evaluator import evaluate
from ..errors import RewriteError
from ..facts.database import Database
from ..network.derivation import derive_network
from ..parallel.discriminating import Discriminator
from ..parallel.metrics import CostModel
from ..parallel.plans import ParallelProgram
from ..parallel.rewrite_general import rewrite_general
from ..parallel.schemes import (
    example1_scheme,
    example2_scheme,
    example3_scheme,
    hash_scheme,
    tradeoff_scheme,
    wolfson_scheme,
)
from ..parallel.simulator import run_parallel
from ..workloads.generator import Workload
from .reporting import ExperimentTable

__all__ = [
    "sequential_baseline",
    "default_schemes",
    "compare_schemes",
    "tradeoff_sweep",
    "redundancy_table",
    "scalability_sweep",
    "general_scheme_table",
    "network_minimality_table",
    "termination_overhead_table",
    "load_balance_table",
]

ProcessorId = Hashable
SchemeFactory = Callable[[Program, Sequence[ProcessorId], Database],
                         ParallelProgram]


def sequential_baseline(workload: Workload) -> Tuple[Database, EvalCounters]:
    """Sequential semi-naive run: the answer and its firing counts."""
    result = evaluate(workload.program, workload.database)
    return result.output, result.counters


def default_schemes(program: Program) -> Dict[str, SchemeFactory]:
    """The paper's Section 4 scheme line-up, as factories.

    Schemes inapplicable to a given sirup (e.g. Example 1 on an acyclic
    dataflow graph) are skipped by :func:`compare_schemes`.
    """
    return {
        "example1 (no comm)": lambda p, procs, db: example1_scheme(p, procs),
        "example2 (broadcast)": lambda p, procs, db: example2_scheme(p, procs, db),
        "example3 (p2p)": lambda p, procs, db: example3_scheme(p, procs),
        "section3 hash": lambda p, procs, db: hash_scheme(p, procs),
        "wolfson (redundant)": lambda p, procs, db: wolfson_scheme(p, procs),
    }


def compare_schemes(workload: Workload, processors: Sequence[ProcessorId],
                    schemes: Optional[Dict[str, SchemeFactory]] = None,
                    cost: Optional[CostModel] = None) -> ExperimentTable:
    """T1: Examples 1–3 (plus friends) side by side on one workload."""
    output, seq_counters = sequential_baseline(workload)
    seq_firings = seq_counters.total_firings()
    schemes = schemes if schemes is not None else default_schemes(
        workload.program)

    table = ExperimentTable(
        experiment="T1",
        title=(f"scheme comparison on {workload.name} "
               f"({len(tuple(processors))} processors, "
               f"seq firings={seq_firings})"),
        headers=("scheme", "ok", "firings", "redundancy", "sent",
                 "self", "broadcast", "channels", "base storage",
                 "replication", "rounds", "speedup"),
    )
    for label, factory in schemes.items():
        try:
            program = factory(workload.program, processors, workload.database)
        except RewriteError as error:
            table.add_note(f"{label}: skipped ({error})")
            continue
        result = run_parallel(program, workload.database)
        metrics = result.metrics
        answers_match = all(
            result.relation(pred).as_set() == output.relation(pred).as_set()
            for pred in program.derived)
        storage = ", ".join(
            f"{name}:{kind}" for name, kind
            in sorted(program.fragmentation.requirements.items()))
        table.add_row(
            label,
            "yes" if answers_match else "NO",
            metrics.total_firings(),
            metrics.redundancy_vs(seq_firings),
            metrics.total_sent(),
            metrics.total_self_delivered(),
            metrics.broadcast_tuples,
            len(metrics.used_channels()),
            storage,
            round(program.replication_factor(workload.database), 2),
            metrics.rounds,
            round(metrics.speedup_vs(
                seq_counters.total_firings() + seq_counters.probes, cost), 2),
        )
    return table


def tradeoff_sweep(workload: Workload, processors: Sequence[ProcessorId],
                   fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
                   salt: int = 0) -> ExperimentTable:
    """T2: the Section 6 redundancy/communication spectrum."""
    _output, seq_counters = sequential_baseline(workload)
    seq_firings = seq_counters.total_firings()
    table = ExperimentTable(
        experiment="T2",
        title=(f"Section 6 trade-off on {workload.name} "
               f"({len(tuple(processors))} processors, "
               f"seq firings={seq_firings})"),
        headers=("keep fraction", "firings", "redundancy", "sent",
                 "self", "rounds"),
    )
    for fraction in fractions:
        program = tradeoff_scheme(workload.program, processors, fraction,
                                  salt=salt)
        result = run_parallel(program, workload.database)
        metrics = result.metrics
        table.add_row(
            fraction,
            metrics.total_firings(),
            metrics.redundancy_vs(seq_firings),
            metrics.total_sent(),
            metrics.total_self_delivered(),
            metrics.rounds,
        )
    table.add_note("keep=0.0 is the non-redundant Section 3 scheme; "
                   "keep=1.0 is Wolfson's communication-free scheme")
    return table


def redundancy_table(workloads: Sequence[Workload],
                     processors: Sequence[ProcessorId]) -> ExperimentTable:
    """T3: Theorems 2/6 — shared-h schemes never exceed sequential firings."""
    table = ExperimentTable(
        experiment="T3",
        title=f"non-redundancy across workloads "
              f"({len(tuple(processors))} processors)",
        headers=("workload", "seq firings", "scheme", "par firings",
                 "redundancy", "ok"),
    )
    for workload in workloads:
        _output, seq_counters = sequential_baseline(workload)
        seq_firings = seq_counters.total_firings()
        candidates: List[Tuple[str, ParallelProgram]] = []
        try:
            sirup = as_linear_sirup(workload.program)
            candidates.append(
                ("section3 hash", hash_scheme(sirup, processors)))
            candidates.append(
                ("example3", example3_scheme(sirup, processors)))
        except Exception:
            pass
        candidates.append(
            ("section7 general", rewrite_general(workload.program,
                                                 tuple(processors))))
        for label, program in candidates:
            result = run_parallel(program, workload.database)
            redundancy = result.metrics.redundancy_vs(seq_firings)
            table.add_row(workload.name, seq_firings, label,
                          result.metrics.total_firings(), redundancy,
                          "yes" if redundancy <= 0 else "NO")
    return table


def scalability_sweep(workload: Workload, processor_counts: Sequence[int],
                      factory: Optional[SchemeFactory] = None,
                      cost: Optional[CostModel] = None,
                      label: str = "example3") -> ExperimentTable:
    """T4: modelled speedup versus processor count."""
    if factory is None:
        factory = lambda p, procs, db: example3_scheme(p, procs)
    _output, seq_counters = sequential_baseline(workload)
    seq_work = seq_counters.total_firings() + seq_counters.probes
    table = ExperimentTable(
        experiment="T4",
        title=f"scalability of {label} on {workload.name} "
              f"(seq work={seq_work})",
        headers=("N", "rounds", "sent", "makespan", "speedup",
                 "efficiency", "load balance"),
    )
    for count in processor_counts:
        processors = tuple(range(count))
        program = factory(workload.program, processors, workload.database)
        result = run_parallel(program, workload.database)
        metrics = result.metrics
        span = metrics.makespan(cost)
        speedup = metrics.speedup_vs(seq_work, cost)
        table.add_row(count, metrics.rounds, metrics.total_sent(),
                      round(span, 1), round(speedup, 2),
                      round(speedup / count, 2),
                      round(metrics.load_balance(), 3))
    return table


def general_scheme_table(workloads: Sequence[Workload],
                         processors: Sequence[ProcessorId]) -> ExperimentTable:
    """T6: the Section 7 scheme on non-linear / multi-relation programs."""
    table = ExperimentTable(
        experiment="T6",
        title=f"general scheme (Section 7) "
              f"({len(tuple(processors))} processors)",
        headers=("workload", "ok", "seq firings", "par firings",
                 "sent", "broadcast", "rounds"),
    )
    for workload in workloads:
        output, seq_counters = sequential_baseline(workload)
        program = rewrite_general(workload.program, tuple(processors))
        result = run_parallel(program, workload.database)
        answers_match = all(
            result.relation(pred).as_set() == output.relation(pred).as_set()
            for pred in program.derived)
        table.add_row(workload.name,
                      "yes" if answers_match else "NO",
                      seq_counters.total_firings(),
                      result.metrics.total_firings(),
                      result.metrics.total_sent(),
                      result.metrics.broadcast_tuples,
                      result.metrics.rounds)
    return table


def network_minimality_table(program: Program, v_r: Sequence[Variable],
                             v_e: Sequence[Variable], h: Discriminator,
                             database_factory: Callable[[int], Database],
                             trials: int = 20) -> ExperimentTable:
    """T7: derived network graph vs channels observed on random inputs.

    Soundness: every observed channel must be a derived edge.
    Minimality evidence: the fraction of derived remote edges actually
    witnessed by some random input (1.0 = every edge exercised).
    """
    from ..parallel.rewrite_linear import rewrite_linear_sirup

    derived = derive_network(program, v_r, v_e, h)
    observed: set = set()
    sound = True
    for trial in range(trials):
        database = database_factory(trial)
        parallel_program = rewrite_linear_sirup(
            program, derived.processors, v_r, v_e, h,
            scheme="network-check")
        result = run_parallel(parallel_program, database)
        used = result.metrics.used_channels()
        observed |= used
        if not derived.covers(used):
            sound = False
    derived_remote = derived.edges(include_self=False)
    coverage = (len(observed & derived_remote) / len(derived_remote)
                if derived_remote else 1.0)
    table = ExperimentTable(
        experiment="T7",
        title=f"network minimality over {trials} random inputs",
        headers=("derived remote edges", "observed edges", "sound",
                 "witness coverage"),
    )
    table.add_row(len(derived_remote), len(observed & derived_remote),
                  "yes" if sound else "NO", round(coverage, 2))
    spurious = observed - derived_remote
    if spurious:
        table.add_note(f"SPURIOUS channels observed: {sorted(spurious)!r}")
    return table


def termination_overhead_table(workload: Workload,
                               processor_counts: Sequence[int]
                               ) -> ExperimentTable:
    """T9: Safra's detector — control messages vs data messages."""
    table = ExperimentTable(
        experiment="T9",
        title=f"termination detection overhead on {workload.name}",
        headers=("N", "data tuples sent", "control messages",
                 "detection delay (rounds)"),
    )
    for count in processor_counts:
        program = example3_scheme(workload.program, tuple(range(count)))
        result = run_parallel(program, workload.database,
                              detect_termination=True)
        metrics = result.metrics
        table.add_row(count, metrics.total_sent(),
                      metrics.control_messages, metrics.detection_rounds)
    return table


def load_balance_table(workload: Workload,
                       processors: Sequence[ProcessorId],
                       schemes: Optional[Dict[str, SchemeFactory]] = None
                       ) -> ExperimentTable:
    """T8 (extension): work distribution per scheme."""
    schemes = schemes if schemes is not None else default_schemes(
        workload.program)
    table = ExperimentTable(
        experiment="T8",
        title=f"load balance on {workload.name} "
              f"({len(tuple(processors))} processors)",
        headers=("scheme", "min work", "max work", "jain index",
                 "utilisation"),
    )
    for label, factory in schemes.items():
        try:
            program = factory(workload.program, processors, workload.database)
        except RewriteError:
            continue
        result = run_parallel(program, workload.database)
        metrics = result.metrics
        loads = [metrics.firings.get(p, 0) + metrics.probes.get(p, 0)
                 for p in metrics.processors]
        table.add_row(label, min(loads), max(loads),
                      round(metrics.load_balance(), 3),
                      round(metrics.utilisation(), 3))
    return table
