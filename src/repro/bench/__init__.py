"""Benchmark harness: experiment runners and table rendering."""

from .harness import (
    compare_schemes,
    default_schemes,
    general_scheme_table,
    load_balance_table,
    network_minimality_table,
    redundancy_table,
    scalability_sweep,
    sequential_baseline,
    termination_overhead_table,
    tradeoff_sweep,
)
from .reporting import ExperimentTable, render_table

__all__ = [
    "ExperimentTable",
    "compare_schemes",
    "default_schemes",
    "general_scheme_table",
    "load_balance_table",
    "network_minimality_table",
    "redundancy_table",
    "render_table",
    "scalability_sweep",
    "sequential_baseline",
    "termination_overhead_table",
    "tradeoff_sweep",
]
