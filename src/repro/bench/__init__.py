"""Benchmark harness: claim tables, perf baselines and rendering.

Two complementary halves:

* :mod:`repro.bench.harness` — the paper's *qualitative* claim tables
  (firings, tuples sent) behind ``benchmarks/``;
* :mod:`repro.bench.perf` / :mod:`repro.bench.scenarios` /
  :mod:`repro.bench.compare` — the *wall-clock* performance baseline
  behind ``repro bench`` (see docs/PERFORMANCE.md).
"""

from .compare import ComparisonResult, MetricDelta, compare_reports
from .harness import (
    compare_schemes,
    default_schemes,
    general_scheme_table,
    load_balance_table,
    network_minimality_table,
    redundancy_table,
    scalability_sweep,
    sequential_baseline,
    termination_overhead_table,
    tradeoff_sweep,
)
from .perf import (
    BENCH_SCHEMA_VERSION,
    load_report,
    machine_fingerprint,
    next_bench_path,
    profile_scenario,
    run_matrix,
    run_scenario,
    write_report,
)
from .reporting import ExperimentTable, render_table
from .scenarios import (
    PerfScenario,
    default_matrix,
    find_scenario,
    matrix_by_name,
    smoke_matrix,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "ComparisonResult",
    "ExperimentTable",
    "MetricDelta",
    "PerfScenario",
    "compare_reports",
    "compare_schemes",
    "default_matrix",
    "default_schemes",
    "find_scenario",
    "general_scheme_table",
    "load_balance_table",
    "load_report",
    "machine_fingerprint",
    "matrix_by_name",
    "network_minimality_table",
    "next_bench_path",
    "profile_scenario",
    "redundancy_table",
    "render_table",
    "run_matrix",
    "run_scenario",
    "scalability_sweep",
    "sequential_baseline",
    "smoke_matrix",
    "termination_overhead_table",
    "tradeoff_sweep",
    "write_report",
]
