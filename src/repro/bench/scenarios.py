"""The fixed, seeded scenario matrix measured by ``repro bench``.

A :class:`PerfScenario` names one measurable configuration: an
executor (sequential engine, simulated cluster, or real
multiprocessing), a seeded workload, and — for the parallel executors —
a parallelisation scheme and processor count.  Scenario names are
stable identifiers: they key the records inside ``BENCH_*.json`` files,
so `repro bench compare` can match measurements across commits, and
they are what ``repro bench profile <name>`` accepts.

Two matrices are exported: :func:`default_matrix` (the full trajectory
measured into ``BENCH_<n>.json`` at the repo root) and
:func:`smoke_matrix` (a reduced matrix small enough for a CI job).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..datalog.program import Program
from ..errors import ReproError
from ..facts.database import Database
from ..parallel.plans import ParallelProgram
from ..workloads.generator import Workload, make_workload

__all__ = [
    "PerfScenario",
    "build_parallel_program",
    "default_matrix",
    "find_scenario",
    "smoke_matrix",
]


@dataclass(frozen=True)
class PerfScenario:
    """One named, reproducible measurement configuration.

    Attributes:
        name: stable identifier (keys the ``BENCH_*.json`` records).
        kind: ``"engine"`` (sequential), ``"simulator"`` or ``"mp"``.
        workload: workload kind for :func:`~repro.workloads.make_workload`.
        size: workload size parameter.
        seed: workload RNG seed.
        method: evaluation method for ``kind="engine"``.
        scheme: parallelisation scheme for the parallel kinds.
        processors: processor count for the parallel kinds.
        sync: synchronisation regime for the parallel kinds (``"bsp"``
            or ``"ssp"``; defaults keep pre-SSP records comparable).
        staleness: SSP lead bound (meaningful only with
            ``sync="ssp"``).
        backend: fact-store backend (``"tuple"`` or ``"columnar"``;
            see :mod:`repro.facts.backend`).  Columnar scenarios are
            additionally measured under the tuple backend so the
            speedup is recorded next to the number it produced.
        kernel: join kernel pinned for the measurement (a
            :data:`repro.engine.plan.JOIN_KERNELS` name), or ``None``
            to inherit the process default — inheriting is what lets a
            ``REPRO_JOIN_KERNEL`` CI leg apply matrix-wide.  Scenarios
            pinning a non-compiled kernel are additionally measured
            under the compiled kernel in the same record
            (``kernel_wall_seconds`` / ``kernel_speedup``), with the
            counter-identity gate applied to the pair.
        recovery: optional recovery policy for ``kind="mp"``
            (``"restart"`` or ``"checkpoint"``); enables the injected
            kill below, so the scenario measures the *recovery* path.
            ``None`` (the default) keeps pre-recovery records
            comparable.
        kill_at: firing count at which the injected kill SIGKILLs the
            victim worker (processor tag ``"1"``); only meaningful
            with ``recovery``.
        checkpoint_interval: bursts between checkpoints for
            ``recovery="checkpoint"`` scenarios.
    """

    name: str
    kind: str
    workload: str
    size: int
    seed: int = 0
    method: Optional[str] = None
    scheme: Optional[str] = None
    processors: Optional[int] = None
    sync: str = "bsp"
    staleness: int = 2
    backend: str = "tuple"
    kernel: Optional[str] = None
    recovery: Optional[str] = None
    kill_at: Optional[int] = None
    checkpoint_interval: int = 2

    def build_workload(self) -> Workload:
        """Materialise the seeded workload."""
        return make_workload(self.workload, self.size, seed=self.seed)

    def describe(self) -> str:
        """One-line summary for listings."""
        if self.kind == "engine":
            detail = f"method={self.method}"
        else:
            detail = f"scheme={self.scheme} n={self.processors}"
        if self.backend != "tuple":
            detail += f" backend={self.backend}"
        if self.kernel is not None:
            detail += f" kernel={self.kernel}"
        if self.recovery is not None:
            detail += f" recovery={self.recovery} kill@{self.kill_at}"
        return (f"{self.kind:9s} {self.workload}-{self.size} "
                f"seed={self.seed} {detail}")


def build_parallel_program(scenario: PerfScenario, program: Program,
                           database: Database) -> ParallelProgram:
    """Rewrite ``program`` under the scenario's scheme."""
    from ..parallel import (
        example1_scheme,
        example2_scheme,
        example3_scheme,
        hash_scheme,
        rewrite_general,
    )

    processors = tuple(range(scenario.processors or 1))
    scheme = scenario.scheme
    if scheme == "example1":
        return example1_scheme(program, processors)
    if scheme == "example2":
        return example2_scheme(program, processors, database)
    if scheme == "example3":
        return example3_scheme(program, processors)
    if scheme == "hash":
        return hash_scheme(program, processors)
    if scheme == "general":
        return rewrite_general(program, processors)
    raise ReproError(f"unknown perf scenario scheme {scheme!r}")


def _engine(name: str, workload: str, size: int, method: str,
            seed: int = 0, backend: str = "tuple",
            kernel: Optional[str] = None) -> PerfScenario:
    return PerfScenario(name=name, kind="engine", workload=workload,
                        size=size, seed=seed, method=method, backend=backend,
                        kernel=kernel)


def _sim(name: str, workload: str, size: int, scheme: str, processors: int,
         seed: int = 0, sync: str = "bsp", staleness: int = 2,
         backend: str = "tuple") -> PerfScenario:
    return PerfScenario(name=name, kind="simulator", workload=workload,
                        size=size, seed=seed, scheme=scheme,
                        processors=processors, sync=sync, staleness=staleness,
                        backend=backend)


def _mp(name: str, workload: str, size: int, scheme: str, processors: int,
        seed: int = 0, backend: str = "tuple",
        kernel: Optional[str] = None,
        recovery: Optional[str] = None,
        kill_at: Optional[int] = None) -> PerfScenario:
    return PerfScenario(name=name, kind="mp", workload=workload, size=size,
                        seed=seed, scheme=scheme, processors=processors,
                        backend=backend, kernel=kernel, recovery=recovery,
                        kill_at=kill_at)


def default_matrix() -> Tuple[PerfScenario, ...]:
    """The full measured trajectory: engine × workloads, simulator and
    mp × schemes × 2–8 processors, the skewed BSP/SSP study, the
    columnar-backend and vectorized-kernel variants of the hottest
    scenarios, plus the paired restart-vs-checkpoint recovery study
    (32 scenarios)."""
    return (
        # Sequential engine: the join kernel's direct exposure.
        _engine("engine-seminaive-chain-256", "chain", 256, "seminaive"),
        _engine("engine-seminaive-dag-150", "dag", 150, "seminaive"),
        _engine("engine-seminaive-grid-144", "grid", 144, "seminaive"),
        _engine("engine-seminaive-samegen-96", "same-generation", 96,
                "seminaive"),
        _engine("engine-seminaive-cycle-48", "cycle", 48, "seminaive"),
        _engine("engine-naive-chain-96", "chain", 96, "naive"),
        # Simulated cluster: every Section 4/7 scheme, scaling example3.
        _sim("sim-example1-chain-128-n4", "chain", 128, "example1", 4),
        _sim("sim-example2-tree-128-n4", "tree", 128, "example2", 4),
        _sim("sim-example3-dag-150-n2", "dag", 150, "example3", 2),
        _sim("sim-example3-dag-150-n4", "dag", 150, "example3", 4),
        _sim("sim-example3-dag-150-n8", "dag", 150, "example3", 8),
        _sim("sim-general-nldag-96-n4", "nonlinear-dag", 96, "general", 4),
        _sim("sim-general-samegen-96-n2", "same-generation", 96, "general", 2),
        # Skewed load-balancing study (EXPERIMENTS.md T11): the same
        # power-law workload under barriers and under two staleness
        # bounds — utilisation and ticks are the counters to watch.
        _sim("sim-bsp-hash-skewed-96-n4", "skewed", 96, "hash", 4, seed=3),
        _sim("sim-ssp2-hash-skewed-96-n4", "skewed", 96, "hash", 4, seed=3,
             sync="ssp", staleness=2),
        _sim("sim-ssp4-hash-skewed-96-n4", "skewed", 96, "hash", 4, seed=3,
             sync="ssp", staleness=4),
        # Real OS processes: spawn + queue + termination-detection cost.
        _mp("mp-example3-dag-96-n2", "dag", 96, "example3", 2),
        _mp("mp-example3-dag-96-n4", "dag", 96, "example3", 4),
        _mp("mp-general-samegen-64-n2", "same-generation", 64, "general", 2),
        # Broadcast-heavy mp: example2 sends every derived tuple to every
        # peer — the scenarios most exposed to the batched send path.
        _mp("mp-example2-tree-64-n2", "tree", 64, "example2", 2),
        _mp("mp-example2-tree-64-n4", "tree", 64, "example2", 4),
        # Columnar fact backend (docs/DATA_PLANE.md): the same seeded
        # workloads under ``REPRO_FACT_BACKEND=columnar``.  Each is
        # A/B-measured against the tuple backend in one record
        # (``backend_wall_seconds`` / ``backend_speedup``); the mp pair
        # additionally exercises the packed column wire format, whose
        # win shows up in ``channel_bytes``.
        _engine("engine-seminaive-chain-256-columnar", "chain", 256,
                "seminaive", backend="columnar"),
        _engine("engine-seminaive-grid-144-columnar", "grid", 144,
                "seminaive", backend="columnar"),
        _sim("sim-example3-dag-150-n4-columnar", "dag", 150, "example3", 4,
             backend="columnar"),
        _mp("mp-example3-dag-96-n4-columnar", "dag", 96, "example3", 4,
            backend="columnar"),
        _mp("mp-example2-tree-64-n4-columnar", "tree", 64, "example2", 4,
            backend="columnar"),
        # Vectorized join kernel (docs/DATA_PLANE.md): the transitive
        # closure and the skewed power-law DAG under the batch probe
        # path.  Each record carries the compiled-kernel A/B
        # (``kernel_wall_seconds`` / ``kernel_speedup``) with the
        # counter-identity gate; the mp pair additionally exercises the
        # packed-column ingest path end to end.
        _engine("engine-seminaive-chain-256-vectorized", "chain", 256,
                "seminaive", backend="columnar", kernel="vectorized"),
        _engine("engine-seminaive-skewed-96-vectorized", "skewed", 96,
                "seminaive", seed=3, backend="columnar",
                kernel="vectorized"),
        _mp("mp-example3-dag-96-n4-vectorized", "dag", 96, "example3", 4,
            backend="columnar", kernel="vectorized"),
        _mp("mp-example2-tree-64-n4-vectorized", "tree", 64, "example2", 4,
            backend="columnar", kernel="vectorized"),
        # Recovery study (docs/FAULT_TOLERANCE.md): the same workload,
        # the same mid-run SIGKILL, two recovery policies.  The paired
        # records expose recovery_replayed_facts / recovery_seconds, so
        # the checkpoint path's claim — strictly less replay than
        # respawn-from-base — is a gated number, not prose.  The chain
        # workload runs in many small bursts, the regime checkpointing
        # targets: the victim has shipped several snapshots before the
        # late kill lands, so peers' sent-logs are mostly truncated.
        _mp("mp-recovery-restart-chain-96-n3", "chain", 96, "example3", 3,
            recovery="restart", kill_at=400),
        _mp("mp-recovery-checkpoint-chain-96-n3", "chain", 96, "example3", 3,
            recovery="checkpoint", kill_at=400),
    )


def smoke_matrix() -> Tuple[PerfScenario, ...]:
    """The reduced CI matrix (10 scenarios): one scenario per
    executor/scheme corner, sized for seconds, not minutes."""
    return (
        _engine("engine-seminaive-chain-96", "chain", 96, "seminaive"),
        _engine("engine-seminaive-dag-64", "dag", 64, "seminaive"),
        _sim("sim-example2-tree-48-n2", "tree", 48, "example2", 2),
        _sim("sim-example3-dag-64-n2", "dag", 64, "example3", 2),
        _sim("sim-general-nldag-48-n2", "nonlinear-dag", 48, "general", 2),
        _sim("sim-ssp2-hash-skewed-48-n4", "skewed", 48, "hash", 4, seed=3,
             sync="ssp", staleness=2),
        _mp("mp-example3-chain-48-n2", "chain", 48, "example3", 2),
        # One columnar-backend corner per executor, kept tiny.
        _engine("engine-seminaive-chain-96-columnar", "chain", 96,
                "seminaive", backend="columnar"),
        _mp("mp-example3-chain-48-n2-columnar", "chain", 48, "example3", 2,
            backend="columnar"),
        # One vectorized-kernel corner, A/B-gated against compiled.
        _engine("engine-seminaive-chain-96-vectorized", "chain", 96,
                "seminaive", backend="columnar", kernel="vectorized"),
    )


_MATRICES = {"default": default_matrix, "smoke": smoke_matrix}


def matrix_by_name(name: str) -> Tuple[PerfScenario, ...]:
    """Return a named matrix (``"default"`` or ``"smoke"``)."""
    try:
        return _MATRICES[name]()
    except KeyError:
        raise ReproError(
            f"unknown scenario matrix {name!r}; "
            f"known: {sorted(_MATRICES)}") from None


def find_scenario(name: str,
                  matrices: Sequence[str] = ("default", "smoke")
                  ) -> PerfScenario:
    """Look a scenario up by exact name across the named matrices."""
    for matrix_name in matrices:
        for scenario in matrix_by_name(matrix_name):
            if scenario.name == name:
                return scenario
    known = sorted({s.name for m in matrices for s in matrix_by_name(m)})
    raise ReproError(
        f"unknown perf scenario {name!r}; known scenarios: {known}")
