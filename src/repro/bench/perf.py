"""Wall-clock performance measurement: the ``repro bench`` backend.

This module turns the scenario matrix of :mod:`repro.bench.scenarios`
into a schema-versioned, machine-readable performance baseline — the
``BENCH_<n>.json`` trajectory at the repository root.  The measurement
discipline (documented in ``docs/PERFORMANCE.md``):

* **seeded inputs** — every scenario names a workload generator seed,
  so counter metrics (firings, tuples sent, output facts) are exactly
  reproducible and can be regression-gated in CI;
* **warmup + best-of-N** — each scenario runs ``warmup`` unmeasured
  times (index builds, allocator warmup, imports), then ``repeats``
  measured times; ``wall_seconds`` is the minimum (least-noise
  estimator for a deterministic computation);
* **machine fingerprint** — every report embeds enough platform data
  to tell whether two wall-clock numbers are comparable at all;
* **before/after in one report** — engine scenarios are additionally
  measured with the generic (unspecialized) join interpreter, so the
  compiled kernel's speedup is recorded alongside the number it
  produced (``baseline_wall_seconds`` / ``kernel_speedup``); columnar
  scenarios are likewise A/B-measured against the tuple backend
  (``backend_wall_seconds`` / ``backend_speedup``), aborting if any
  deterministic counter diverges between backends; kernel-pinned
  scenarios (``scenario.kernel``) are A/B-measured against the
  compiled kernel instead (``kernel_wall_seconds`` /
  ``kernel_speedup``), under the same counter-identity abort.

Profiling (``repro bench profile``) wraps one scenario run in
:mod:`cProfile` and pairs the hot-function list with a per-phase event
breakdown from :class:`repro.obs.AggregateSink` — counters only, never
raw event streams (the bench↔obs boundary).
"""

from __future__ import annotations

import cProfile
import io
import json
import os
import platform
import pstats
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..engine import evaluate, join_kernel, set_join_kernel
from ..errors import ReproError
from ..facts.backend import fact_backend, set_fact_backend
from ..obs import AggregateSink, Tracer
from .scenarios import (
    PerfScenario,
    build_parallel_program,
    default_matrix,
    find_scenario,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "load_report",
    "machine_fingerprint",
    "next_bench_path",
    "profile_scenario",
    "run_matrix",
    "run_scenario",
    "write_report",
]

BENCH_SCHEMA_VERSION = 1
BENCH_FORMAT = "repro.bench.perf"


def machine_fingerprint() -> Dict[str, object]:
    """Identify the machine a report was measured on.

    Wall-clock numbers from reports with different fingerprints are not
    comparable; counter metrics always are.
    """
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
        "join_kernel": join_kernel(),
        "fact_backend": fact_backend(),
    }


def _peak_rss_kb() -> Optional[int]:
    """Process-wide peak resident set size, in KiB.

    ``ru_maxrss`` is a monotone high-water mark for the whole process,
    so per-scenario values are upper bounds that only ever grow within
    one ``repro bench run`` invocation (documented in
    docs/PERFORMANCE.md).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if platform.system() == "Darwin":  # pragma: no cover - reported in bytes
        return usage // 1024
    return usage


def _facts_total(output, predicates) -> int:
    return sum(len(output.relation(p)) for p in predicates)


def _run_engine_once(scenario: PerfScenario, workload) -> Tuple[float, Dict]:
    started = time.perf_counter()
    result = evaluate(workload.program, workload.database,
                      method=scenario.method or "seminaive")
    wall = time.perf_counter() - started
    counters = {
        "firings": result.counters.total_firings(),
        "probes": result.counters.probes,
        "iterations": result.counters.iterations,
        "facts_out": _facts_total(result.output,
                                  workload.program.derived_predicates),
    }
    return wall, counters


def _run_simulator_once(scenario: PerfScenario, workload,
                        parallel_program) -> Tuple[float, Dict]:
    from ..parallel.simulator import run_parallel

    started = time.perf_counter()
    result = run_parallel(parallel_program, workload.database,
                          sync=scenario.sync, staleness=scenario.staleness)
    wall = time.perf_counter() - started
    metrics = result.metrics
    counters = {
        "firings": metrics.total_firings(),
        "tuples_sent": metrics.total_sent(),
        "rounds": metrics.rounds,
        "channel_messages": metrics.total_channel_messages(),
        "channel_bytes": metrics.total_channel_bytes(),
        "facts_out": _facts_total(result.output, parallel_program.derived),
        # The modelled-time / load-balance counters of the BSP-vs-SSP
        # study; all deterministic in the simulator.
        "ticks": metrics.ticks,
        "idle": metrics.total_idle(),
        "stalled": metrics.total_stalled(),
        "utilisation": round(metrics.mean_utilisation(), 4),
        "max_lag": metrics.max_staleness_lag,
    }
    return wall, counters


def _run_mp_once(scenario: PerfScenario, workload,
                 parallel_program) -> Tuple[float, Dict]:
    from ..parallel.mp import run_multiprocessing

    faults = None
    kwargs: Dict[str, object] = {}
    if scenario.recovery is not None:
        from ..parallel.faults import build_fault_plan

        # The recovery study: SIGKILL worker "1" at a fixed firing
        # count, then measure what getting back to the exact answer
        # costs under the scenario's policy.
        faults = build_fault_plan([f"kill:1@{scenario.kill_at}"])
        kwargs = {"recovery": scenario.recovery,
                  "checkpoint_interval": scenario.checkpoint_interval}
    started = time.perf_counter()
    result = run_multiprocessing(parallel_program, workload.database,
                                 sync=scenario.sync,
                                 staleness=scenario.staleness,
                                 faults=faults, **kwargs)
    wall = time.perf_counter() - started
    metrics = result.metrics
    counters = {
        "firings": metrics.total_firings(),
        "tuples_sent": metrics.total_sent(),
        # Coalesced data messages and the deterministic size model;
        # message counts are timing-dependent for mp (burst boundaries
        # move), so compare gates them with a threshold, not exactly.
        "channel_messages": metrics.total_channel_messages(),
        "channel_bytes": metrics.total_channel_bytes(),
        "facts_out": _facts_total(result.output, parallel_program.derived),
    }
    if scenario.recovery is not None:
        counters["restarts"] = result.restarts
        # Replay volume moves with where the death lands relative to
        # burst/checkpoint boundaries; compare gates it with mp slack.
        counters["recovery_replayed_facts"] = metrics.recovery_replayed_facts
        # Wall-clock-derived: recorded for the record, never gated.
        counters["recovery_seconds"] = metrics.summary()["recovery_seconds"]
        if scenario.recovery == "checkpoint":
            counters["checkpoint_bytes"] = metrics.checkpoint_bytes
            counters["log_truncated"] = metrics.log_truncated
    return wall, counters


def _make_runner(scenario: PerfScenario):
    """Build the workload under the *current* fact backend and return a
    zero-argument ``run_once`` closure for it.

    Rebuilt per backend: the workload database itself is made of
    backend-specific relations, so the tuple-backend A/B baseline must
    regenerate it rather than reuse the columnar one.
    """
    workload = scenario.build_workload()
    if scenario.kind == "engine":
        return lambda: _run_engine_once(scenario, workload)
    if scenario.kind in ("simulator", "mp"):
        parallel_program = build_parallel_program(
            scenario, workload.program, workload.database)
        runner = (_run_simulator_once if scenario.kind == "simulator"
                  else _run_mp_once)
        return lambda: runner(scenario, workload, parallel_program)
    raise ReproError(f"unknown scenario kind {scenario.kind!r}")


# mp counters that move with burst boundaries (coalescing and the
# >=8-fact packing threshold are batch-size dependent): excluded from
# the backend-equivalence check, gated with a threshold by compare.
_MP_TIMING_COUNTERS = ("channel_messages", "channel_bytes")


def run_scenario(scenario: PerfScenario, repeats: int = 3, warmup: int = 1,
                 baseline: bool = True) -> Dict[str, object]:
    """Measure one scenario; return its ``BENCH_*.json`` record.

    Args:
        scenario: what to run.
        repeats: measured runs; ``wall_seconds`` is their minimum.
        warmup: unmeasured runs executed first.
        baseline: for engine scenarios, also measure the generic join
            interpreter and record ``baseline_wall_seconds`` and
            ``kernel_speedup``; for columnar-backend scenarios, also
            measure the tuple backend and record
            ``backend_wall_seconds`` and ``backend_speedup`` (aborting
            if any deterministic counter diverges between backends).
            Kernel-pinned scenarios (``scenario.kernel`` set to a
            non-compiled kernel) are instead A/B-measured against the
            compiled kernel on the same backend — ``kernel_speedup``
            then means compiled/pinned — and skip the generic and
            tuple-backend baselines, which would quadruple their cost
            while duplicating numbers the unpinned sibling scenarios
            already record.
    """
    if repeats < 1:
        raise ReproError(f"repeats must be >= 1, got {repeats}")
    previous_backend = set_fact_backend(scenario.backend)
    previous_kernel = (set_join_kernel(scenario.kernel)
                       if scenario.kernel is not None else None)
    try:
        run_once = _make_runner(scenario)

        for _ in range(warmup):
            run_once()
        walls: List[float] = []
        counters: Dict[str, object] = {}
        for _ in range(repeats):
            wall, counters = run_once()
            walls.append(wall)

        record: Dict[str, object] = {
            "name": scenario.name,
            "kind": scenario.kind,
            "workload": f"{scenario.workload}-{scenario.size}",
            "seed": scenario.seed,
            "method": scenario.method,
            "scheme": scenario.scheme,
            "processors": scenario.processors,
            "sync": scenario.sync,
            "staleness": (scenario.staleness if scenario.sync == "ssp"
                          else None),
            "backend": scenario.backend,
            "kernel": scenario.kernel,
            "repeats": repeats,
            "warmup": warmup,
            "wall_seconds": round(min(walls), 6),
            "wall_seconds_all": [round(w, 6) for w in walls],
            "counters": counters,
            "peak_rss_kb": _peak_rss_kb(),
        }

        if baseline and scenario.kind == "engine" and scenario.kernel is None:
            previous = set_join_kernel("generic")
            try:
                baseline_walls = []
                for _ in range(max(1, repeats)):
                    wall, base_counters = run_once()
                    baseline_walls.append(wall)
            finally:
                set_join_kernel(previous)
            if base_counters != counters:
                raise ReproError(
                    f"join kernel diverged from the generic interpreter on "
                    f"{scenario.name}: {counters} != {base_counters}")
            base = min(baseline_walls)
            record["baseline_wall_seconds"] = round(base, 6)
            record["kernel_speedup"] = round(base / min(walls), 2)

        if baseline and scenario.kernel not in (None, "compiled"):
            # Kernel A/B: the same scenario, same backend, under the
            # compiled kernel — the counter-identity contract makes any
            # deterministic divergence a bug, not noise.  mp scenarios
            # spawn workers under whichever kernel the coordinator has
            # pinned, so the A/B covers the whole cluster.
            previous = set_join_kernel("compiled")
            try:
                kernel_walls = []
                compiled_counters: Dict[str, object] = {}
                for _ in range(max(1, repeats)):
                    wall, compiled_counters = run_once()
                    kernel_walls.append(wall)
            finally:
                set_join_kernel(previous)
            if scenario.kind == "mp":
                mine = {key: value for key, value in counters.items()
                        if key not in _MP_TIMING_COUNTERS}
                theirs = {key: value
                          for key, value in compiled_counters.items()
                          if key not in _MP_TIMING_COUNTERS}
            else:
                mine, theirs = counters, compiled_counters
            if mine != theirs:
                raise ReproError(
                    f"{scenario.kernel} kernel diverged from the compiled "
                    f"kernel on {scenario.name}: {mine} != {theirs}")
            base = min(kernel_walls)
            record["kernel_wall_seconds"] = round(base, 6)
            record["kernel_speedup"] = round(base / min(walls), 2)
    finally:
        if previous_kernel is not None:
            set_join_kernel(previous_kernel)
        set_fact_backend(previous_backend)

    if baseline and scenario.backend != "tuple" and scenario.kernel is None:
        # Backend A/B: the same scenario under the tuple backend, in the
        # same record (docs/PERFORMANCE.md speedup-claim checklist).
        previous = set_fact_backend("tuple")
        try:
            tuple_run = _make_runner(scenario)
            backend_walls = []
            tuple_counters: Dict[str, object] = {}
            for _ in range(max(1, repeats)):
                wall, tuple_counters = tuple_run()
                backend_walls.append(wall)
        finally:
            set_fact_backend(previous)
        if scenario.kind == "mp":
            mine = {key: value for key, value in counters.items()
                    if key not in _MP_TIMING_COUNTERS}
            theirs = {key: value for key, value in tuple_counters.items()
                      if key not in _MP_TIMING_COUNTERS}
            record["tuple_channel_bytes"] = tuple_counters["channel_bytes"]
            record["channel_bytes_ratio"] = round(
                counters["channel_bytes"] / tuple_counters["channel_bytes"],
                4)
        else:
            mine, theirs = counters, tuple_counters
        if mine != theirs:
            raise ReproError(
                f"columnar backend diverged from the tuple backend on "
                f"{scenario.name}: {mine} != {theirs}")
        base = min(backend_walls)
        record["backend_wall_seconds"] = round(base, 6)
        record["backend_speedup"] = round(base / min(walls), 2)
    return record


def run_matrix(matrix: Optional[Sequence[PerfScenario]] = None,
               repeats: int = 3, warmup: int = 1, baseline: bool = True,
               only: Optional[Sequence[str]] = None,
               progress=None) -> Dict[str, object]:
    """Measure a matrix of scenarios; return the full report dict.

    Args:
        matrix: scenarios to run (default: :func:`default_matrix`).
        repeats: measured runs per scenario.
        warmup: unmeasured runs per scenario.
        baseline: record the generic-interpreter baseline on engine
            scenarios.
        only: optional scenario-name substrings to filter the matrix.
        progress: optional ``callable(str)`` for per-scenario progress.
    """
    scenarios = tuple(matrix if matrix is not None else default_matrix())
    if only:
        scenarios = tuple(s for s in scenarios
                          if any(token in s.name for token in only))
        if not scenarios:
            raise ReproError(
                f"no scenario matches any of {list(only)!r}")
    records = []
    for scenario in scenarios:
        if progress is not None:
            progress(f"running {scenario.name} ({scenario.describe()})")
        records.append(run_scenario(scenario, repeats=repeats, warmup=warmup,
                                    baseline=baseline))
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench_format": BENCH_FORMAT,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "machine": machine_fingerprint(),
        "settings": {"repeats": repeats, "warmup": warmup,
                     "baseline": baseline},
        "scenarios": records,
    }


def write_report(report: Dict[str, object], path: str) -> None:
    """Serialise ``report`` to ``path`` as stable, diffable JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_report(path: str) -> Dict[str, object]:
    """Load and validate a ``BENCH_*.json`` report.

    Raises:
        ReproError: if the file is not a bench report or its schema
            version is unknown.
    """
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    if not isinstance(report, dict) or report.get("bench_format") != BENCH_FORMAT:
        raise ReproError(f"{path} is not a {BENCH_FORMAT} report")
    version = report.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        raise ReproError(
            f"{path} has schema_version {version!r}; this build reads "
            f"version {BENCH_SCHEMA_VERSION}")
    return report


def next_bench_path(directory: str = ".") -> str:
    """Return the first unused ``BENCH_<n>.json`` path in ``directory``."""
    number = 1
    while os.path.exists(os.path.join(directory, f"BENCH_{number}.json")):
        number += 1
    return os.path.join(directory, f"BENCH_{number}.json")


def _render_phase_breakdown(sink: AggregateSink) -> str:
    """Render an AggregateSink's counters as a per-phase breakdown."""
    lines = ["per-phase event counts (repro.obs aggregate):"]
    snapshot = sink.as_dict()
    by_kind = snapshot.get("by_kind", {})
    for kind in sorted(by_kind):
        lines.append(f"  {kind:24s} {by_kind[kind]}")
    by_round = snapshot.get("by_round", {})
    fired = {key: count for key, count in by_round.items()
             if key.startswith("rule_fired@")}
    if fired:
        lines.append("firings per round:")
        for key in sorted(fired, key=lambda k: int(k.rsplit("@", 1)[1])):
            round_number = key.rsplit("@", 1)[1]
            lines.append(f"  round {round_number:>4s}  {fired[key]}")
    return "\n".join(lines)


def profile_scenario(name: str, top: int = 20) -> str:
    """Profile one scenario run; return the rendered report.

    Combines cProfile's hot-function list (sorted by cumulative time)
    with the per-phase counter breakdown of an
    :class:`~repro.obs.AggregateSink` attached to the run.  For
    ``kind="mp"`` scenarios only the coordinator process is profiled;
    worker CPU time shows up in the phase breakdown, not the profile.
    """
    scenario = find_scenario(name)
    previous_backend = set_fact_backend(scenario.backend)
    try:
        return _profile_scenario(scenario, top)
    finally:
        set_fact_backend(previous_backend)


def _profile_scenario(scenario: PerfScenario, top: int) -> str:
    workload = scenario.build_workload()
    sink = AggregateSink()
    tracer = Tracer(sink)

    if scenario.kind == "engine":
        def run():
            evaluate(workload.program, workload.database,
                     method=scenario.method or "seminaive", tracer=tracer)
    else:
        parallel_program = build_parallel_program(
            scenario, workload.program, workload.database)
        if scenario.kind == "simulator":
            from ..parallel.simulator import run_parallel

            def run():
                run_parallel(parallel_program, workload.database,
                             tracer=tracer, sync=scenario.sync,
                             staleness=scenario.staleness)
        else:
            from ..parallel.mp import run_multiprocessing

            def run():
                run_multiprocessing(parallel_program, workload.database,
                                    tracer=tracer, sync=scenario.sync,
                                    staleness=scenario.staleness)

    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    run()
    profiler.disable()
    wall = time.perf_counter() - started

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)
    parts = [
        f"profile of {scenario.name} ({scenario.describe()}) — "
        f"{wall:.3f}s wall",
        _render_phase_breakdown(sink),
        f"top {top} functions by cumulative time:",
        buffer.getvalue().rstrip(),
    ]
    tracer.close()
    return "\n\n".join(parts)
