"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

__all__ = ["ExperimentTable", "render_table"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    string_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        for index, text in enumerate(row):
            widths[index] = max(widths[index], len(text))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        header.ljust(widths[index]) for index, header in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in string_rows:
        lines.append(" | ".join(
            text.ljust(widths[index]) for index, text in enumerate(row)))
    return "\n".join(lines)


@dataclass
class ExperimentTable:
    """A titled table plus free-form notes — one paper artefact.

    Attributes:
        experiment: the experiment id from DESIGN.md (e.g. ``"T1"``).
        title: what the table shows.
        headers: column names.
        rows: data rows.
        notes: bullet remarks (paper claim vs measured outcome).
    """

    experiment: str
    title: str
    headers: Tuple[str, ...]
    rows: List[Tuple[object, ...]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append a data row."""
        self.rows.append(tuple(values))

    def add_note(self, note: str) -> None:
        """Append a remark."""
        self.notes.append(note)

    def render(self) -> str:
        """Render the table, its id/title and the notes."""
        parts = [render_table(self.headers, self.rows,
                              title=f"[{self.experiment}] {self.title}")]
        for note in self.notes:
            parts.append(f"  * {note}")
        return "\n".join(parts)

    def column(self, header: str) -> List[object]:
        """Extract one column by header name (for assertions)."""
        index = list(self.headers).index(header)
        return [row[index] for row in self.rows]
