"""Comparison of two ``BENCH_*.json`` reports: the regression gate.

``repro bench compare old.json new.json`` matches scenarios by name,
computes per-metric deltas and flags regressions against a configurable
threshold.  Two metric classes are treated differently:

* **wall_seconds** — noisy, machine-dependent; compared only when both
  reports carry the same machine fingerprint (or ``--force-wall``) and
  gated by the relative threshold;
* **counter metrics** (firings, probes, tuples sent, output facts) —
  deterministic for seeded scenarios, so *any* increase beyond the
  threshold is a genuine algorithmic regression regardless of machine.
  CI gates on these (``--counters-only``).

A scenario present in the old report but missing from the new one is a
coverage regression and fails the gate too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .reporting import render_table

__all__ = ["ComparisonResult", "MetricDelta", "compare_reports"]

# Counter metrics where *more* is worse.  `facts_out` increasing means
# the answer changed — flagged in both directions via exact mismatch.
# `channel_messages`/`channel_bytes` gate the batched communication
# path: a creeping increase means batches are fragmenting.  They are
# threshold-gated, not exact, because mp burst boundaries (and hence
# message counts) are timing-dependent; reports predating the channel
# counters simply skip them (absent on either side -> not compared).
# `restarts`/`recovery_replayed_facts` gate the recovery scenarios: a
# restart-count increase means the fault schedule changed, a replay
# blow-up means sent-log truncation stopped working.
_COST_COUNTERS = ("firings", "probes", "iterations", "tuples_sent", "rounds",
                  "channel_messages", "channel_bytes", "ticks", "stalled",
                  "restarts", "recovery_replayed_facts")
_EXACT_COUNTERS = ("facts_out",)

# mp burst boundaries move run to run, so an mp scenario's message count
# wobbles around its batching factor (observed ±20% on the smoke
# scenario) while a genuine batching regression (per-tuple sends) blows
# it up by an order of magnitude.  Gate with generous slack instead of
# the tight threshold; simulator message counts are deterministic and
# get no slack.
_TIMING_DEPENDENT = ("channel_messages", "recovery_replayed_facts")
_MP_TIMING_SLACK = 1.0  # extra allowed fraction on top of the threshold


@dataclass(frozen=True)
class MetricDelta:
    """One (scenario, metric) comparison row."""

    scenario: str
    metric: str
    old: float
    new: float
    delta_fraction: float
    regressed: bool

    @property
    def status(self) -> str:
        if self.regressed:
            return "REGRESSED"
        if self.delta_fraction < -0.005:
            return "improved"
        return "ok"


@dataclass
class ComparisonResult:
    """Outcome of comparing two bench reports.

    Attributes:
        deltas: one row per compared (scenario, metric).
        regressions: human-readable description of every failure.
        notes: non-fatal remarks (skipped wall compare, new scenarios).
    """

    deltas: List[MetricDelta] = field(default_factory=list)
    regressions: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        rows = [
            (d.scenario, d.metric, _fmt(d.old), _fmt(d.new),
             f"{d.delta_fraction:+.1%}", d.status)
            for d in self.deltas
        ]
        parts = [render_table(
            ("scenario", "metric", "old", "new", "delta", "status"), rows)]
        for note in self.notes:
            parts.append(f"  * {note}")
        if self.regressions:
            parts.append("")
            parts.append(f"{len(self.regressions)} regression(s):")
            for regression in self.regressions:
                parts.append(f"  ! {regression}")
        else:
            parts.append("")
            parts.append("no regressions")
        return "\n".join(parts)


def _fmt(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:.4f}"


def _delta(old: float, new: float) -> float:
    if old == 0:
        return 0.0 if new == 0 else float("inf")
    return (new - old) / old


def compare_reports(old: Dict[str, object], new: Dict[str, object],
                    threshold: float = 0.10,
                    counters_only: bool = False,
                    force_wall: bool = False) -> ComparisonResult:
    """Compare two loaded bench reports.

    Args:
        old: the reference report (loaded ``BENCH_*.json`` dict).
        new: the candidate report.
        threshold: relative increase beyond which a cost metric is a
            regression (0.10 = 10% worse).
        counters_only: skip wall-clock comparison entirely (the CI
            gate: counters are deterministic, clocks are not).
        force_wall: compare wall-clock even across differing machine
            fingerprints.
    """
    result = ComparisonResult()
    old_records = {r["name"]: r for r in old.get("scenarios", ())}
    new_records = {r["name"]: r for r in new.get("scenarios", ())}

    compare_wall = not counters_only
    if compare_wall and old.get("machine") != new.get("machine") \
            and not force_wall:
        result.notes.append(
            "machine fingerprints differ — wall-clock not compared "
            "(pass force_wall/--force-wall to override)")
        compare_wall = False

    for name in sorted(old_records):
        old_record = old_records[name]
        new_record = new_records.get(name)
        if new_record is None:
            result.regressions.append(
                f"{name}: scenario missing from the new report")
            continue

        if compare_wall:
            old_wall = float(old_record["wall_seconds"])
            new_wall = float(new_record["wall_seconds"])
            fraction = _delta(old_wall, new_wall)
            regressed = fraction > threshold
            result.deltas.append(MetricDelta(
                scenario=name, metric="wall_seconds", old=old_wall,
                new=new_wall, delta_fraction=fraction, regressed=regressed))
            if regressed:
                result.regressions.append(
                    f"{name}: wall_seconds {old_wall:.4f} -> {new_wall:.4f} "
                    f"({fraction:+.1%} > +{threshold:.0%})")

        old_counters = old_record.get("counters", {})
        new_counters = new_record.get("counters", {})
        for metric in _COST_COUNTERS:
            if metric not in old_counters or metric not in new_counters:
                continue
            limit = threshold
            if (metric in _TIMING_DEPENDENT
                    and old_record.get("kind") == "mp"):
                limit = threshold + _MP_TIMING_SLACK
            old_value = float(old_counters[metric])
            new_value = float(new_counters[metric])
            fraction = _delta(old_value, new_value)
            regressed = fraction > limit
            result.deltas.append(MetricDelta(
                scenario=name, metric=metric, old=old_value, new=new_value,
                delta_fraction=fraction, regressed=regressed))
            if regressed:
                result.regressions.append(
                    f"{name}: {metric} {int(old_value)} -> {int(new_value)} "
                    f"({fraction:+.1%} > +{limit:.0%})")
        for metric in _EXACT_COUNTERS:
            if metric not in old_counters or metric not in new_counters:
                continue
            old_value = float(old_counters[metric])
            new_value = float(new_counters[metric])
            fraction = _delta(old_value, new_value)
            regressed = old_value != new_value
            result.deltas.append(MetricDelta(
                scenario=name, metric=metric, old=old_value, new=new_value,
                delta_fraction=fraction, regressed=regressed))
            if regressed:
                result.regressions.append(
                    f"{name}: {metric} changed {int(old_value)} -> "
                    f"{int(new_value)} (the answer itself differs)")

    extra = sorted(set(new_records) - set(old_records))
    if extra:
        result.notes.append(
            f"new scenarios not in the reference: {', '.join(extra)}")
    return result
