"""Columnar relation storage: interned-id attribute columns over a row dict.

:class:`ColumnarRelation` is a drop-in :class:`~repro.facts.relation.Relation`
with a different storage layout, selectable via
``set_fact_backend("columnar")`` / ``REPRO_FACT_BACKEND=columnar`` (see
:mod:`repro.facts.backend`).  The design is hybrid:

* The **row store** is an insertion-ordered dict of value tuples — the
  canonical fact set.  Membership, iteration, add/discard and all the
  per-fact Relation API run against it directly, so single-fact
  operations cost the same as the tuple backend and the equivalence
  argument (docs/DATA_PLANE.md) is by construction: both backends hold
  the same value tuples.
* The **columns** are flat ``array('q')`` buffers of interned constant
  ids (:mod:`repro.facts.interning`), one per attribute position, plus
  a parallel raw-value column cache (:meth:`ColumnarRelation.
  value_columns`) serving the vectorized join kernel's full-scan seed.
  Both are *caches* over the row store, materialised lazily on first
  batch access — engine paths that never touch them pay nothing beyond
  the dict insert.  Additive mutations (:meth:`~ColumnarRelation.add`,
  :meth:`~ColumnarRelation.update`, :meth:`~ColumnarRelation.
  add_new_many`) **append to** materialised columns instead of
  invalidating them, so a growing relation (a transitive closure
  accumulating across rounds) keeps its batch layout warm at O(new
  facts) per round; only removals (:meth:`~ColumnarRelation.discard`,
  :meth:`~ColumnarRelation.clear`) invalidate wholesale.

:class:`ColumnarIndex` extends :class:`~repro.facts.index.HashIndex`
with per-bucket **gathered key columns**: ``bucket_column(key, pos)``
returns the position-``pos`` values of every fact in the bucket as one
flat list, cached until the bucket next changes.  The compiled join
kernel's columnar drain (:mod:`repro.engine.plan`) and the router's
column partition path are built on these gathers: probing a static
relation (e.g. ``edge`` in a transitive closure) re-uses the same
gathered column across every round instead of re-walking fact tuples.

numpy, when importable, is used only as an optional export format
(:meth:`ColumnarRelation.column_array`); the stdlib ``array`` module is
the baseline layout and all hot paths work without numpy.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .index import HashIndex
from .interning import global_interner
from .relation import Fact, Relation

try:  # pragma: no cover - exercised only where numpy is installed
    import numpy as _numpy
except ImportError:  # pragma: no cover
    _numpy = None

__all__ = ["ColumnarIndex", "ColumnarRelation"]

_EMPTY_COLUMN: Tuple[object, ...] = ()


class ColumnarIndex(HashIndex):
    """HashIndex with cached per-bucket column gathers.

    The bucket structure (insertion-ordered dict of facts per key) is
    inherited unchanged, so lookup semantics and iteration order match
    :class:`HashIndex` exactly.  On top of it, :meth:`bucket_column`
    memoises the flat list of position-``p`` values for a bucket; any
    mutation of that bucket drops its cached gathers.
    """

    __slots__ = ("_gathers",)

    def __init__(self, positions: Sequence[int]) -> None:
        super().__init__(positions)
        # key -> {position -> gathered value list}
        self._gathers: Dict[Tuple[object, ...], Dict[int, List[object]]] = {}

    def add(self, fact: Fact) -> None:
        if self._gathers:
            self._gathers.pop(tuple(fact[p] for p in self.positions), None)
        super().add(fact)

    def add_many(self, facts: Iterable[Fact]) -> None:
        if self._gathers:
            gathers = self._gathers
            positions = self.positions
            facts = list(facts)
            for fact in facts:
                gathers.pop(tuple(fact[p] for p in positions), None)
        super().add_many(facts)

    def discard(self, fact: Fact) -> None:
        if self._gathers:
            self._gathers.pop(tuple(fact[p] for p in self.positions), None)
        super().discard(fact)

    def bucket_column(self, key: Tuple[object, ...],
                      position: int) -> Sequence[object]:
        """Return the ``position`` values of every fact under ``key``.

        The gather is cached per (key, position) until the bucket is
        next mutated; order matches bucket iteration order (insertion
        order), so ``zip(bucket_column(k, p1), bucket_column(k, p2))``
        walks the bucket's facts positionally.
        """
        per_bucket = self._gathers.get(key)
        if per_bucket is None:
            per_bucket = self._gathers[key] = {}
        column = per_bucket.get(position)
        if column is None:
            bucket = self._buckets.get(key)
            if bucket is None:
                return _EMPTY_COLUMN
            column = per_bucket[position] = [fact[position] for fact in bucket]
        return column


class ColumnarRelation(Relation):
    """Relation whose batch layout is interned-id columns.

    Observable behaviour is identical to :class:`Relation` (the
    backend-equivalence property tests in ``tests/facts`` and
    ``tests/engine`` pin this); the differences are the storage layout
    and the extra batch accessors (:meth:`columns`,
    :meth:`column_array`) plus :class:`ColumnarIndex` indexes.
    """

    __slots__ = ("_columns", "_value_columns")

    def __init__(self, name: str, arity: int,
                 facts: Optional[Iterable[Sequence[object]]] = None) -> None:
        if arity < 0:
            raise ValueError("arity must be non-negative")
        self.name = name
        self.arity = arity
        # Insertion-ordered row store; values are ignored (dict-as-set).
        self._facts: Dict[Fact, None] = {}
        self._indexes: Dict[Tuple[int, ...], HashIndex] = {}
        self._columns: Optional[List[array]] = None
        self._value_columns: Optional[List[List[object]]] = None
        if facts is not None:
            self.update(facts)

    # -- mutation (additions append to materialised columns; removals
    # -- invalidate them) ---------------------------------------------

    def _append_rows(self, fresh: Iterable[Fact]) -> None:
        """Extend materialised column caches with new row-store rows.

        Keeping the caches warm costs O(fresh) here versus an O(all
        facts) rebuild on the next batch access — the difference
        between O(new) and O(total) per semi-naive round for a growing
        relation.  No-op while the caches are cold.
        """
        cols = self._columns
        if cols is not None:
            intern = global_interner().intern
            for fact in fresh:
                for col, value in zip(cols, fact):
                    col.append(intern(value))
        vcols = self._value_columns
        if vcols is not None:
            for fact in fresh:
                for col, value in zip(vcols, fact):
                    col.append(value)

    def add(self, fact: Sequence[object]) -> bool:
        tup = tuple(fact)
        if len(tup) != self.arity:
            raise ValueError(
                f"relation {self.name}/{self.arity} cannot store {tup!r}")
        if tup in self._facts:
            return False
        self._facts[tup] = None
        if self._columns is not None or self._value_columns is not None:
            self._append_rows((tup,))
        for index in self._indexes.values():
            index.add(tup)
        return True

    def update(self, facts: Iterable[Sequence[object]]) -> int:
        arity = self.arity
        present = self._facts
        fresh: Dict[Fact, None] = {}
        for fact in facts:
            tup = tuple(fact)
            if len(tup) != arity:
                raise ValueError(
                    f"relation {self.name}/{self.arity} cannot store {tup!r}")
            if tup not in present:
                fresh[tup] = None
        if not fresh:
            return 0
        present.update(fresh)
        self._append_rows(fresh)
        for index in self._indexes.values():
            index.add_many(fresh)
        return len(fresh)

    def add_new_many(self, facts: Iterable[Sequence[object]]) -> List[Fact]:
        arity = self.arity
        present = self._facts
        fresh: List[Fact] = []
        for fact in facts:
            tup = tuple(fact)
            if len(tup) != arity:
                raise ValueError(
                    f"relation {self.name}/{self.arity} cannot store {tup!r}")
            if tup in present:
                continue
            present[tup] = None
            fresh.append(tup)
        if fresh:
            self._append_rows(fresh)
            for index in self._indexes.values():
                index.add_many(fresh)
        return fresh

    def discard(self, fact: Sequence[object]) -> bool:
        tup = tuple(fact)
        if tup not in self._facts:
            return False
        del self._facts[tup]
        self._columns = None
        self._value_columns = None
        for index in self._indexes.values():
            index.discard(tup)
        return True

    def clear(self) -> None:
        self._facts.clear()
        self._indexes.clear()
        self._columns = None
        self._value_columns = None

    def copy(self, name: Optional[str] = None) -> "ColumnarRelation":
        clone = ColumnarRelation(
            name if name is not None else self.name, self.arity)
        clone._facts = dict(self._facts)
        # Carry warm column caches: the clone holds the same rows, so a
        # fresh cache would rebuild to exactly these values.  Copied,
        # not shared — the clone appends independently.
        if self._columns is not None:
            clone._columns = [array("q", col) for col in self._columns]
        if self._value_columns is not None:
            clone._value_columns = [list(col) for col in self._value_columns]
        return clone

    # -- indexing -----------------------------------------------------

    def index_on(self, positions: Sequence[int]) -> ColumnarIndex:
        key = tuple(positions)
        index = self._indexes.get(key)
        if index is None:
            index = ColumnarIndex(key)
            index.add_many(self._facts)
            self._indexes[key] = index
        return index

    # -- columnar accessors -------------------------------------------

    def columns(self) -> List[array]:
        """Return the per-attribute interned-id columns.

        One ``array('q')`` per position, row-aligned with iteration
        order of the relation.  Materialised lazily and cached until
        the next mutation; ids decode through the process interner
        (:func:`repro.facts.interning.global_interner`).
        """
        cols = self._columns
        if cols is None:
            intern = global_interner().intern
            cols = [array("q") for _ in range(self.arity)]
            appends = [col.append for col in cols]
            for fact in self._facts:
                for append, value in zip(appends, fact):
                    append(intern(value))
            self._columns = cols
        return cols

    def value_columns(self) -> List[List[object]]:
        """Return the per-attribute **raw value** columns, cached.

        One list per position, row-aligned with relation iteration
        order; materialised lazily like :meth:`columns` and likewise
        append-maintained by additive mutations.  This is the
        vectorized join kernel's full-scan seed: a delta relation built
        once per round hands its whole batch over without re-walking
        fact tuples.  Callers must treat the returned lists as
        read-only — they are shared with every other caller.
        """
        cols = self._value_columns
        if cols is None:
            cols = [[] for _ in range(self.arity)]
            appends = [col.append for col in cols]
            for fact in self._facts:
                for append, value in zip(appends, fact):
                    append(value)
            self._value_columns = cols
        return cols

    def column_values(self, position: int) -> List[object]:
        """Gather the raw (non-interned) values at ``position``."""
        if self._value_columns is not None:
            return list(self._value_columns[position])
        return [fact[position] for fact in self._facts]

    def column_array(self, position: int):
        """Return the id column at ``position`` as a numpy array.

        Optional accelerator hook: zero-copy view over the ``array('q')``
        buffer when numpy is importable, the stdlib array otherwise.
        """
        column = self.columns()[position]
        if _numpy is None:
            return column
        return _numpy.frombuffer(column, dtype=_numpy.int64)
