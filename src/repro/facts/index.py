"""Hash indexes over argument-position subsets of a relation."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["HashIndex"]

Fact = Tuple[object, ...]
_EMPTY: Tuple[Fact, ...] = ()


class HashIndex:
    """Maps a key — the values at ``positions`` — to the facts holding it."""

    __slots__ = ("positions", "_buckets")

    def __init__(self, positions: Sequence[int]) -> None:
        self.positions: Tuple[int, ...] = tuple(positions)
        self._buckets: Dict[Tuple[object, ...], List[Fact]] = {}

    def key_of(self, fact: Fact) -> Tuple[object, ...]:
        """Extract the index key of ``fact``."""
        return tuple(fact[p] for p in self.positions)

    def add(self, fact: Fact) -> None:
        """Index ``fact`` (caller guarantees it is not yet indexed)."""
        self._buckets.setdefault(self.key_of(fact), []).append(fact)

    def discard(self, fact: Fact) -> None:
        """Remove ``fact`` from its bucket if present."""
        bucket = self._buckets.get(self.key_of(fact))
        if bucket is None:
            return
        try:
            bucket.remove(fact)
        except ValueError:
            return
        if not bucket:
            del self._buckets[self.key_of(fact)]

    def lookup(self, key: Tuple[object, ...]) -> Iterable[Fact]:
        """Return the facts whose indexed positions equal ``key``."""
        return self._buckets.get(key, _EMPTY)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def __repr__(self) -> str:
        return f"HashIndex(positions={self.positions}, buckets={len(self._buckets)})"
