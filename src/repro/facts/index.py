"""Hash indexes over argument-position subsets of a relation.

Buckets are insertion-ordered dicts keyed by fact, so membership tests,
:meth:`HashIndex.discard` and bucket pruning are O(1) instead of the
O(bucket) ``list.remove`` a list-backed bucket would need, and
``len(index)`` is a maintained counter instead of an O(buckets) sum.
Iteration over a bucket yields facts in insertion order, which keeps
index scans deterministic for equal insertion sequences.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

__all__ = ["HashIndex"]

Fact = Tuple[object, ...]
_EMPTY: Tuple[Fact, ...] = ()
_MISSING = object()


class HashIndex:
    """Maps a key — the values at ``positions`` — to the facts holding it."""

    __slots__ = ("positions", "_buckets", "_size")

    def __init__(self, positions: Sequence[int]) -> None:
        self.positions: Tuple[int, ...] = tuple(positions)
        self._buckets: Dict[Tuple[object, ...], Dict[Fact, None]] = {}
        self._size = 0

    def key_of(self, fact: Fact) -> Tuple[object, ...]:
        """Extract the index key of ``fact``."""
        return tuple(fact[p] for p in self.positions)

    def add(self, fact: Fact) -> None:
        """Index ``fact``; adding an already-indexed fact is a no-op."""
        key = tuple(fact[p] for p in self.positions)
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = {fact: None}
        elif fact in bucket:
            return
        else:
            bucket[fact] = None
        self._size += 1

    def add_many(self, facts: Iterable[Fact]) -> None:
        """Index many facts at once (duplicates are no-ops, as in :meth:`add`).

        The bulk path exists so per-round delta ingestion derives each
        index key exactly once in a tight loop instead of paying one
        :meth:`add` call per fact.
        """
        buckets = self._buckets
        positions = self.positions
        count = 0
        for fact in facts:
            key = tuple(fact[p] for p in positions)
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = {fact: None}
            elif fact in bucket:
                continue
            else:
                bucket[fact] = None
            count += 1
        self._size += count

    def discard(self, fact: Fact) -> None:
        """Remove ``fact`` from its bucket if present."""
        key = tuple(fact[p] for p in self.positions)
        bucket = self._buckets.get(key)
        if bucket is None or bucket.pop(fact, _MISSING) is _MISSING:
            return
        self._size -= 1
        if not bucket:
            del self._buckets[key]

    def lookup(self, key: Tuple[object, ...]) -> Iterable[Fact]:
        """Return the facts whose indexed positions equal ``key``."""
        return self._buckets.get(key, _EMPTY)

    def bucket_column(self, key: Tuple[object, ...],
                      position: int) -> Sequence[object]:
        """Gather the ``position`` values of every fact under ``key``.

        Order matches bucket iteration order (insertion order), so
        zipping two gathers walks the bucket's facts positionally.  The
        base implementation rebuilds the gather on every call; the
        columnar backend's :class:`~repro.facts.columnar.ColumnarIndex`
        overrides it with a per-bucket cache.  The vectorized join
        kernel (:mod:`repro.engine.plan`) calls this uniformly, so both
        backends share one batch probe path.
        """
        bucket = self._buckets.get(key)
        if bucket is None:
            return _EMPTY
        return [fact[position] for fact in bucket]

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        return f"HashIndex(positions={self.positions}, buckets={len(self._buckets)})"
