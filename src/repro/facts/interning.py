"""Process-wide interning of ground constants to dense integer ids.

The columnar backend (:mod:`repro.facts.columnar`) stores relation
attributes as flat arrays of small ints rather than Python object
tuples.  The mapping from constants to those ints lives here: a single
append-only :class:`ConstantInterner` per process assigns each distinct
constant the next dense id, so every column of every relation shares
one dictionary and ids stay small enough for ``array('q')`` storage.

Two properties matter for correctness (see docs/DATA_PLANE.md):

* **Ids are process-local.**  Two workers interning the same constants
  in different orders get different ids, so ids must never cross a
  process boundary or feed a discriminating function — routing and the
  mp wire format always work on (or reconstruct) the raw values.
* **Interning is total and injective** for hashable constants:
  ``value_of(intern(v)) is v`` for the first instance interned, and
  equal values always map to the same id.  That makes decoding a plain
  list index and the columnar relation's row/column views equivalent.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Sequence, Tuple

__all__ = ["ConstantInterner", "global_interner", "reset_global_interner"]


class ConstantInterner:
    """Append-only bijection between hashable constants and dense ints."""

    __slots__ = ("_ids", "_values")

    def __init__(self) -> None:
        self._ids: dict = {}
        self._values: List[Hashable] = []

    def intern(self, value: Hashable) -> int:
        """Return the dense id of ``value``, assigning the next one if new."""
        ids = self._ids
        ident = ids.get(value)
        if ident is None:
            ident = len(self._values)
            ids[value] = ident
            self._values.append(value)
        return ident

    def intern_many(self, values: Iterable[Hashable]) -> List[int]:
        """Intern a batch of values; returns their ids in order."""
        intern = self.intern
        return [intern(value) for value in values]

    def value_of(self, ident: int) -> Hashable:
        """Decode an id back to its constant.  Raises IndexError if unknown."""
        if ident < 0:
            raise IndexError(f"unknown interned id {ident}")
        return self._values[ident]

    def decode_many(self, idents: Iterable[int]) -> List[Hashable]:
        """Decode a batch of ids; raises IndexError on any unknown id."""
        values = self._values
        return [values[i] for i in idents]

    def intern_fact(self, fact: Sequence[Hashable]) -> Tuple[int, ...]:
        """Intern every position of a fact tuple."""
        intern = self.intern
        return tuple(intern(value) for value in fact)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: Hashable) -> bool:
        return value in self._ids

    def __repr__(self) -> str:
        return f"ConstantInterner(size={len(self._values)})"


_GLOBAL = ConstantInterner()


def global_interner() -> ConstantInterner:
    """Return the process-wide interner used by the columnar backend."""
    return _GLOBAL


def reset_global_interner() -> ConstantInterner:
    """Replace the process-wide interner with a fresh one (tests only).

    Existing :class:`~repro.facts.columnar.ColumnarRelation` column
    caches may hold ids from the old interner; callers must drop such
    relations before resetting.  Returns the new interner.
    """
    global _GLOBAL
    _GLOBAL = ConstantInterner()
    return _GLOBAL
