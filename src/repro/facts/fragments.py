"""Fragmentation policies for base relations.

The paper's schemes differ in what they require of the base data:

* Example 1 (Wolfson–Silberschatz) needs every base relation *shared*
  (or replicated) by all processors;
* Example 2 (Valduriez–Khoshafian) works on an *arbitrary* horizontal
  partition — the partition itself defines the discriminating function;
* Example 3 and the general scheme use *hash partitions*: processor
  ``i`` holds the fragment ``{t : h(v(r) positions of t) = i}``.

A policy maps a relation to per-processor fragments and reports its
kind, so rewriters can emit a :class:`FragmentationPlan` stating the
storage requirement each scheme imposes (a first-class result of the
paper's trade-off analysis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Mapping, Sequence, Tuple

from .backend import make_relation
from .relation import Fact, Relation

__all__ = [
    "SHARED",
    "FragmentationPolicy",
    "SharedFragmentation",
    "HashFragmentation",
    "ArbitraryFragmentation",
    "FragmentationPlan",
]

ProcessorId = Hashable

SHARED = "shared"
HASH_PARTITIONED = "hash-partitioned"
ARBITRARY = "arbitrary-partition"


class FragmentationPolicy:
    """Base class for fragmentation policies."""

    kind: str = "abstract"

    def fragment(self, relation: Relation,
                 processors: Sequence[ProcessorId]) -> Dict[ProcessorId, Relation]:
        """Return ``{processor: fragment relation}``."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable summary for reports."""
        return self.kind


class SharedFragmentation(FragmentationPolicy):
    """Every processor accesses the whole relation (shared/replicated)."""

    kind = SHARED

    def fragment(self, relation: Relation,
                 processors: Sequence[ProcessorId]) -> Dict[ProcessorId, Relation]:
        return {proc: relation.copy() for proc in processors}


class HashFragmentation(FragmentationPolicy):
    """Disjoint fragments assigned by a function of selected positions.

    Args:
        positions: argument positions whose values feed ``assign``.
        assign: maps the projected value tuple to a processor id.
    """

    kind = HASH_PARTITIONED

    def __init__(self, positions: Sequence[int],
                 assign: Callable[[Tuple[object, ...]], ProcessorId]) -> None:
        self.positions = tuple(positions)
        self.assign = assign

    def owner(self, fact: Fact) -> ProcessorId:
        """Return the processor owning ``fact``."""
        return self.assign(tuple(fact[p] for p in self.positions))

    def fragment(self, relation: Relation,
                 processors: Sequence[ProcessorId]) -> Dict[ProcessorId, Relation]:
        fragments = {proc: make_relation(relation.name, relation.arity)
                     for proc in processors}
        known = set(processors)
        for fact in relation:
            owner = self.owner(fact)
            if owner not in known:
                raise ValueError(
                    f"assign() produced unknown processor {owner!r} for {fact!r}")
            fragments[owner].add(fact)
        return fragments

    def describe(self) -> str:
        return f"{self.kind} on positions {self.positions}"


class ArbitraryFragmentation(FragmentationPolicy):
    """An explicit, caller-provided horizontal partition.

    This is Example 2's setting: the partition is arbitrary, and the
    discriminating function is *defined by* it (``h(a, b) = i`` iff
    ``(a, b) ∈ par^i``).

    Args:
        assignment: maps each fact to its owning processor.  Facts not
            in the mapping raise at fragmentation time.
    """

    kind = ARBITRARY

    def __init__(self, assignment: Mapping[Fact, ProcessorId]) -> None:
        self.assignment = dict(assignment)

    @classmethod
    def round_robin(cls, relation: Relation,
                    processors: Sequence[ProcessorId]) -> "ArbitraryFragmentation":
        """Deterministically split ``relation`` round-robin (sorted order)."""
        assignment: Dict[Fact, ProcessorId] = {}
        ordered = sorted(relation, key=repr)
        for position, fact in enumerate(ordered):
            assignment[fact] = processors[position % len(processors)]
        return cls(assignment)

    def owner(self, fact: Fact) -> ProcessorId:
        """Return the processor owning ``fact``.

        Raises:
            KeyError: if the fact was never assigned.
        """
        return self.assignment[fact]

    def fragment(self, relation: Relation,
                 processors: Sequence[ProcessorId]) -> Dict[ProcessorId, Relation]:
        fragments = {proc: make_relation(relation.name, relation.arity)
                     for proc in processors}
        for fact in relation:
            fragments[self.owner(fact)].add(fact)
        return fragments


@dataclass(frozen=True)
class FragmentationPlan:
    """Per-base-relation storage requirements of a rewritten program.

    Attributes:
        requirements: ``{predicate: kind}`` where kind is ``shared``,
            ``hash-partitioned`` or ``arbitrary-partition``.
        notes: optional human-readable remarks per predicate.
    """

    requirements: Mapping[str, str]
    notes: Mapping[str, str] = field(default_factory=dict)

    def shared_predicates(self) -> Tuple[str, ...]:
        """Return predicates that must be shared/replicated, sorted."""
        return tuple(sorted(
            name for name, kind in self.requirements.items() if kind == SHARED))

    def partitioned_predicates(self) -> Tuple[str, ...]:
        """Return predicates that may be partitioned, sorted."""
        return tuple(sorted(
            name for name, kind in self.requirements.items() if kind != SHARED))

    def describe(self) -> str:
        """Render the plan as one line per predicate."""
        lines = []
        for name in sorted(self.requirements):
            line = f"{name}: {self.requirements[name]}"
            note = self.notes.get(name)
            if note:
                line += f" ({note})"
            lines.append(line)
        return "\n".join(lines)
