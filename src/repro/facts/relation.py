"""Relations: named sets of fixed-arity tuples with optional hash indexes.

A :class:`Relation` is the storage unit of both the extensional database
(base predicates) and the partially computed intensional database during
bottom-up evaluation.  Tuples are plain Python tuples of hashable
values.  Hash indexes on argument-position subsets are built lazily and
maintained incrementally on insertion, which is what makes the
semi-naive join loops of the engine fast enough for benchmark-scale
workloads.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Sequence, Set, Tuple

from .index import HashIndex

__all__ = ["Relation", "Fact"]

Fact = Tuple[object, ...]


class Relation:
    """A mutable set of same-arity tuples.

    Args:
        name: predicate symbol this relation stores facts for.
        arity: number of argument positions; every tuple must match it.
        facts: optional initial tuples.
    """

    __slots__ = ("name", "arity", "_facts", "_indexes")

    def __init__(self, name: str, arity: int,
                 facts: Optional[Iterable[Sequence[object]]] = None) -> None:
        if arity < 0:
            raise ValueError("arity must be non-negative")
        self.name = name
        self.arity = arity
        self._facts: Set[Fact] = set()
        self._indexes: Dict[Tuple[int, ...], HashIndex] = {}
        if facts is not None:
            self.update(facts)

    def add(self, fact: Sequence[object]) -> bool:
        """Insert ``fact``; return True iff it was not already present."""
        tup = tuple(fact)
        if len(tup) != self.arity:
            raise ValueError(
                f"relation {self.name}/{self.arity} cannot store {tup!r}")
        if tup in self._facts:
            return False
        self._facts.add(tup)
        for index in self._indexes.values():
            index.add(tup)
        return True

    def update(self, facts: Iterable[Sequence[object]]) -> int:
        """Insert many facts; return the number of genuinely new ones.

        Bulk path: new facts are determined with one set difference and
        handed to each index's :meth:`~repro.facts.index.HashIndex.add_many`,
        so index keys are derived once per fact instead of once per
        fact per :meth:`add` call.
        """
        arity = self.arity
        incoming: Set[Fact] = set()
        for fact in facts:
            tup = tuple(fact)
            if len(tup) != arity:
                raise ValueError(
                    f"relation {self.name}/{self.arity} cannot store {tup!r}")
            incoming.add(tup)
        fresh = incoming - self._facts
        if not fresh:
            return 0
        self._facts |= fresh
        for index in self._indexes.values():
            index.add_many(fresh)
        return len(fresh)

    def add_new_many(self, facts: Iterable[Sequence[object]]) -> "list[Fact]":
        """Insert many facts; return the genuinely new ones, in order.

        Batch-dedup primitive for the engines' round-close loops: the
        returned list preserves first-occurrence order of the input (so
        delta relations and emission buffers see facts in the same
        order a per-fact :meth:`add` loop would produce) and duplicates
        within the batch collapse to their first occurrence.
        """
        arity = self.arity
        present = self._facts
        fresh: list = []
        for fact in facts:
            tup = tuple(fact)
            if len(tup) != arity:
                raise ValueError(
                    f"relation {self.name}/{self.arity} cannot store {tup!r}")
            if tup in present:
                continue
            present.add(tup)
            fresh.append(tup)
        if fresh:
            for index in self._indexes.values():
                index.add_many(fresh)
        return fresh

    def discard(self, fact: Sequence[object]) -> bool:
        """Remove ``fact`` if present; return True iff it was present."""
        tup = tuple(fact)
        if tup not in self._facts:
            return False
        self._facts.discard(tup)
        for index in self._indexes.values():
            index.discard(tup)
        return True

    def index_on(self, positions: Sequence[int]) -> HashIndex:
        """Return (building lazily) the hash index on ``positions``."""
        key = tuple(positions)
        index = self._indexes.get(key)
        if index is None:
            index = HashIndex(key)
            for fact in self._facts:
                index.add(fact)
            self._indexes[key] = index
        return index

    def lookup(self, positions: Sequence[int],
               values: Sequence[object]) -> Iterable[Fact]:
        """Return the facts whose ``positions`` hold ``values``."""
        return self.index_on(positions).lookup(tuple(values))

    def facts(self) -> FrozenSetView:
        """Return a read-only view of the fact set."""
        return FrozenSetView(self._facts)

    def as_set(self) -> Set[Fact]:
        """Return a copy of the fact set."""
        return set(self._facts)

    def copy(self, name: Optional[str] = None) -> "Relation":
        """Return a shallow copy (facts copied, indexes not)."""
        clone = Relation(name if name is not None else self.name, self.arity)
        clone._facts = set(self._facts)
        return clone

    def clear(self) -> None:
        """Remove every fact and drop all indexes."""
        self._facts.clear()
        self._indexes.clear()

    def __contains__(self, fact: Sequence[object]) -> bool:
        return tuple(fact) in self._facts

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    def __bool__(self) -> bool:
        return bool(self._facts)

    def __eq__(self, other: object) -> bool:
        # Membership-based so relations from different storage backends
        # (set-backed tuple store vs dict-backed columnar store) compare
        # equal whenever they hold the same facts.
        if not isinstance(other, Relation):
            return NotImplemented
        if self.name != other.name or self.arity != other.arity:
            return False
        if len(self._facts) != len(other._facts):
            return False
        theirs = other._facts
        return all(fact in theirs for fact in self._facts)

    def __hash__(self) -> int:  # pragma: no cover - relations are mutable
        raise TypeError("Relation is mutable and unhashable")

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, arity={self.arity}, size={len(self)})"


class FrozenSetView:
    """A read-only view over a set of facts."""

    __slots__ = ("_facts",)

    def __init__(self, facts: Set[Fact]) -> None:
        self._facts = facts

    def __contains__(self, fact: object) -> bool:
        return fact in self._facts

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __len__(self) -> int:
        return len(self._facts)
