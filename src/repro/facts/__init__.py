"""Storage layer: relations, hash indexes, databases and fragmentation."""

from .database import Database
from .fragments import (
    SHARED,
    ArbitraryFragmentation,
    FragmentationPlan,
    FragmentationPolicy,
    HashFragmentation,
    SharedFragmentation,
)
from .index import HashIndex
from .relation import Fact, Relation

__all__ = [
    "SHARED",
    "ArbitraryFragmentation",
    "Database",
    "Fact",
    "FragmentationPlan",
    "FragmentationPolicy",
    "HashFragmentation",
    "HashIndex",
    "Relation",
    "SharedFragmentation",
]
