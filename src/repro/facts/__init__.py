"""Storage layer: relations, hash indexes, databases and fragmentation.

Two interchangeable storage backends sit behind the ``Relation`` API —
the tuple-set default and an interned columnar layout — selected via
:func:`set_fact_backend` / ``REPRO_FACT_BACKEND`` (see
docs/DATA_PLANE.md and :mod:`repro.facts.backend`).
"""

from .backend import (
    FACT_BACKENDS,
    fact_backend,
    make_relation,
    relation_class,
    set_fact_backend,
)
from .columnar import ColumnarIndex, ColumnarRelation
from .database import Database
from .fragments import (
    SHARED,
    ArbitraryFragmentation,
    FragmentationPlan,
    FragmentationPolicy,
    HashFragmentation,
    SharedFragmentation,
)
from .index import HashIndex
from .interning import ConstantInterner, global_interner, reset_global_interner
from .packing import (
    is_packed,
    pack_facts,
    packed_fact_count,
    unpack_columns,
    unpack_facts,
)
from .relation import Fact, Relation

__all__ = [
    "SHARED",
    "ArbitraryFragmentation",
    "ColumnarIndex",
    "ColumnarRelation",
    "ConstantInterner",
    "Database",
    "FACT_BACKENDS",
    "Fact",
    "FragmentationPlan",
    "FragmentationPolicy",
    "HashFragmentation",
    "HashIndex",
    "Relation",
    "SharedFragmentation",
    "fact_backend",
    "global_interner",
    "is_packed",
    "make_relation",
    "pack_facts",
    "packed_fact_count",
    "relation_class",
    "reset_global_interner",
    "set_fact_backend",
    "unpack_columns",
    "unpack_facts",
]
