"""Databases: named collections of relations.

A :class:`Database` stores the input (extensional) relations of a
program and, during evaluation, the derived (intensional) ones.  The
paper's *input* is a relation per base predicate; the *output* is a
relation per derived predicate (Section 2).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from ..datalog.atom import Atom
from .backend import make_relation
from .relation import Relation

__all__ = ["Database"]


class Database:
    """A mutable mapping from predicate symbols to :class:`Relation`."""

    __slots__ = ("_relations",)

    def __init__(self, relations: Optional[Iterable[Relation]] = None) -> None:
        self._relations: Dict[str, Relation] = {}
        for relation in relations or ():
            self.attach(relation)

    @classmethod
    def from_facts(cls, facts: Mapping[str, Iterable[Sequence[object]]]) -> "Database":
        """Build a database from ``{predicate: iterable of tuples}``.

        Arities are inferred from the first tuple of each predicate.
        """
        database = cls()
        for name, rows in facts.items():
            rows = [tuple(row) for row in rows]
            if not rows:
                raise ValueError(
                    f"cannot infer arity of empty relation {name!r}; "
                    "use Database.declare instead")
            relation = make_relation(name, len(rows[0]), rows)
            database.attach(relation)
        return database

    @classmethod
    def from_atoms(cls, atoms: Iterable[Atom]) -> "Database":
        """Build a database from ground atoms."""
        database = cls()
        for atom in atoms:
            database.add_fact(atom.predicate, atom.to_fact())
        return database

    def declare(self, name: str, arity: int) -> Relation:
        """Ensure a relation exists, creating it empty if needed.

        Raises:
            ValueError: if the relation exists with a different arity.
        """
        relation = self._relations.get(name)
        if relation is None:
            relation = make_relation(name, arity)
            self._relations[name] = relation
        elif relation.arity != arity:
            raise ValueError(
                f"relation {name} exists with arity {relation.arity}, not {arity}")
        return relation

    def attach(self, relation: Relation) -> None:
        """Register ``relation`` under its own name, replacing any previous one."""
        self._relations[relation.name] = relation

    def add_fact(self, name: str, fact: Sequence[object]) -> bool:
        """Insert a fact, creating the relation if needed."""
        relation = self._relations.get(name)
        if relation is None:
            relation = make_relation(name, len(fact))
            self._relations[name] = relation
        return relation.add(fact)

    def relation(self, name: str) -> Relation:
        """Return the relation for ``name``.

        Raises:
            KeyError: if no such relation exists.
        """
        return self._relations[name]

    def get(self, name: str) -> Optional[Relation]:
        """Return the relation for ``name``, or None."""
        return self._relations.get(name)

    def names(self) -> Tuple[str, ...]:
        """Return the registered predicate names, sorted."""
        return tuple(sorted(self._relations))

    def copy(self) -> "Database":
        """Return a deep-ish copy (relations copied, indexes dropped)."""
        return Database(rel.copy() for rel in self._relations.values())

    def restrict(self, names: Iterable[str]) -> "Database":
        """Return a copy containing only the relations in ``names``."""
        subset = Database()
        for name in names:
            if name in self._relations:
                subset.attach(self._relations[name].copy())
        return subset

    def total_facts(self) -> int:
        """Return the total number of facts across all relations."""
        return sum(len(rel) for rel in self._relations.values())

    def same_contents(self, other: "Database",
                      names: Optional[Iterable[str]] = None) -> bool:
        """True iff both databases hold identical fact sets.

        Args:
            names: compare only these predicates; default, all names
                present in either database.
        """
        if names is None:
            names = set(self.names()) | set(other.names())
        for name in names:
            mine = self.get(name)
            theirs = other.get(name)
            mine_set = mine.as_set() if mine is not None else set()
            theirs_set = theirs.as_set() if theirs is not None else set()
            if mine_set != theirs_set:
                return False
        return True

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{rel.name}/{rel.arity}:{len(rel)}" for rel in self._relations.values())
        return f"Database({inner})"
