"""Fact-storage backend selection: tuple rows vs interned columns.

Mirrors the join/route kernel toggles (``REPRO_JOIN_KERNEL``,
``REPRO_ROUTE_KERNEL``): the environment variable ``REPRO_FACT_BACKEND``
picks the process default at import time, :func:`set_fact_backend`
switches it programmatically (returning the previous name so callers
can restore it), and every site that constructs a relation goes through
:func:`make_relation` so the choice applies uniformly — `Database`
construction, fragmentation, simulator pooling and mp worker rebuild
all honour it.

Backends:

``tuple`` (default)
    :class:`~repro.facts.relation.Relation` — facts in a plain set,
    plain :class:`~repro.facts.index.HashIndex` indexes.

``columnar``
    :class:`~repro.facts.columnar.ColumnarRelation` — insertion-ordered
    row dict plus lazily materialised interned-id ``array('q')``
    columns, :class:`~repro.facts.columnar.ColumnarIndex` indexes with
    cached bucket column gathers, and batch fast paths in the compiled
    join kernel, router and mp wire format (docs/DATA_PLANE.md).

The backend only changes layout and batching; answers, firings and
index semantics are identical (pinned by the backend-equivalence
property tests).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterable, Optional, Sequence, Type

from .columnar import ColumnarRelation
from .relation import Relation

__all__ = [
    "FACT_BACKENDS",
    "fact_backend",
    "make_relation",
    "relation_class",
    "set_fact_backend",
]

FACT_BACKENDS: Dict[str, Type[Relation]] = {
    "tuple": Relation,
    "columnar": ColumnarRelation,
}

_backend = os.environ.get("REPRO_FACT_BACKEND", "tuple")
if _backend not in FACT_BACKENDS:  # pragma: no cover - env misconfiguration
    raise ValueError(
        f"REPRO_FACT_BACKEND={_backend!r}: expected one of "
        f"{sorted(FACT_BACKENDS)}")


def fact_backend() -> str:
    """Return the name of the process-default fact backend."""
    return _backend


def set_fact_backend(name: str) -> str:
    """Select the fact backend; returns the previous backend name."""
    global _backend
    if name not in FACT_BACKENDS:
        raise ValueError(
            f"unknown fact backend {name!r}: expected one of "
            f"{sorted(FACT_BACKENDS)}")
    previous = _backend
    _backend = name
    return previous


def relation_class(backend: Optional[str] = None) -> Type[Relation]:
    """Return the Relation class for ``backend`` (default: process default)."""
    return FACT_BACKENDS[backend if backend is not None else _backend]


def make_relation(name: str, arity: int,
                  facts: Optional[Iterable[Sequence[object]]] = None,
                  backend: Optional[str] = None) -> Relation:
    """Construct a relation under the selected storage backend."""
    cls = FACT_BACKENDS[backend if backend is not None else _backend]
    return cls(name, arity, facts)
