"""Packed-column encoding for fact batches crossing process boundaries.

The mp executor's DATA messages ship ``(predicate, facts)`` pairs.
Under the tuple wire format each pair's payload is a pickled list of
Python tuples — every value is re-pickled as a full object, and a
64-node batch of int pairs costs kilobytes.  The packed format instead
transposes the batch into per-attribute columns:

* an all-``int64`` column becomes the raw bytes of an ``array('q')``
  (8 bytes per value, one bytes object to pickle);
* a repetitive non-int column is dictionary-encoded as (unique values
  in first-occurrence order, index array bytes);
* anything else falls back to the plain value list.

Crucially the encoding is **self-contained**: the dictionary of a
dictionary-encoded column travels inside the message, and int columns
carry raw values, so no interner state crosses the process boundary
(interned ids are process-local — see :mod:`repro.facts.interning`).
The receiver reconstructs the exact value tuples; ``unpack_facts(
pack_facts(facts))`` is the identity on fact lists (property-tested in
``tests/facts/test_packing.py``), which keeps routing, discriminating
functions and quiescence counting oblivious to the wire format.

The deterministic channel-byte model in :mod:`repro.parallel.metrics`
understands this layout, so ``channel_bytes`` comparisons between the
two wire formats stay meaningful.
"""

from __future__ import annotations

from array import array
from typing import List, Sequence, Tuple

from .relation import Fact

__all__ = [
    "PACKED_TAG",
    "PACK_MIN_FACTS",
    "ensure_facts",
    "is_packed",
    "maybe_pack",
    "pack_facts",
    "packed_fact_count",
    "unpack_columns",
    "unpack_facts",
]

# First element of every packed payload.  A packed payload is a tuple,
# a legacy payload is a list of fact tuples, so ``is_packed`` is cheap
# and old/new workers can share a queue during rolling changes.
PACKED_TAG = "__cols__"

_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1

# Column encodings: ("i", bytes) int64 column; ("d", values, typecode,
# bytes) dictionary-encoded column; ("v", list) raw value fallback.


def _encode_column(values: List[object]) -> Tuple:
    all_int = True
    for value in values:
        if type(value) is not int or not (_INT64_MIN <= value <= _INT64_MAX):
            all_int = False
            break
    if all_int:
        return ("i", array("q", values).tobytes())
    # Dictionary-encode when repetition makes it pay; otherwise ship raw.
    codes: dict = {}
    indexes: List[int] = []
    for value in values:
        code = codes.get(value)
        if code is None:
            code = len(codes)
            codes[value] = code
        indexes.append(code)
    if len(codes) * 2 < len(values):
        typecode = "H" if len(codes) <= 0xFFFF else "L"
        return ("d", tuple(codes), typecode,
                array(typecode, indexes).tobytes())
    return ("v", values)


def _decode_column(encoded: Tuple) -> List[object]:
    kind = encoded[0]
    if kind == "i":
        return array("q", encoded[1]).tolist()
    if kind == "d":
        _, uniques, typecode, raw = encoded
        indexes = array(typecode, raw)
        return [uniques[i] for i in indexes]
    if kind == "v":
        return encoded[1]
    raise ValueError(f"unknown packed column kind {kind!r}")


def pack_facts(facts: Sequence[Fact]) -> Tuple:
    """Transpose a fact batch into a packed column payload."""
    count = len(facts)
    if count == 0:
        return (PACKED_TAG, 0, 0, ())
    arity = len(facts[0])
    columns = tuple(
        _encode_column([fact[position] for fact in facts])
        for position in range(arity))
    return (PACKED_TAG, count, arity, columns)


def is_packed(payload: object) -> bool:
    """True iff ``payload`` is a packed column payload (vs a fact list)."""
    return (type(payload) is tuple and len(payload) == 4
            and payload[0] == PACKED_TAG)


def packed_fact_count(payload: Tuple) -> int:
    """Number of facts in a packed payload, without decoding it."""
    return payload[1]


# Below this many facts the packed framing costs more than it saves,
# so senders (mp data messages, checkpoint payloads) ship the plain
# list.  Shared here so every producer breaks even at the same point.
PACK_MIN_FACTS = 8


def maybe_pack(facts: Sequence[Fact], min_facts: int = PACK_MIN_FACTS):
    """Pack ``facts`` when the batch is big enough to profit.

    Returns either a packed payload or the fact list unchanged; decode
    either with :func:`ensure_facts`.
    """
    if len(facts) >= min_facts:
        return pack_facts(facts)
    return list(facts)


def ensure_facts(payload) -> List[Fact]:
    """Decode a wire payload (packed or plain) back to a fact list."""
    if is_packed(payload):
        return unpack_facts(payload)
    return list(payload)


def unpack_facts(payload: Tuple) -> List[Fact]:
    """Reconstruct the exact fact tuples of a packed payload."""
    _, count, arity, columns = payload
    if count == 0:
        return []
    if arity == 0:
        return [() for _ in range(count)]
    decoded = [_decode_column(column) for column in columns]
    if arity == 1:
        return [(value,) for value in decoded[0]]
    return list(zip(*decoded))


def unpack_columns(payload: Tuple) -> Tuple[int, int, List[List[object]]]:
    """Decode a packed payload to ``(count, arity, value columns)``.

    The column-shaped sibling of :func:`unpack_facts`: receivers that
    ingest batches columnwise (an mp worker handing a DATA batch to the
    vectorized join kernel) decode each attribute column once and skip
    the transpose back to row tuples entirely.  Column ``p`` holds the
    position-``p`` values of every fact, row-aligned across columns.
    """
    _, count, arity, columns = payload
    if count == 0 or arity == 0:
        return count, arity, []
    return count, arity, [_decode_column(column) for column in columns]
