"""Network derivation by solving linear systems (paper, Example 7).

When the discriminating functions are *linear* over ``g``-values,
``h(a1, ..., am) = c1·g(a1) + ... + cm·g(am)``, the edges of the
minimal network graph are exactly the pairs ``(u, v)`` appearing in
solutions of the system

    consumer:  Σ  c_k · x_{σ(k)} = v
    producer:  Σ  c_k · x_{π(k)} = u

subject to ``x ∈ {0..g_range-1}^n`` — the paper's equations (4)/(5).
This module constructs the system symbolically (so benchmarks can print
it exactly as the paper does) and solves it with a vectorised numpy
enumeration of the cube.  It must agree with the generic enumeration of
:mod:`repro.network.derivation`; the test suite cross-checks the two.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..datalog.analysis import LinearSirup, as_linear_sirup
from ..datalog.program import Program
from ..datalog.term import Variable
from ..errors import NetworkDerivationError
from .derivation import build_scenarios
from .netgraph import NetworkGraph

__all__ = ["LinearSystem", "build_linear_system", "solve_linear_network"]


@dataclass(frozen=True)
class LinearSystem:
    """One producer/consumer scenario as a pair of coefficient rows.

    Attributes:
        symbols: number of unknowns ``x_1 .. x_n`` (1-based in renderings).
        consumer_row: coefficients of the consumer equation (= ``v``).
        producer_row: coefficients of the producer equation (= ``u``).
        equalities: symbol pairs forced equal.
        label: ``"exit"`` or ``"recursive"``.
        modulus: optional modulus folding both equations.
    """

    symbols: int
    consumer_row: Tuple[int, ...]
    producer_row: Tuple[int, ...]
    equalities: Tuple[Tuple[int, int], ...]
    label: str
    modulus: Optional[int]

    def render(self) -> str:
        """Render the system like the paper's equations (4) and (5)."""

        def render_row(row: Sequence[int], rhs: str) -> str:
            terms = []
            for index, coefficient in enumerate(row):
                if coefficient == 0:
                    continue
                name = f"x{index + 1}"
                if not terms:
                    prefix = "" if coefficient > 0 else "-"
                else:
                    prefix = " + " if coefficient > 0 else " - "
                magnitude = abs(coefficient)
                term = name if magnitude == 1 else f"{magnitude}*{name}"
                terms.append(prefix + term)
            left = "".join(terms) if terms else "0"
            if self.modulus is not None:
                left = f"({left}) mod {self.modulus}"
            return f"{left} = {rhs}"

        lines = [render_row(self.consumer_row, "v"),
                 render_row(self.producer_row, "u")]
        for a, b in self.equalities:
            lines.append(f"x{a + 1} = x{b + 1}")
        return "\n".join(lines)

    def solve(self, g_range: int = 2) -> Set[Tuple[int, int]]:
        """Enumerate ``x ∈ {0..g_range-1}^n`` and collect edges ``(u, v)``.

        Vectorised: the whole cube is a ``(g_range^n, n)`` matrix and
        both equations are matrix-vector products.
        """
        if self.symbols == 0:
            return {(0, 0)}
        cube = np.array(list(itertools.product(range(g_range),
                                               repeat=self.symbols)),
                        dtype=np.int64)
        for a, b in self.equalities:
            cube = cube[cube[:, a] == cube[:, b]]
        if cube.size == 0:
            return set()
        consumer = cube @ np.array(self.consumer_row, dtype=np.int64)
        producer = cube @ np.array(self.producer_row, dtype=np.int64)
        if self.modulus is not None:
            consumer = consumer % self.modulus
            producer = producer % self.modulus
        return {(int(u), int(v)) for u, v in zip(producer, consumer)}


def _row_from_symbols(symbols: Sequence[int], coefficients: Sequence[int],
                      width: int) -> Tuple[int, ...]:
    row = [0] * width
    for symbol, coefficient in zip(symbols, coefficients):
        row[symbol] += coefficient
    return tuple(row)


def build_linear_system(program: Union[Program, LinearSirup],
                        v_r: Sequence[Variable], v_e: Sequence[Variable],
                        coefficients: Sequence[int],
                        exit_coefficients: Optional[Sequence[int]] = None,
                        modulus: Optional[int] = None) -> List[LinearSystem]:
    """Build the linear systems (one per producer scenario) of a sirup.

    Args:
        program: the linear sirup.
        v_r: discriminating sequence of the recursive rule.
        v_e: discriminating sequence of the exit rule.
        coefficients: the linear form of ``h`` over ``v_r``.
        exit_coefficients: the linear form of ``h'`` over ``v_e``
            (default: ``coefficients``).
        modulus: optional modulus of both forms.

    Raises:
        NetworkDerivationError: on mismatched coefficient lengths.
    """
    sirup = (program if isinstance(program, LinearSirup)
             else as_linear_sirup(program))
    exit_coefficients = (tuple(exit_coefficients)
                         if exit_coefficients is not None
                         else tuple(coefficients))
    coefficients = tuple(coefficients)
    if len(coefficients) != len(tuple(v_r)):
        raise NetworkDerivationError(
            f"{len(coefficients)} coefficients for {len(tuple(v_r))} "
            "v(r) variables")
    if len(exit_coefficients) != len(tuple(v_e)):
        raise NetworkDerivationError(
            f"{len(exit_coefficients)} exit coefficients for "
            f"{len(tuple(v_e))} v(e) variables")

    systems: List[LinearSystem] = []
    for scenario in build_scenarios(sirup, v_r, v_e):
        producer_coeffs = (exit_coefficients if scenario.label == "exit"
                           else coefficients)
        systems.append(LinearSystem(
            symbols=scenario.symbols,
            consumer_row=_row_from_symbols(scenario.consumer_symbols,
                                           coefficients, scenario.symbols),
            producer_row=_row_from_symbols(scenario.producer_symbols,
                                           producer_coeffs, scenario.symbols),
            equalities=scenario.equalities,
            label=scenario.label,
            modulus=modulus,
        ))
    return systems


def solve_linear_network(program: Union[Program, LinearSirup],
                         v_r: Sequence[Variable], v_e: Sequence[Variable],
                         coefficients: Sequence[int],
                         exit_coefficients: Optional[Sequence[int]] = None,
                         g_range: int = 2,
                         modulus: Optional[int] = None) -> NetworkGraph:
    """Derive the minimal network graph by solving the linear systems.

    The processor set is the exact range of the linear form over
    ``{0..g_range-1}`` inputs (paper: ``{-1, 0, 1, 2}`` for Example 7).
    """
    systems = build_linear_system(program, v_r, v_e, coefficients,
                                  exit_coefficients, modulus)
    coefficients = tuple(coefficients)
    reachable = {0}
    for coefficient in coefficients:
        reachable = {value + coefficient * b
                     for value in reachable for b in range(g_range)}
    if modulus is not None:
        reachable = {value % modulus for value in reachable}

    graph = NetworkGraph(sorted(reachable))
    for system in systems:
        for source, target in system.solve(g_range):
            if source in reachable and target in reachable:
                graph.add_edge(source, target)
    return graph
