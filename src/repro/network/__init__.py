"""Network analysis: dataflow graphs and minimal communication networks."""

from .dataflow import (
    dataflow_edges,
    dataflow_graph,
    find_dataflow_cycle,
    format_dataflow,
    zero_communication_positions,
)
from .derivation import ScenarioConstraints, build_scenarios, derive_network
from .linear import LinearSystem, build_linear_system, solve_linear_network
from .netgraph import NetworkGraph
from .topology import (
    complete_topology,
    embeds_identity,
    find_embedding,
    hypercube_topology,
    mesh_topology,
    ring_topology,
    star_topology,
)

__all__ = [
    "LinearSystem",
    "NetworkGraph",
    "ScenarioConstraints",
    "build_linear_system",
    "build_scenarios",
    "complete_topology",
    "dataflow_edges",
    "dataflow_graph",
    "derive_network",
    "embeds_identity",
    "find_dataflow_cycle",
    "find_embedding",
    "format_dataflow",
    "hypercube_topology",
    "mesh_topology",
    "ring_topology",
    "solve_linear_network",
    "star_topology",
    "zero_communication_positions",
]
