"""Physical processor topologies and embedding checks.

Section 5's motivation: the compile-time network graph tells which
channels a parallel execution needs, so the rewriting "can be used to
adapt the parallel execution onto an existing parallel architecture".
A derived network graph is *runnable as-is* on a physical topology iff
its remote edges map into the topology's links — the paper forbids
routing through intermediaries (Definition 3).
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable, Optional, Sequence

from .netgraph import NetworkGraph

__all__ = [
    "complete_topology",
    "ring_topology",
    "star_topology",
    "mesh_topology",
    "hypercube_topology",
    "embeds_identity",
    "find_embedding",
]

ProcessorId = Hashable


def complete_topology(processors: Sequence[ProcessorId]) -> NetworkGraph:
    """Every ordered pair is a link (Section 3's idealised architecture)."""
    graph = NetworkGraph(processors)
    for source in processors:
        for target in processors:
            if source != target:
                graph.add_edge(source, target)
    return graph


def ring_topology(processors: Sequence[ProcessorId],
                  bidirectional: bool = True) -> NetworkGraph:
    """A cycle over the processors in the given order."""
    graph = NetworkGraph(processors)
    count = len(processors)
    for index in range(count):
        source = processors[index]
        target = processors[(index + 1) % count]
        if source != target:
            graph.add_edge(source, target)
            if bidirectional:
                graph.add_edge(target, source)
    return graph


def star_topology(processors: Sequence[ProcessorId]) -> NetworkGraph:
    """The first processor is the hub; all links go through it."""
    graph = NetworkGraph(processors)
    hub = processors[0]
    for other in processors[1:]:
        graph.add_edge(hub, other)
        graph.add_edge(other, hub)
    return graph


def mesh_topology(rows: int, columns: int) -> NetworkGraph:
    """A 2-D grid of processors named ``(row, column)``."""
    processors = [(r, c) for r in range(rows) for c in range(columns)]
    graph = NetworkGraph(processors)
    for r, c in processors:
        for dr, dc in ((0, 1), (1, 0)):
            neighbour = (r + dr, c + dc)
            if neighbour in set(processors):
                graph.add_edge((r, c), neighbour)
                graph.add_edge(neighbour, (r, c))
    return graph


def hypercube_topology(dimension: int) -> NetworkGraph:
    """A ``dimension``-cube of processors named by bit tuples.

    Natural for Example 6's processor ids ``(g(a), g(b))``: the
    two-dimensional hypercube *is* that processor set with single-bit
    links.
    """
    processors = [tuple((index >> bit) & 1 for bit in range(dimension))
                  for index in range(2 ** dimension)]
    graph = NetworkGraph(processors)
    for processor in processors:
        for bit in range(dimension):
            neighbour = tuple(value ^ 1 if position == bit else value
                              for position, value in enumerate(processor))
            graph.add_edge(processor, neighbour)
            graph.add_edge(neighbour, processor)
    return graph


def embeds_identity(network: NetworkGraph, topology: NetworkGraph) -> bool:
    """True iff the network's remote edges are topology links as-is.

    Both graphs must be over the same processor ids; no renaming is
    attempted (Definition 3 forbids indirect routing, so a needed edge
    missing from the topology is fatal).
    """
    return network.edges(include_self=False) <= topology.edges(
        include_self=False)


def find_embedding(network: NetworkGraph, topology: NetworkGraph,
                   max_nodes: int = 8) -> Optional[Dict[ProcessorId, ProcessorId]]:
    """Search for a node renaming embedding the network into the topology.

    Brute force over permutations — only sensible for small processor
    sets, which is what compile-time network derivation produces.

    Returns:
        A mapping network-node → topology-node, or None.

    Raises:
        ValueError: if either graph exceeds ``max_nodes`` nodes.
    """
    net_nodes = list(network.processors)
    topo_nodes = list(topology.processors)
    if len(net_nodes) > max_nodes or len(topo_nodes) > max_nodes:
        raise ValueError(f"embedding search limited to {max_nodes} nodes")
    if len(net_nodes) > len(topo_nodes):
        return None
    needed = network.edges(include_self=False)
    available = topology.edges(include_self=False)
    for image in itertools.permutations(topo_nodes, len(net_nodes)):
        mapping = dict(zip(net_nodes, image))
        if all((mapping[s], mapping[t]) in available for s, t in needed):
            return mapping
    return None
