"""Compile-time derivation of the minimal network graph (paper, Section 5).

Which processor pairs can *ever* communicate is a data-independent
property of the rule, the discriminating sequence and the
discriminating function — provided ``h`` factors through an arbitrary
per-constant function ``g`` with a small codomain (Examples 6 and 7).
We assign a *symbolic* ``g``-value to every attribute position of the
communicated tuple (plus fresh symbols for variables bound only by base
atoms, whose values an adversarial input can choose freely), write down

* the **consumer** condition — the receiving processor ``j`` equals
  ``h`` of ``v(r)`` under the match of the tuple against ``t(Ȳ)``;
* the **producer** condition — the sending processor ``i`` equals
  ``h'(v(e))`` under the exit-head match (initialization) or ``h`` of
  ``v(r)`` under the producer's own firing (processing, the paper's
  equation (3));

and enumerate all assignments over ``{0..g_range-1}``.  Every solution
contributes an edge ``i -> j``; no other channel can ever carry a tuple
(soundness is property-tested against the simulator).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

from ..datalog.analysis import LinearSirup, as_linear_sirup
from ..datalog.program import Program
from ..datalog.term import Variable
from ..errors import NetworkDerivationError
from .netgraph import NetworkGraph

__all__ = ["GComposable", "ScenarioConstraints", "derive_network"]

ProcessorId = Hashable


class GComposable:
    """Protocol of discriminators usable by the derivation.

    The derivation needs ``h`` to be computable from per-position
    ``g``-values alone; :class:`~repro.parallel.discriminating.TupleDiscriminator`
    and :class:`~repro.parallel.discriminating.LinearDiscriminator`
    expose this as ``compose_g``.
    """

    def compose_g(self, g_values: Sequence[int]) -> ProcessorId:  # pragma: no cover
        raise NotImplementedError


@dataclass
class ScenarioConstraints:
    """Symbol bookkeeping for one producer scenario.

    Attributes:
        symbols: total number of symbols (tuple positions first).
        producer_symbols: symbol index per ``v``-sequence position of
            the producer condition.
        consumer_symbols: symbol index per ``v(r)`` position of the
            consumer condition.
        equalities: pairs of symbol indices forced equal (repeated
            variables within the head or the recursive atom).
        label: ``"exit"`` or ``"recursive"``.
    """

    symbols: int
    producer_symbols: Tuple[int, ...]
    consumer_symbols: Tuple[int, ...]
    equalities: Tuple[Tuple[int, int], ...]
    label: str


class _SymbolTable:
    """Allocates symbols and records equality constraints."""

    def __init__(self, count: int) -> None:
        self.count = count
        self.equalities: List[Tuple[int, int]] = []

    def fresh(self) -> int:
        symbol = self.count
        self.count += 1
        return symbol


def _bind_pattern(variables: Sequence[Variable],
                  table: _SymbolTable) -> Dict[Variable, int]:
    """Bind pattern variables to tuple-position symbols ``0..m-1``.

    A variable repeated at several positions forces those positions'
    symbols equal.
    """
    binding: Dict[Variable, int] = {}
    for position, variable in enumerate(variables):
        if variable in binding:
            table.equalities.append((binding[variable], position))
        else:
            binding[variable] = position
    return binding


def _sequence_symbols(sequence: Sequence[Variable],
                      binding: Dict[Variable, int],
                      table: _SymbolTable) -> Tuple[int, ...]:
    """Symbols of a discriminating sequence; unbound variables get fresh ones."""
    fresh_cache: Dict[Variable, int] = {}
    symbols = []
    for variable in sequence:
        if variable in binding:
            symbols.append(binding[variable])
        else:
            if variable not in fresh_cache:
                fresh_cache[variable] = table.fresh()
            symbols.append(fresh_cache[variable])
    return tuple(symbols)


def build_scenarios(sirup: LinearSirup, v_r: Sequence[Variable],
                    v_e: Sequence[Variable]) -> List[ScenarioConstraints]:
    """Construct the exit-producer and recursive-producer scenarios."""
    arity = sirup.arity
    scenarios: List[ScenarioConstraints] = []

    # Consumer side is common: match the tuple against t(Ȳ).
    for producer_label in ("exit", "recursive"):
        table = _SymbolTable(arity)
        consumer_binding = _bind_pattern(sirup.body_vars, table)
        consumer_symbols = _sequence_symbols(tuple(v_r), consumer_binding, table)
        if producer_label == "exit":
            producer_binding = _bind_pattern(sirup.exit_vars, table)
            producer_symbols = _sequence_symbols(tuple(v_e), producer_binding,
                                                 table)
        else:
            producer_binding = _bind_pattern(sirup.head_vars, table)
            producer_symbols = _sequence_symbols(tuple(v_r), producer_binding,
                                                 table)
        scenarios.append(ScenarioConstraints(
            symbols=table.count,
            producer_symbols=producer_symbols,
            consumer_symbols=consumer_symbols,
            equalities=tuple(table.equalities),
            label=producer_label,
        ))
    return scenarios


def derive_network(program: Union[Program, LinearSirup],
                   v_r: Sequence[Variable], v_e: Sequence[Variable],
                   h: GComposable, h_prime: Optional[GComposable] = None,
                   g_range: int = 2,
                   max_symbols: int = 20) -> NetworkGraph:
    """Derive the minimal network graph of a linear sirup at compile time.

    Args:
        program: the linear sirup (program or decomposition).
        v_r: discriminating sequence of the recursive rule.
        v_e: discriminating sequence of the exit rule.
        h: a ``g``-composable discriminating function for the recursion.
        h_prime: ditto for the exit rule (default: ``h``).
        g_range: codomain size of the arbitrary function ``g``.
        max_symbols: guard against blow-up of the enumeration.

    Returns:
        A :class:`NetworkGraph` whose nodes are the processor set of
        ``h`` and whose edges are exactly the possible communications
        (self-loops included; filter with ``edges(include_self=False)``).

    Raises:
        NetworkDerivationError: if a discriminator lacks ``compose_g``
            or the symbol count exceeds ``max_symbols``.
    """
    sirup = (program if isinstance(program, LinearSirup)
             else as_linear_sirup(program))
    h_prime = h_prime if h_prime is not None else h
    for function, name in ((h, "h"), (h_prime, "h'")):
        if not hasattr(function, "compose_g"):
            raise NetworkDerivationError(
                f"{name} ({type(function).__name__}) does not factor "
                "through per-constant g values; derivation needs a "
                "TupleDiscriminator or LinearDiscriminator")

    processors = set(getattr(h, "processors", ())) | set(
        getattr(h_prime, "processors", ()))
    graph = NetworkGraph(processors)

    for scenario in build_scenarios(sirup, v_r, v_e):
        if scenario.symbols > max_symbols:
            raise NetworkDerivationError(
                f"{scenario.symbols} symbols exceed max_symbols="
                f"{max_symbols}; enumeration would be too large")
        producer_h = h_prime if scenario.label == "exit" else h
        for assignment in itertools.product(range(g_range),
                                            repeat=scenario.symbols):
            if any(assignment[a] != assignment[b]
                   for a, b in scenario.equalities):
                continue
            source = producer_h.compose_g(
                tuple(assignment[s] for s in scenario.producer_symbols))
            target = h.compose_g(
                tuple(assignment[s] for s in scenario.consumer_symbols))
            if source in processors and target in processors:
                graph.add_edge(source, target)
    return graph
