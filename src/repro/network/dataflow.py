"""Dataflow graphs of linear recursive rules (paper, Definition 2).

For a recursive rule with head ``t(X1, ..., Xm)`` and recursive body
atom ``t(Y1, ..., Ym)``, the dataflow graph has an edge ``i -> j``
whenever ``Yi = Xj`` — the value at attribute position ``i`` of the
consumed tuple reappears at position ``j`` of the produced tuple.
Positions are **1-based**, as in the paper's Figures 1 and 2.

Theorem 3: if the dataflow graph contains a cycle, there is a choice of
discriminating sequence and function for which the parallel execution
requires no communication.  The construction: take the positions along
a cycle; the produced tuple's values at those positions are a cyclic
shift of the consumed tuple's, so any *shift-invariant* discriminating
function (e.g. a symmetric sum) is preserved from input to output and
every tuple self-routes.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import networkx as nx

from ..datalog.analysis import LinearSirup, as_linear_sirup
from ..datalog.program import Program
from ..datalog.rule import Rule
from ..datalog.term import Variable
from ..errors import NotASirupError

__all__ = [
    "dataflow_graph",
    "dataflow_edges",
    "find_dataflow_cycle",
    "zero_communication_positions",
    "format_dataflow",
]


def _head_body_atoms(rule_or_sirup: Union[Rule, LinearSirup, Program]):
    """Extract (head vars, recursive body atom vars) from the input."""
    if isinstance(rule_or_sirup, Program):
        rule_or_sirup = as_linear_sirup(rule_or_sirup)
    if isinstance(rule_or_sirup, LinearSirup):
        return rule_or_sirup.head_vars, rule_or_sirup.body_vars
    rule = rule_or_sirup
    predicate = rule.head.predicate
    recursive = [a for a in rule.body if a.predicate == predicate]
    if len(recursive) != 1:
        raise NotASirupError(
            "dataflow graphs are defined for rules with exactly one "
            f"recursive atom; {rule} has {len(recursive)}")
    head_vars = []
    body_vars = []
    for term in rule.head.terms:
        if not isinstance(term, Variable):
            raise NotASirupError(f"non-variable argument {term} in {rule.head}")
        head_vars.append(term)
    for term in recursive[0].terms:
        if not isinstance(term, Variable):
            raise NotASirupError(f"non-variable argument {term} in {recursive[0]}")
        body_vars.append(term)
    return tuple(head_vars), tuple(body_vars)


def dataflow_graph(rule_or_sirup: Union[Rule, LinearSirup, Program]) -> "nx.DiGraph":
    """Build the dataflow graph (1-based positions) of a linear rule.

    Args:
        rule_or_sirup: the recursive rule, a sirup decomposition, or a
            two-rule sirup program.

    Raises:
        NotASirupError: if the rule does not have exactly one recursive
            atom or has non-variable arguments.
    """
    head_vars, body_vars = _head_body_atoms(rule_or_sirup)
    graph = nx.DiGraph()
    for i, y_var in enumerate(body_vars, start=1):
        for j, x_var in enumerate(head_vars, start=1):
            if y_var == x_var:
                graph.add_edge(i, j)
    return graph


def dataflow_edges(rule_or_sirup: Union[Rule, LinearSirup, Program]
                   ) -> Tuple[Tuple[int, int], ...]:
    """The edge set of the dataflow graph, sorted (for figure checks)."""
    return tuple(sorted(dataflow_graph(rule_or_sirup).edges()))


def find_dataflow_cycle(rule_or_sirup: Union[Rule, LinearSirup, Program]
                        ) -> Optional[Tuple[int, ...]]:
    """Return the positions along one dataflow cycle, or None.

    The returned tuple ``(p1, ..., pk)`` satisfies ``Y_{p1} = X_{p2}``,
    ..., ``Y_{pk} = X_{p1}`` (1-based).  A self-loop yields a 1-tuple.
    """
    graph = dataflow_graph(rule_or_sirup)
    try:
        edges = nx.find_cycle(graph)
    except nx.NetworkXNoCycle:
        return None
    return tuple(source for source, _target in edges)


def zero_communication_positions(program: Union[Program, LinearSirup]
                                 ) -> Optional[Tuple[int, ...]]:
    """Theorem 3: positions yielding a communication-free choice.

    Returns 1-based attribute positions ``(p1, ..., pk)`` along a
    dataflow cycle such that choosing ``v(r) = (Y_{p1}, ..., Y_{pk})``,
    ``v(e)`` the exit-head variables at the same positions, and a
    shift-invariant ``h = h'`` makes every tuple self-route.  None when
    the dataflow graph is acyclic.
    """
    return find_dataflow_cycle(program)


def format_dataflow(rule_or_sirup: Union[Rule, LinearSirup, Program]) -> str:
    """Render a dataflow graph like the paper's figures (``1 -> 2 -> 3``).

    Chains are rendered inline; anything else falls back to an edge list.
    """
    graph = dataflow_graph(rule_or_sirup)
    edges = sorted(graph.edges())
    if not edges:
        return "(empty)"
    # Try to render a simple path.
    out_degrees = dict(graph.out_degree())
    in_degrees = dict(graph.in_degree())
    starts = [n for n in graph.nodes()
              if in_degrees.get(n, 0) == 0 and out_degrees.get(n, 0) == 1]
    if (len(starts) == 1 and nx.is_directed_acyclic_graph(graph)
            and all(d <= 1 for d in out_degrees.values())
            and all(d <= 1 for d in in_degrees.values())):
        chain = [starts[0]]
        while True:
            successors = list(graph.successors(chain[-1]))
            if not successors:
                break
            chain.append(successors[0])
        return " -> ".join(str(node) for node in chain)
    return ", ".join(f"{i} -> {j}" for i, j in edges)
