"""Network graphs over processor sets (paper, Definition 3).

A network graph states which ordered pairs of processors are permitted
to communicate during a parallel execution.  Section 5 derives, at
compile time, the *minimal* network graph of a linear sirup — edges
exist only where some input database would actually cause
communication.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, Tuple

import networkx as nx

__all__ = ["NetworkGraph"]

ProcessorId = Hashable
Edge = Tuple[ProcessorId, ProcessorId]


class NetworkGraph:
    """A directed graph over a fixed processor set."""

    def __init__(self, processors: Iterable[ProcessorId],
                 edges: Iterable[Edge] = ()) -> None:
        self.graph = nx.DiGraph()
        self.graph.add_nodes_from(processors)
        for source, target in edges:
            self.add_edge(source, target)

    @property
    def processors(self) -> Tuple[ProcessorId, ...]:
        """The processor set, sorted by representation."""
        return tuple(sorted(self.graph.nodes(), key=repr))

    def add_edge(self, source: ProcessorId, target: ProcessorId) -> None:
        """Permit communication from ``source`` to ``target``."""
        if source not in self.graph or target not in self.graph:
            raise ValueError(f"edge ({source!r}, {target!r}) leaves the "
                             "processor set")
        self.graph.add_edge(source, target)

    def has_edge(self, source: ProcessorId, target: ProcessorId) -> bool:
        """True iff communication from ``source`` to ``target`` is permitted."""
        return self.graph.has_edge(source, target)

    def edges(self, include_self: bool = True) -> FrozenSet[Edge]:
        """The permitted edges, optionally without self-loops.

        Self-loops model a processor retaining tuples for itself, which
        costs no communication; most reports exclude them.
        """
        return frozenset(
            (s, t) for s, t in self.graph.edges()
            if include_self or s != t)

    def degree_summary(self) -> Tuple[int, int]:
        """(number of remote edges, complete-graph remote edge count)."""
        n = self.graph.number_of_nodes()
        return len(self.edges(include_self=False)), n * (n - 1)

    def is_subset_of(self, other: "NetworkGraph") -> bool:
        """True iff every remote edge here is permitted in ``other``."""
        return self.edges(include_self=False) <= other.edges(include_self=False)

    def covers(self, used_edges: Iterable[Edge]) -> bool:
        """True iff every (remote) used edge is a permitted edge."""
        permitted = self.edges(include_self=False)
        return all(edge in permitted
                   for edge in used_edges if edge[0] != edge[1])

    def to_ascii(self) -> str:
        """Render one line per node: ``node -> successors``."""
        lines = []
        for node in self.processors:
            successors = sorted(self.graph.successors(node), key=repr)
            remote = [s for s in successors if s != node]
            arrow = ", ".join(repr(s) for s in remote) if remote else "(none)"
            lines.append(f"{node!r} -> {arrow}")
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, NetworkGraph)
                and set(self.graph.nodes()) == set(other.graph.nodes())
                and set(self.graph.edges()) == set(other.graph.edges()))

    def __repr__(self) -> str:
        remote, complete = self.degree_summary()
        return (f"NetworkGraph({self.graph.number_of_nodes()} processors, "
                f"{remote}/{complete} remote edges)")
