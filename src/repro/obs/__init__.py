"""Structured tracing and observability.

The paper's claims are counts — firings per processor (Definition 1),
tuples per channel (Section 5) — and :mod:`repro.parallel.metrics`
aggregates them at the end of a run.  This package records *when* the
work happened: a :class:`Tracer` emits typed :class:`TraceEvent`\\ s
(round boundaries, rule firings, channel traffic, termination probes,
worker lifetimes) into pluggable sinks, and :class:`TraceReport`
replays an event stream back into per-processor timelines, per-round
histograms, channel heatmaps and a cost-model makespan breakdown.

The default everywhere is :data:`NULL_TRACER`, whose operations are
no-ops guarded by a single ``enabled`` attribute check — untraced runs
pay nothing.  The simulator traces without timestamps, so equal seeds
yield byte-identical JSONL streams; the multiprocessing executor
timestamps events and streams worker-side batches back over its
existing queue protocol.
"""

from .events import (
    CHECKPOINT,
    EVENT_KINDS,
    LOG_TRUNCATE,
    PROBE,
    REPLAY,
    RESTORE,
    ROUND_END,
    ROUND_START,
    RULE_FIRED,
    RUN_END,
    RUN_START,
    SPAN,
    TUPLE_DROPPED,
    TUPLE_RECEIVED,
    TUPLE_SENT,
    TraceEvent,
    WORKER_DOWN,
    WORKER_EXIT,
    WORKER_RESTART,
    WORKER_SPAWN,
    WORKER_STALLED,
)
from .report import TraceReport, load_trace
from .sinks import (
    AggregateSink,
    InMemorySink,
    JsonlSink,
    TraceSink,
    event_to_json,
    read_jsonl,
)
from .tracer import NULL_TRACER, NullTracer, Tracer, ensure_tracer

__all__ = [
    "AggregateSink",
    "CHECKPOINT",
    "EVENT_KINDS",
    "InMemorySink",
    "JsonlSink",
    "LOG_TRUNCATE",
    "NULL_TRACER",
    "NullTracer",
    "PROBE",
    "REPLAY",
    "RESTORE",
    "ROUND_END",
    "ROUND_START",
    "RULE_FIRED",
    "RUN_END",
    "RUN_START",
    "SPAN",
    "TUPLE_DROPPED",
    "TUPLE_RECEIVED",
    "TUPLE_SENT",
    "TraceEvent",
    "TraceReport",
    "TraceSink",
    "Tracer",
    "WORKER_DOWN",
    "WORKER_EXIT",
    "WORKER_RESTART",
    "WORKER_SPAWN",
    "WORKER_STALLED",
    "ensure_tracer",
    "event_to_json",
    "load_trace",
    "read_jsonl",
]
