"""Typed trace events.

Every observable moment of an evaluation — a round boundary, a rule
firing on a tuple, a tuple crossing a channel, a termination probe, a
worker's lifetime including failure, restart and replay — is one
:class:`TraceEvent`.  Events are deliberately
flat and JSON-friendly: ``kind`` plus a processor tag, an optional round
number, an optional wall-clock timestamp and a small payload dict.  The
simulator never supplies timestamps, so its event streams are exactly
reproducible (byte-identical JSONL for equal seeds); the real
multiprocessing executor does, so wall-clock timelines can be drawn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

__all__ = [
    "CHECKPOINT",
    "EVENT_KINDS",
    "LOG_TRUNCATE",
    "PROBE",
    "REPLAY",
    "RESTORE",
    "ROUND_END",
    "ROUND_START",
    "RULE_FIRED",
    "RUN_END",
    "RUN_START",
    "SPAN",
    "TUPLE_DROPPED",
    "TUPLE_RECEIVED",
    "TUPLE_SENT",
    "TraceEvent",
    "WORKER_DOWN",
    "WORKER_EXIT",
    "WORKER_RESTART",
    "WORKER_SPAWN",
    "WORKER_STALLED",
]

RUN_START = "run_start"
RUN_END = "run_end"
ROUND_START = "round_start"
ROUND_END = "round_end"
RULE_FIRED = "rule_fired"
TUPLE_SENT = "tuple_sent"
TUPLE_RECEIVED = "tuple_received"
TUPLE_DROPPED = "tuple_dropped"
PROBE = "probe"
WORKER_SPAWN = "worker_spawn"
WORKER_EXIT = "worker_exit"
WORKER_DOWN = "worker_down"
WORKER_RESTART = "worker_restart"
WORKER_STALLED = "worker_stalled"
REPLAY = "replay"
CHECKPOINT = "checkpoint"
RESTORE = "restore"
LOG_TRUNCATE = "log_truncate"
SPAN = "span"

EVENT_KINDS = frozenset({
    RUN_START, RUN_END, ROUND_START, ROUND_END, RULE_FIRED,
    TUPLE_SENT, TUPLE_RECEIVED, TUPLE_DROPPED, PROBE,
    WORKER_SPAWN, WORKER_EXIT, WORKER_DOWN, WORKER_RESTART,
    WORKER_STALLED, REPLAY, CHECKPOINT, RESTORE, LOG_TRUNCATE, SPAN,
})

# Keys of the flat dict form that are *not* payload entries.
_RESERVED = ("kind", "proc", "round", "ts")


@dataclass(frozen=True)
class TraceEvent:
    """One observed moment of an evaluation.

    Attributes:
        kind: one of :data:`EVENT_KINDS`.
        proc: name-safe processor tag (see
            :func:`repro.parallel.naming.processor_tag`), or ``None``
            for cluster-level and sequential events.
        round: round/iteration number the event belongs to, if any.
        data: kind-specific payload (e.g. ``rule``, ``pred``, ``dst``).
        ts: wall-clock timestamp, or ``None`` for deterministic traces.
    """

    kind: str
    proc: Optional[str] = None
    round: Optional[int] = None
    data: Mapping[str, object] = field(default_factory=dict)
    ts: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        """Flatten to a JSON-serialisable dict (``None`` fields omitted)."""
        flat: Dict[str, object] = {"kind": self.kind}
        if self.proc is not None:
            flat["proc"] = self.proc
        if self.round is not None:
            flat["round"] = self.round
        if self.ts is not None:
            flat["ts"] = self.ts
        for key, value in self.data.items():
            if key not in _RESERVED:
                flat[key] = value
        return flat

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "TraceEvent":
        """Rebuild an event from its flat dict form."""
        data = {key: value for key, value in payload.items()
                if key not in _RESERVED}
        return cls(kind=str(payload["kind"]),
                   proc=payload.get("proc"),  # type: ignore[arg-type]
                   round=payload.get("round"),  # type: ignore[arg-type]
                   data=data,
                   ts=payload.get("ts"))  # type: ignore[arg-type]
