"""Replay a trace into timelines, histograms and a makespan breakdown.

The report layer is the read side of :mod:`repro.obs`: it consumes an
event stream (a JSONL file or an in-memory list) and reconstructs the
same per-processor/per-round counters :class:`~repro.parallel.metrics.
ParallelMetrics` accumulates during a live run — so a traced run can be
audited after the fact, and the two must agree exactly (the test suite
asserts they do).  Rendering is deliberately terminal-plain: ASCII
timelines, bar histograms, a channel heatmap and a cost-model makespan
breakdown consistent with :class:`~repro.parallel.metrics.CostModel`.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

if TYPE_CHECKING:  # import lazily at runtime: obs must not depend on parallel
    from ..parallel.metrics import CostModel

from .events import (
    CHECKPOINT,
    LOG_TRUNCATE,
    PROBE,
    REPLAY,
    RESTORE,
    ROUND_END,
    RULE_FIRED,
    RUN_START,
    TUPLE_DROPPED,
    TUPLE_RECEIVED,
    TUPLE_SENT,
    TraceEvent,
    WORKER_DOWN,
    WORKER_RESTART,
    WORKER_SPAWN,
)
from .sinks import read_jsonl

__all__ = ["TraceReport", "load_trace"]

_BAR_CHARS = " .:-=+*#%@"


def load_trace(path: str) -> "TraceReport":
    """Build a report from a JSONL trace file."""
    return TraceReport(list(read_jsonl(path)))


def _bar(value: float, peak: float, width: int = 30) -> str:
    if peak <= 0:
        return ""
    return "#" * max(1 if value > 0 else 0, round(width * value / peak))


def _cell_char(value: float, peak: float) -> str:
    if value <= 0:
        return "."
    index = min(len(_BAR_CHARS) - 1,
                1 + int((len(_BAR_CHARS) - 2) * value / peak))
    return _BAR_CHARS[index]


class TraceReport:
    """Aggregated view of one traced run.

    Attributes:
        scheme: scheme label from the ``run_start`` event (or ``"?"``).
        executor: ``simulator`` / ``mp`` / ``sequential``.
        processors: ordered processor tags.
        rounds: highest round number seen.
        firings: per-processor firing counts (``None`` proc → ``"seq"``).
        firings_by_round: round → per-processor firing counts.
        rule_firings: rule label → firing count.
        sent: channel ``(src, dst)`` → tuples sent.
        sent_by_round / received_by_round: round → per-processor counts.
        received / dropped: per-processor receive / duplicate counts.
        round_loads: per-round ``(work, sent, received)`` load maps from
            ``round_end`` events (the makespan inputs).
        probes: number of termination-detection control events.
        worker_downs: per-processor count of detected deaths.
        restarts: per-processor count of recovery restarts.
        replayed: per-processor count of tuples re-sent during replay
            (attributed to the replaying sender).
        checkpoints: per-processor count of checkpoints shipped.
        checkpoint_bytes: per-processor approx checkpoint payload bytes.
        restores: per-processor count of restarts that resumed from a
            checkpoint instead of the base fragment.
        log_truncated: per-processor count of sent-log facts dropped
            after a peer's checkpoint watermark covered them.
    """

    def __init__(self, events: Sequence[TraceEvent]) -> None:
        self.events = list(events)
        self.scheme = "?"
        self.executor = "?"
        self.processors: List[str] = []
        self.rounds = 0
        self.firings: Counter = Counter()
        self.firings_by_round: Dict[int, Counter] = {}
        self.rule_firings: Counter = Counter()
        self.sent: Counter = Counter()
        self.sent_by_round: Dict[int, Counter] = {}
        self.received: Counter = Counter()
        self.received_by_round: Dict[int, Counter] = {}
        self.dropped: Counter = Counter()
        self.round_loads: Dict[int, Tuple[Mapping[str, float],
                                          Mapping[str, float],
                                          Mapping[str, float]]] = {}
        self.probes = 0
        self.worker_downs: Counter = Counter()
        self.restarts: Counter = Counter()
        self.replayed: Counter = Counter()
        self.checkpoints: Counter = Counter()
        self.checkpoint_bytes: Counter = Counter()
        self.restores: Counter = Counter()
        self.log_truncated: Counter = Counter()
        seen_procs: List[str] = []
        for event in self.events:
            proc = event.proc if event.proc is not None else "seq"
            round_ = event.round if event.round is not None else 0
            self.rounds = max(self.rounds, round_)
            if event.kind == RUN_START:
                self.scheme = str(event.data.get("scheme", self.scheme))
                self.executor = str(event.data.get("executor", self.executor))
                procs = event.data.get("processors")
                if isinstance(procs, (list, tuple)):
                    seen_procs.extend(str(p) for p in procs)
            elif event.kind == WORKER_SPAWN:
                seen_procs.append(proc)
            elif event.kind == RULE_FIRED:
                self.firings[proc] += 1
                self.firings_by_round.setdefault(round_, Counter())[proc] += 1
                self.rule_firings[str(event.data.get("rule", "?"))] += 1
                seen_procs.append(proc)
            elif event.kind == TUPLE_SENT:
                # Batched emitters collapse N tuples into one counted
                # event; weighting by the count keeps the report equal
                # to the live per-tuple accounting.
                count = int(event.data.get("count", 1))  # type: ignore[call-overload]
                self.sent[(proc, str(event.data.get("dst", "?")))] += count
                self.sent_by_round.setdefault(round_, Counter())[proc] += count
            elif event.kind == TUPLE_RECEIVED:
                count = int(event.data.get("count", 1))  # type: ignore[call-overload]
                self.received[proc] += count
                self.received_by_round.setdefault(
                    round_, Counter())[proc] += count
            elif event.kind == TUPLE_DROPPED:
                self.dropped[proc] += int(event.data.get("count", 1))  # type: ignore[call-overload]
            elif event.kind == ROUND_END:
                self.round_loads[round_] = (
                    event.data.get("work", {}),    # type: ignore[arg-type]
                    event.data.get("sent", {}),    # type: ignore[arg-type]
                    event.data.get("received", {}))  # type: ignore[arg-type]
            elif event.kind == PROBE:
                self.probes += 1
            elif event.kind == WORKER_DOWN:
                self.worker_downs[proc] += 1
            elif event.kind == WORKER_RESTART:
                self.restarts[proc] += 1
            elif event.kind == REPLAY:
                self.replayed[proc] += int(event.data.get("count", 0))  # type: ignore[call-overload]
            elif event.kind == CHECKPOINT:
                self.checkpoints[proc] += 1
                self.checkpoint_bytes[proc] += int(event.data.get("nbytes", 0))  # type: ignore[call-overload]
            elif event.kind == RESTORE:
                self.restores[proc] += 1
            elif event.kind == LOG_TRUNCATE:
                self.log_truncated[proc] += int(event.data.get("count", 0))  # type: ignore[call-overload]
        # Stable processor order: first appearance wins.
        for proc in seen_procs:
            if proc not in self.processors:
                self.processors.append(proc)

    # ------------------------------------------------------------------
    # Derived tables
    # ------------------------------------------------------------------
    def total_firings(self) -> int:
        """Firings summed over all processors."""
        return sum(self.firings.values())

    def total_sent(self) -> int:
        """Tuples that crossed a remote channel."""
        return sum(self.sent.values())

    def per_round_firings(self) -> List[Tuple[int, int]]:
        """``(round, total firings)`` rows, rounds ascending."""
        return [(round_, sum(counts.values()))
                for round_, counts in sorted(self.firings_by_round.items())]

    def makespan(self, cost: Optional[CostModel] = None) -> float:
        """Cost-model makespan replayed from the ``round_end`` loads.

        Matches :meth:`repro.parallel.metrics.ParallelMetrics.makespan`
        for the same run and cost model.
        """
        from ..parallel.metrics import CostModel
        cost = cost if cost is not None else CostModel()
        total = 0.0
        for round_ in sorted(self.round_loads):
            work, sent, received = self.round_loads[round_]
            peak = 0.0
            for proc in self.processors:
                load = (float(work.get(proc, 0.0))
                        + cost.send_cost * float(sent.get(proc, 0))
                        + cost.recv_cost * float(received.get(proc, 0)))
                peak = max(peak, load)
            total += peak + cost.round_overhead
        return total

    def makespan_breakdown(self, cost: Optional[CostModel] = None
                           ) -> List[Tuple[int, str, float, float]]:
        """Per-round ``(round, critical proc, peak load, cumulative)``."""
        from ..parallel.metrics import CostModel
        cost = cost if cost is not None else CostModel()
        rows: List[Tuple[int, str, float, float]] = []
        cumulative = 0.0
        for round_ in sorted(self.round_loads):
            work, sent, received = self.round_loads[round_]
            peak, critical = 0.0, "-"
            for proc in self.processors:
                load = (float(work.get(proc, 0.0))
                        + cost.send_cost * float(sent.get(proc, 0))
                        + cost.recv_cost * float(received.get(proc, 0)))
                if load > peak:
                    peak, critical = load, proc
            cumulative += peak + cost.round_overhead
            rows.append((round_, critical, peak, cumulative))
        return rows

    def summary(self) -> Dict[str, object]:
        """A flat, JSON-compatible summary (``BENCH_*.json`` shape).

        Keys mirror :meth:`~repro.parallel.metrics.ParallelMetrics.
        summary` where both exist, so traced and live numbers can be
        diffed directly.
        """
        return {
            "scheme": self.scheme,
            "executor": self.executor,
            "processors": len(self.processors),
            "rounds": self.rounds,
            "events": len(self.events),
            "firings": self.total_firings(),
            "firings_by_proc": {proc: self.firings.get(proc, 0)
                                for proc in self.processors},
            "sent": self.total_sent(),
            "received": sum(self.received.values()),
            "dup_dropped": sum(self.dropped.values()),
            "channels_used": sum(1 for count in self.sent.values()
                                 if count > 0),
            "control_messages": self.probes,
            "worker_down": sum(self.worker_downs.values()),
            "restarts": sum(self.restarts.values()),
            "replayed": sum(self.replayed.values()),
            "checkpoints": sum(self.checkpoints.values()),
            "checkpoint_bytes": sum(self.checkpoint_bytes.values()),
            "restores": sum(self.restores.values()),
            "log_truncated": sum(self.log_truncated.values()),
            "makespan": self.makespan(),
        }

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def timeline(self) -> str:
        """Per-processor activity timeline, one column per round.

        Cell intensity scales with the processor's firings that round;
        ``.`` marks an idle round.
        """
        if not self.processors:
            return "(no processor activity)"
        rounds = range(0, self.rounds + 1)
        peak = max((count for counts in self.firings_by_round.values()
                    for count in counts.values()), default=0)
        width = max([len(proc) for proc in self.processors] + [len("round")])
        lines = [f"{'round'.rjust(width)}  "
                 + "".join(str(r % 10) for r in rounds)]
        for proc in self.processors:
            cells = "".join(
                _cell_char(self.firings_by_round.get(r, {}).get(proc, 0),
                           peak)
                for r in rounds)
            lines.append(f"{proc.rjust(width)}  {cells}")
        return "\n".join(lines)

    def firing_histogram(self) -> str:
        """Total firings per round as an ASCII bar chart."""
        rows = self.per_round_firings()
        if not rows:
            return "(no firings)"
        peak = max(count for _, count in rows)
        return "\n".join(f"round {round_:>4}  {count:>6}  {_bar(count, peak)}"
                         for round_, count in rows)

    def comm_histogram(self) -> str:
        """Tuples sent per round as an ASCII bar chart."""
        rows = [(round_, sum(counts.values()))
                for round_, counts in sorted(self.sent_by_round.items())]
        if not rows:
            return "(no communication)"
        peak = max(count for _, count in rows)
        return "\n".join(f"round {round_:>4}  {count:>6}  {_bar(count, peak)}"
                         for round_, count in rows)

    def channel_heatmap(self) -> str:
        """Sender × receiver matrix of tuples sent."""
        if not self.sent:
            return "(no channel traffic)"
        procs = self.processors
        width = max([len(p) for p in procs] + [5])
        peak = max(self.sent.values())
        header = " " * width + " " + " ".join(p.rjust(width) for p in procs)
        lines = [header]
        for src in procs:
            cells = []
            for dst in procs:
                count = self.sent.get((src, dst), 0)
                cells.append((str(count) if count else ".").rjust(width))
            lines.append(f"{src.rjust(width)} " + " ".join(cells))
        lines.append(f"(peak channel: {peak} tuples)")
        return "\n".join(lines)

    def fault_log(self) -> str:
        """Chronological narrative of failure/recovery events.

        Lists every ``worker_down`` / ``worker_restart`` / ``replay`` /
        ``checkpoint`` / ``restore`` / ``log_truncate`` event in stream
        order, so a traced run under fault injection can be audited
        step by step.
        """
        lines: List[str] = []
        for event in self.events:
            proc = event.proc if event.proc is not None else "?"
            if event.kind == WORKER_DOWN:
                detail = ", ".join(f"{k}={v}" for k, v in
                                   sorted(event.data.items()))
                lines.append(f"  DOWN     {proc}"
                             + (f"  ({detail})" if detail else ""))
            elif event.kind == WORKER_RESTART:
                detail = ", ".join(f"{k}={v}" for k, v in
                                   sorted(event.data.items()))
                lines.append(f"  RESTART  {proc}"
                             + (f"  ({detail})" if detail else ""))
            elif event.kind == REPLAY:
                dst = event.data.get("dst", "?")
                count = event.data.get("count", "?")
                lines.append(f"  REPLAY   {proc} -> {dst}  ({count} tuples)")
            elif event.kind == CHECKPOINT:
                facts = event.data.get("facts", "?")
                nbytes = event.data.get("nbytes", "?")
                lines.append(f"  CHECKPT  {proc}  ({facts} facts, "
                             f"~{nbytes} bytes)")
            elif event.kind == RESTORE:
                facts = event.data.get("facts", "?")
                lines.append(f"  RESTORE  {proc}  ({facts} facts "
                             f"from checkpoint)")
            elif event.kind == LOG_TRUNCATE:
                dst = event.data.get("dst", "?")
                count = event.data.get("count", "?")
                lines.append(f"  TRUNCATE {proc} -> {dst}  ({count} tuples)")
        if not lines:
            return "(no failures)"
        return "\n".join(lines)

    def render(self, cost: Optional[CostModel] = None) -> str:
        """The full human-readable report."""
        parts = [
            f"trace report — scheme={self.scheme} executor={self.executor} "
            f"processors={len(self.processors)} rounds={self.rounds} "
            f"events={len(self.events)}",
            "",
            "per-processor timeline (firings per round):",
            self.timeline(),
            "",
            "firings per round:",
            self.firing_histogram(),
            "",
            "tuples sent per round:",
            self.comm_histogram(),
            "",
            "channel heatmap (tuples sent, sender rows -> receiver columns):",
            self.channel_heatmap(),
        ]
        if (self.worker_downs or self.restarts or self.replayed
                or self.checkpoints or self.restores or self.log_truncated):
            parts.extend(["", "failures and recovery:", self.fault_log()])
        breakdown = self.makespan_breakdown(cost)
        if breakdown:
            parts.extend(["", "makespan breakdown (cost model):"])
            for round_, critical, peak, cumulative in breakdown:
                parts.append(f"  round {round_:>4}  peak {peak:>8.1f} "
                             f"on {critical:<8} cumulative {cumulative:>10.1f}")
            parts.append(f"  makespan: {self.makespan(cost):.1f} work units")
        top = self.rule_firings.most_common(5)
        if top:
            parts.extend(["", "hottest rules:"])
            for rule, count in top:
                parts.append(f"  {count:>7}  {rule}")
        return "\n".join(parts)
