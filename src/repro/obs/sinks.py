"""Event sinks: where trace events go.

Three shapes cover the use cases:

* :class:`InMemorySink` — a plain list, for tests and for workers that
  batch events before shipping them over a queue;
* :class:`JsonlSink` — one JSON object per line, the interchange format
  consumed by ``repro trace`` and :mod:`repro.obs.report`.  Keys are
  sorted and separators fixed, so a deterministic event stream yields a
  byte-identical file;
* :class:`AggregateSink` — a compact aggregated form that never stores
  individual events, only ``(kind, proc)`` and ``(kind, round)``
  counters; the cheap always-on option for long runs.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import IO, Dict, Iterator, List, Optional, Tuple, Union

from .events import TUPLE_DROPPED, TUPLE_RECEIVED, TUPLE_SENT, TraceEvent

# Event kinds whose optional ``count`` payload means "this one event
# stands for N tuples" (batched emitters).  Only tuple-flow kinds are
# weighted: REPLAY also carries a count but has always meant one event
# per replay burst, and its count is consumed by the report layer.
_COUNTED_KINDS = frozenset((TUPLE_SENT, TUPLE_RECEIVED, TUPLE_DROPPED))

__all__ = [
    "AggregateSink",
    "InMemorySink",
    "JsonlSink",
    "TraceSink",
    "event_to_json",
    "read_jsonl",
]


def _json_default(value: object) -> object:
    if isinstance(value, (set, frozenset)):
        return sorted(value, key=repr)
    return str(value)


def event_to_json(event: TraceEvent) -> str:
    """Canonical one-line JSON encoding of an event."""
    return json.dumps(event.to_dict(), sort_keys=True,
                      separators=(",", ":"), default=_json_default)


def read_jsonl(path: str) -> Iterator[TraceEvent]:
    """Yield the events of a JSONL trace file.

    Raises:
        ReproError: if a line is not valid JSON.
    """
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                from ..errors import ReproError
                raise ReproError(
                    f"{path}:{number}: not a JSONL trace ({error})") from error
            yield TraceEvent.from_dict(payload)


class TraceSink:
    """Abstract sink; subclasses consume :class:`TraceEvent` objects."""

    def emit(self, event: TraceEvent) -> None:
        """Consume one event."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any resources (idempotent)."""


class InMemorySink(TraceSink):
    """Collects events in a list (tests, worker-side batching)."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def drain(self) -> List[TraceEvent]:
        """Return and clear the buffered events."""
        drained, self.events = self.events, []
        return drained

    def count(self, kind: str) -> int:
        """Number of buffered events of ``kind``."""
        return sum(1 for event in self.events if event.kind == kind)

    def __len__(self) -> int:
        return len(self.events)


class JsonlSink(TraceSink):
    """Writes one canonical JSON object per line.

    Args:
        target: a path (opened and owned by the sink) or an open
            text-mode file object (borrowed; not closed).
    """

    def __init__(self, target: Union[str, IO[str]]) -> None:
        if isinstance(target, str):
            self._handle: IO[str] = open(target, "w", encoding="utf-8")
            self._owned = True
        else:
            self._handle = target
            self._owned = False
        self.lines_written = 0

    def emit(self, event: TraceEvent) -> None:
        self._handle.write(event_to_json(event) + "\n")
        self.lines_written += 1

    def close(self) -> None:
        if self._owned and not self._handle.closed:
            self._handle.close()
        elif not self._handle.closed:
            self._handle.flush()


class AggregateSink(TraceSink):
    """Stores only counters, never events — the compact aggregated form.

    Attributes:
        by_kind: total events per kind.
        by_proc: events per ``(kind, proc)``.
        by_round: events per ``(kind, round)``.
    """

    def __init__(self) -> None:
        self.by_kind: Counter = Counter()
        self.by_proc: Counter = Counter()
        self.by_round: Counter = Counter()
        self.first_ts: Optional[float] = None
        self.last_ts: Optional[float] = None

    def emit(self, event: TraceEvent) -> None:
        weight = 1
        if event.kind in _COUNTED_KINDS:
            count = event.data.get("count")
            if isinstance(count, int) and count > 0:
                weight = count
        self.by_kind[event.kind] += weight
        if event.proc is not None:
            self.by_proc[(event.kind, event.proc)] += weight
        if event.round is not None:
            self.by_round[(event.kind, event.round)] += weight
        if event.ts is not None:
            if self.first_ts is None:
                self.first_ts = event.ts
            self.last_ts = event.ts

    def as_dict(self) -> Dict[str, object]:
        """JSON-compatible snapshot of the aggregates."""
        payload: Dict[str, object] = {
            "by_kind": dict(self.by_kind),
            "by_proc": {f"{kind}@{proc}": count for (kind, proc), count
                        in sorted(self.by_proc.items())},
            "by_round": {f"{kind}@{round_}": count
                         for (kind, round_), count
                         in sorted(self.by_round.items())},
        }
        if self.first_ts is not None and self.last_ts is not None:
            payload["span_seconds"] = self.last_ts - self.first_ts
        return payload
