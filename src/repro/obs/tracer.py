"""The tracer: typed event emission with a zero-overhead default.

A :class:`Tracer` wraps a sink and exposes one method per event kind,
so call sites read like what happened (``tracer.rule_fired(...)``)
rather than dictionary plumbing.  The default everywhere is the
:data:`NULL_TRACER` singleton — a :class:`NullTracer` whose ``enabled``
flag is ``False`` and whose methods are no-ops, so instrumented hot
loops guard with a single attribute check::

    tracing = tracer.enabled
    for fact in plan.execute(...):
        if tracing:
            tracer.rule_fired(tag, plan.label, fact)

Timing: a tracer built with ``clock=None`` (the simulator's mode)
stamps nothing, making traces deterministic; ``clock=time.perf_counter``
(the multiprocessing mode) stamps every event.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, Mapping, Optional, Sequence

from .events import (
    CHECKPOINT,
    LOG_TRUNCATE,
    PROBE,
    REPLAY,
    RESTORE,
    ROUND_END,
    ROUND_START,
    RULE_FIRED,
    RUN_END,
    RUN_START,
    SPAN,
    TUPLE_DROPPED,
    TUPLE_RECEIVED,
    TUPLE_SENT,
    TraceEvent,
    WORKER_DOWN,
    WORKER_EXIT,
    WORKER_RESTART,
    WORKER_SPAWN,
    WORKER_STALLED,
)
from .sinks import TraceSink

__all__ = ["NULL_TRACER", "NullTracer", "Tracer", "ensure_tracer"]


class Tracer:
    """Emits typed events into a sink.

    Args:
        sink: where events go.
        clock: optional zero-argument callable returning seconds; when
            ``None`` (default) events carry no timestamp and the stream
            is deterministic.
    """

    enabled: bool = True

    def __init__(self, sink: TraceSink,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.sink = sink
        self.clock = clock
        self.current_round: Optional[int] = None

    # ------------------------------------------------------------------
    # Core emission
    # ------------------------------------------------------------------
    def emit(self, kind: str, proc: Optional[str] = None,
             round: Optional[int] = None, **data: object) -> None:
        """Emit one event; ``round`` defaults to :attr:`current_round`."""
        self.sink.emit(TraceEvent(
            kind=kind, proc=proc,
            round=self.current_round if round is None else round,
            data=data,
            ts=self.clock() if self.clock is not None else None))

    def ingest(self, payload: Mapping[str, object]) -> None:
        """Forward an event received in flat dict form (worker batches)."""
        self.sink.emit(TraceEvent.from_dict(payload))

    def close(self) -> None:
        """Close the underlying sink."""
        self.sink.close()

    # ------------------------------------------------------------------
    # Typed events
    # ------------------------------------------------------------------
    def run_start(self, scheme: str, processors: Sequence[str],
                  executor: str, **data: object) -> None:
        """A run begins (``executor``: simulator / mp / sequential).

        Extra payload entries record resolved run configuration — the
        mp executor logs its derived ack deadline and recovery policy
        here so a trace shows which values the run actually used.
        """
        self.emit(RUN_START, scheme=scheme, processors=list(processors),
                  executor=executor, **data)

    def run_end(self, **data: object) -> None:
        """A run completed; payload carries final aggregates."""
        self.emit(RUN_END, **data)

    def round_start(self, round: int) -> None:
        """A global round begins; subsequent events default to it."""
        self.current_round = round
        self.emit(ROUND_START, round=round)

    def round_end(self, round: int, **data: object) -> None:
        """A global round ended; payload carries per-processor loads."""
        self.emit(ROUND_END, round=round, **data)

    def rule_fired(self, proc: Optional[str], rule: str,
                   fact: Optional[tuple] = None) -> None:
        """One successful ground substitution (before deduplication)."""
        if fact is None:
            self.emit(RULE_FIRED, proc=proc, rule=rule)
        else:
            self.emit(RULE_FIRED, proc=proc, rule=rule, fact=list(fact))

    def tuple_sent(self, proc: str, dst: str, pred: str,
                   count: int = 1) -> None:
        """``count`` tuples were put on the remote channel ``proc -> dst``.

        Batched call sites pass ``count > 1`` instead of looping; the
        event then carries a ``count`` payload and reports/aggregates
        weight by it.  ``count == 1`` emits the historical payload
        unchanged, so single-tuple streams stay byte-identical.
        """
        if count == 1:
            self.emit(TUPLE_SENT, proc=proc, dst=dst, pred=pred)
        else:
            self.emit(TUPLE_SENT, proc=proc, dst=dst, pred=pred, count=count)

    def tuple_received(self, proc: str, src: str, pred: str,
                       count: int = 1) -> None:
        """``count`` tuples were taken off the channel ``src -> proc``."""
        if count == 1:
            self.emit(TUPLE_RECEIVED, proc=proc, src=src, pred=pred)
        else:
            self.emit(TUPLE_RECEIVED, proc=proc, src=src, pred=pred,
                      count=count)

    def tuple_dropped(self, proc: str, pred: str, count: int = 1) -> None:
        """``count`` received tuples were discarded as duplicates."""
        if count == 1:
            self.emit(TUPLE_DROPPED, proc=proc, pred=pred)
        else:
            self.emit(TUPLE_DROPPED, proc=proc, pred=pred, count=count)

    def probe(self, proc: Optional[str] = None, **data: object) -> None:
        """A termination-detection control message (token hop / wave)."""
        self.emit(PROBE, proc=proc, **data)

    def worker_spawn(self, proc: str) -> None:
        """A processor's executor came up."""
        self.emit(WORKER_SPAWN, proc=proc)

    def worker_exit(self, proc: str, **data: object) -> None:
        """A processor's executor finished; payload carries its counters."""
        self.emit(WORKER_EXIT, proc=proc, **data)

    def worker_down(self, proc: str, **data: object) -> None:
        """A processor's executor was found dead (crash or injected kill)."""
        self.emit(WORKER_DOWN, proc=proc, **data)

    def worker_restart(self, proc: str, **data: object) -> None:
        """A dead processor was restarted from its base fragment."""
        self.emit(WORKER_RESTART, proc=proc, **data)

    def worker_stalled(self, proc: str, lag: int, **data: object) -> None:
        """A processor with pending input was throttled by the SSP
        staleness bound (emitted on entry to the stalled state, not per
        stalled tick — keeps traces small)."""
        self.emit(WORKER_STALLED, proc=proc, lag=lag, **data)

    def replay(self, proc: str, dst: str, count: int) -> None:
        """``proc`` re-sent its logged tuples to a restarted ``dst``."""
        self.emit(REPLAY, proc=proc, dst=dst, count=count)

    def checkpoint(self, proc: str, facts: int, nbytes: int,
                   epoch: int) -> None:
        """``proc`` shipped a checkpoint (``facts`` tuples, approx
        ``nbytes`` under the deterministic size model) to the
        coordinator's slot for it."""
        self.emit(CHECKPOINT, proc=proc, facts=facts, nbytes=nbytes,
                  epoch=epoch)

    def restore(self, proc: str, facts: int, epoch: int) -> None:
        """A restarted ``proc`` resumed from its last checkpoint instead
        of its base fragment."""
        self.emit(RESTORE, proc=proc, facts=facts, epoch=epoch)

    def log_truncate(self, proc: str, dst: str, count: int) -> None:
        """``proc`` dropped ``count`` acknowledged facts from its
        sent-log for ``dst`` (they are covered by ``dst``'s checkpoint
        watermark and will never need replaying)."""
        self.emit(LOG_TRUNCATE, proc=proc, dst=dst, count=count)

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, proc: Optional[str] = None) -> Iterator[None]:
        """Time a block; emits one ``span`` event when the block exits.

        With no clock the event still marks that the phase happened,
        just without a duration (determinism is preserved).
        """
        started = self.clock() if self.clock is not None else None
        try:
            yield
        finally:
            if started is not None:
                assert self.clock is not None
                self.emit(SPAN, proc=proc, name=name,
                          seconds=self.clock() - started)
            else:
                self.emit(SPAN, proc=proc, name=name)


class NullTracer(Tracer):
    """The zero-overhead default: every operation is a no-op."""

    enabled = False

    def __init__(self) -> None:  # no sink, no clock
        self.sink = None  # type: ignore[assignment]
        self.clock = None
        self.current_round = None

    def emit(self, kind: str, proc: Optional[str] = None,
             round: Optional[int] = None, **data: object) -> None:
        pass

    def ingest(self, payload: Mapping[str, object]) -> None:
        pass

    def close(self) -> None:
        pass

    @contextmanager
    def span(self, name: str, proc: Optional[str] = None) -> Iterator[None]:
        yield


NULL_TRACER = NullTracer()


def ensure_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Normalise an optional tracer argument to a usable tracer."""
    return tracer if tracer is not None else NULL_TRACER
