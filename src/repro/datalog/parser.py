"""A tokenizer and recursive-descent parser for Datalog source text.

Concrete syntax::

    anc(X, Y) :- par(X, Y).              % a rule
    anc(X, Y) :- par(X, Z), anc(Z, Y).   % recursion
    par(ann, bob).                       % a fact rule

    * identifiers starting with an upper-case letter or ``_`` are variables;
    * identifiers starting with a lower-case letter are symbolic constants
      (represented as Python strings);
    * integer literals and single/double-quoted strings are constants;
    * ``%`` and ``#`` start comments running to end of line;
    * negation is not part of the paper's language and is rejected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..errors import DatalogSyntaxError
from .atom import Atom
from .program import Program
from .rule import Rule
from .term import Constant, Term, Variable

__all__ = ["parse_program", "parse_rule", "parse_atom", "tokenize", "Token"]

_PUNCT = {":-", "(", ")", ",", "."}


@dataclass(frozen=True)
class Token:
    """A lexical token with source position (1-based)."""

    kind: str  # 'punct' | 'variable' | 'name' | 'integer' | 'string' | 'eof'
    text: str
    line: int
    column: int


def tokenize(source: str) -> List[Token]:
    """Split ``source`` into tokens.

    Raises:
        DatalogSyntaxError: on an unrecognised character or unterminated
            string literal.
    """
    tokens: List[Token] = []
    line, column = 1, 1
    index, length = 0, len(source)

    def advance(text: str) -> None:
        nonlocal line, column
        for char in text:
            if char == "\n":
                line += 1
                column = 1
            else:
                column += 1

    while index < length:
        char = source[index]
        if char in " \t\r\n":
            advance(char)
            index += 1
            continue
        if char in "%#":
            end = source.find("\n", index)
            if end == -1:
                end = length
            advance(source[index:end])
            index = end
            continue
        if source.startswith(":-", index):
            tokens.append(Token("punct", ":-", line, column))
            advance(":-")
            index += 2
            continue
        if char in "(),.":
            tokens.append(Token("punct", char, line, column))
            advance(char)
            index += 1
            continue
        if char in "'\"":
            end = source.find(char, index + 1)
            if end == -1:
                raise DatalogSyntaxError("unterminated string literal", line, column)
            text = source[index + 1:end]
            tokens.append(Token("string", text, line, column))
            advance(source[index:end + 1])
            index = end + 1
            continue
        if char.isdigit() or (char == "-" and index + 1 < length
                              and source[index + 1].isdigit()):
            end = index + 1
            while end < length and source[end].isdigit():
                end += 1
            tokens.append(Token("integer", source[index:end], line, column))
            advance(source[index:end])
            index = end
            continue
        if char.isalpha() or char == "_":
            end = index
            while end < length and (source[end].isalnum() or source[end] == "_"):
                end += 1
            text = source[index:end]
            kind = "variable" if (char.isupper() or char == "_") else "name"
            tokens.append(Token(kind, text, line, column))
            advance(text)
            index = end
            continue
        if char == "!" or source.startswith("not ", index):
            raise DatalogSyntaxError(
                "negation is not part of the paper's Datalog language",
                line, column)
        raise DatalogSyntaxError(f"unexpected character {char!r}", line, column)

    tokens.append(Token("eof", "", line, column))
    return tokens


class _Parser:
    """Recursive-descent parser over a token list."""

    def __init__(self, tokens: Sequence[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _expect(self, text: str) -> Token:
        token = self._next()
        if token.kind == "eof" or token.text != text:
            raise DatalogSyntaxError(
                f"expected {text!r}, found {token.text or 'end of input'!r}",
                token.line, token.column)
        return token

    def parse_term(self) -> Term:
        token = self._next()
        if token.kind == "variable":
            return Variable(token.text)
        if token.kind == "name":
            return Constant(token.text)
        if token.kind == "integer":
            return Constant(int(token.text))
        if token.kind == "string":
            return Constant(token.text)
        raise DatalogSyntaxError(
            f"expected a term, found {token.text or 'end of input'!r}",
            token.line, token.column)

    def parse_atom(self) -> Atom:
        token = self._next()
        if token.kind not in ("name", "variable"):
            raise DatalogSyntaxError(
                f"expected a predicate name, found {token.text or 'end of input'!r}",
                token.line, token.column)
        if token.kind == "variable":
            raise DatalogSyntaxError(
                f"predicate names must start with a lower-case letter: {token.text!r}",
                token.line, token.column)
        predicate = token.text
        self._expect("(")
        terms = [self.parse_term()]
        while self._peek().text == ",":
            self._next()
            terms.append(self.parse_term())
        self._expect(")")
        return Atom(predicate, terms)

    def parse_rule(self) -> Rule:
        head = self.parse_atom()
        token = self._next()
        if token.text == ".":
            return Rule(head)
        if token.text != ":-":
            raise DatalogSyntaxError(
                f"expected ':-' or '.', found {token.text or 'end of input'!r}",
                token.line, token.column)
        body = [self.parse_atom()]
        while self._peek().text == ",":
            self._next()
            body.append(self.parse_atom())
        self._expect(".")
        return Rule(head, body)

    def parse_program(self, validate: bool = True) -> Program:
        rules: List[Rule] = []
        while self._peek().kind != "eof":
            rules.append(self.parse_rule())
        return Program(rules, validate=validate)


def parse_program(source: str, validate: bool = True) -> Program:
    """Parse Datalog source text into a :class:`Program`.

    Args:
        source: the program text.
        validate: when True (default), check safety and arity consistency.

    Raises:
        DatalogSyntaxError: on malformed input.
        ProgramValidationError: on semantic violations (when validating).
    """
    return _Parser(tokenize(source)).parse_program(validate=validate)


def parse_rule(source: str) -> Rule:
    """Parse a single rule (terminated by ``.``)."""
    parser = _Parser(tokenize(source))
    rule = parser.parse_rule()
    trailing = parser._peek()
    if trailing.kind != "eof":
        raise DatalogSyntaxError(
            f"unexpected trailing input {trailing.text!r}",
            trailing.line, trailing.column)
    return rule


def parse_atom(source: str) -> Atom:
    """Parse a single atom, e.g. ``anc(X, Y)``."""
    parser = _Parser(tokenize(source))
    atom = parser.parse_atom()
    trailing = parser._peek()
    if trailing.kind != "eof":
        raise DatalogSyntaxError(
            f"unexpected trailing input {trailing.text!r}",
            trailing.line, trailing.column)
    return atom
