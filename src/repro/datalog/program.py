"""Programs: finite ordered collections of rules.

A Datalog program partitions its predicate symbols into *base*
(extensional) predicates — those that never appear in a rule head — and
*derived* (intensional) predicates (paper, Section 2).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Sequence, Tuple

from ..errors import ProgramValidationError, UnsafeRuleError
from .atom import Atom
from .rule import Rule

__all__ = ["Program"]


class Program:
    """An immutable, validated Datalog program."""

    __slots__ = ("rules", "_arities")

    def __init__(self, rules: Sequence[Rule], validate: bool = True) -> None:
        self.rules: Tuple[Rule, ...] = tuple(rules)
        self._arities: Dict[str, int] = {}
        if validate:
            self._validate()
        else:
            self._collect_arities(strict=False)

    def _collect_arities(self, strict: bool) -> None:
        for rule in self.rules:
            for atom in (rule.head, *rule.body):
                known = self._arities.get(atom.predicate)
                if known is None:
                    self._arities[atom.predicate] = atom.arity
                elif strict and known != atom.arity:
                    raise ProgramValidationError(
                        f"predicate {atom.predicate} used with arities "
                        f"{known} and {atom.arity}")

    def _validate(self) -> None:
        self._collect_arities(strict=True)
        for rule in self.rules:
            if not rule.is_safe():
                raise UnsafeRuleError(f"unsafe rule: {rule}")

    @property
    def derived_predicates(self) -> Tuple[str, ...]:
        """Predicates appearing in some rule head, in first-use order."""
        seen = []
        for rule in self.rules:
            if rule.body and rule.head.predicate not in seen:
                seen.append(rule.head.predicate)
        return tuple(seen)

    @property
    def base_predicates(self) -> Tuple[str, ...]:
        """Predicates appearing only in rule bodies, in first-use order."""
        derived = set(self.derived_predicates)
        seen = []
        for rule in self.rules:
            for atom in rule.body:
                if atom.predicate not in derived and atom.predicate not in seen:
                    seen.append(atom.predicate)
        return tuple(seen)

    @property
    def predicates(self) -> Tuple[str, ...]:
        """All predicate symbols, derived first then base."""
        return self.derived_predicates + self.base_predicates

    def arity_of(self, predicate: str) -> int:
        """Return the arity of ``predicate``.

        Raises:
            KeyError: if the predicate does not occur in the program.
        """
        return self._arities[predicate]

    def rules_for(self, predicate: str) -> Tuple[Rule, ...]:
        """Return the rules whose head predicate is ``predicate``."""
        return tuple(r for r in self.rules if r.head.predicate == predicate)

    def facts(self) -> Tuple[Atom, ...]:
        """Return the heads of the fact rules (rules with empty bodies)."""
        return tuple(r.head for r in self.rules if not r.body)

    def proper_rules(self) -> Tuple[Rule, ...]:
        """Return the rules with non-empty bodies."""
        return tuple(r for r in self.rules if r.body)

    def extend(self, rules: Iterable[Rule]) -> "Program":
        """Return a new program with ``rules`` appended."""
        return Program(self.rules + tuple(rules))

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Program) and self.rules == other.rules

    def __hash__(self) -> int:
        return hash(self.rules)

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)

    def __repr__(self) -> str:
        return f"Program({list(self.rules)!r})"
