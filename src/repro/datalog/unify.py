"""Unification of terms and atoms.

Standard syntactic unification restricted to the flat term language of
Datalog (no function symbols), which makes the occurs check trivial.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .atom import Atom
from .substitution import Substitution
from .term import Term, Variable

__all__ = ["unify_terms", "unify_atoms", "mgu"]


def _resolve(term: Term, subst: Substitution) -> Term:
    """Follow variable bindings in ``subst`` until a fixpoint."""
    while isinstance(term, Variable):
        bound = subst.get(term)
        if bound is None or bound == term:
            return term
        term = bound
    return term


def unify_terms(left: Term, right: Term,
                substitution: Optional[Substitution] = None) -> Optional[Substitution]:
    """Unify two terms under an optional pre-existing substitution.

    Returns the extended substitution, or None if unification fails.
    """
    subst = substitution if substitution is not None else Substitution.empty()
    left = _resolve(left, subst)
    right = _resolve(right, subst)
    if left == right:
        return subst
    if isinstance(left, Variable):
        return subst.bind(left, right)
    if isinstance(right, Variable):
        return subst.bind(right, left)
    # Two distinct constants.
    return None


def unify_atoms(left: Atom, right: Atom,
                substitution: Optional[Substitution] = None) -> Optional[Substitution]:
    """Unify two atoms argument-wise.

    Returns the extended substitution, or None if the predicates or
    arities differ or some argument pair fails to unify.
    """
    if left.predicate != right.predicate or left.arity != right.arity:
        return None
    subst = substitution if substitution is not None else Substitution.empty()
    for l_term, r_term in zip(left.terms, right.terms):
        result = unify_terms(l_term, r_term, subst)
        if result is None:
            return None
        subst = result
    return subst


def mgu(atoms: Sequence[Atom]) -> Optional[Substitution]:
    """Return the most general unifier of a sequence of atoms, or None."""
    if not atoms:
        return Substitution.empty()
    subst: Optional[Substitution] = Substitution.empty()
    first = atoms[0]
    for atom in atoms[1:]:
        subst = unify_atoms(first, atom, subst)
        if subst is None:
            return None
    return subst
