"""Terms of the Datalog language: variables and constants.

A *term* is either a :class:`Variable` (written with a leading upper-case
letter or underscore in the concrete syntax) or a :class:`Constant`
wrapping an arbitrary hashable Python value (lower-case identifiers,
quoted strings and integers in the concrete syntax).
"""

from __future__ import annotations

from typing import Hashable, Union

__all__ = ["Variable", "Constant", "Term", "is_variable", "is_constant"]


class Variable:
    """A logical variable, identified by its name.

    Two variables are equal iff their names are equal, so the same
    variable object need not be shared across atoms of a rule.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("variable name must be non-empty")
        self.name = name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("var", self.name))

    def renamed(self, suffix: str) -> "Variable":
        """Return a fresh variable whose name carries ``suffix``."""
        return Variable(self.name + suffix)


class Constant:
    """A constant term wrapping a hashable Python value."""

    __slots__ = ("value",)

    def __init__(self, value: Hashable) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return self.value if self.value.isidentifier() else repr(self.value)
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Constant) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("const", self.value))


Term = Union[Variable, Constant]


def is_variable(term: object) -> bool:
    """Return True iff ``term`` is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: object) -> bool:
    """Return True iff ``term`` is a :class:`Constant`."""
    return isinstance(term, Constant)
