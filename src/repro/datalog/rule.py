"""Rules: a head atom, a body of atoms, and optional evaluable constraints.

Plain Datalog rules have an empty constraint list.  The parallelisation
rewrites of the paper (Sections 3, 6 and 7) attach *hash constraints*
such as ``h(v(r)) = i`` to rules; these are modelled as objects
implementing the :class:`Constraint` protocol so the sequential engine
can evaluate rewritten rules without knowing about discriminating
functions.
"""

from __future__ import annotations

from typing import Protocol, Sequence, Tuple, runtime_checkable

from .atom import Atom
from .substitution import Substitution
from .term import Variable

__all__ = ["Constraint", "Rule"]


@runtime_checkable
class Constraint(Protocol):
    """An evaluable side condition attached to a rule.

    A constraint restricts the ground substitutions under which a rule
    may fire.  Its :attr:`variables` must all occur in the rule body so
    that the constraint is evaluable once the body is matched.
    """

    @property
    def variables(self) -> Tuple[Variable, ...]:
        """The variables the constraint reads."""
        ...

    def satisfied(self, binding: Substitution) -> bool:
        """Return True iff the constraint holds under ``binding``.

        ``binding`` must bind every variable in :attr:`variables` to a
        constant.
        """
        ...


class Rule:
    """A Datalog rule ``head :- body[, constraints]``.

    A rule with an empty body (and no constraints) is a *fact rule*; its
    head must then be ground.
    """

    __slots__ = ("head", "body", "constraints")

    def __init__(self, head: Atom, body: Sequence[Atom] = (),
                 constraints: Sequence[Constraint] = ()) -> None:
        self.head = head
        self.body: Tuple[Atom, ...] = tuple(body)
        self.constraints: Tuple[Constraint, ...] = tuple(constraints)
        if not self.body and not head.is_ground():
            raise ValueError(f"fact rule head must be ground: {head}")

    def variables(self) -> Tuple[Variable, ...]:
        """Return all variables, in order of first occurrence (head first)."""
        seen = []
        for atom in (self.head, *self.body):
            for var in atom.variables():
                if var not in seen:
                    seen.append(var)
        return tuple(seen)

    def body_variables(self) -> Tuple[Variable, ...]:
        """Return the variables occurring in the body, in first-occurrence order."""
        seen = []
        for atom in self.body:
            for var in atom.variables():
                if var not in seen:
                    seen.append(var)
        return tuple(seen)

    def head_variables(self) -> Tuple[Variable, ...]:
        """Return the variables occurring in the head."""
        return self.head.variables()

    def is_safe(self) -> bool:
        """True iff every head and constraint variable occurs in the body."""
        body_vars = set(self.body_variables())
        if not set(self.head_variables()) <= body_vars:
            return False
        for constraint in self.constraints:
            if not set(constraint.variables) <= body_vars:
                return False
        return True

    def predicates(self) -> Tuple[str, ...]:
        """Return the predicate symbols of the body, in order, with duplicates."""
        return tuple(atom.predicate for atom in self.body)

    def body_atoms_of(self, predicate: str) -> Tuple[Atom, ...]:
        """Return the body atoms whose predicate symbol is ``predicate``."""
        return tuple(a for a in self.body if a.predicate == predicate)

    def with_constraints(self, constraints: Sequence[Constraint]) -> "Rule":
        """Return a copy with ``constraints`` appended."""
        return Rule(self.head, self.body, self.constraints + tuple(constraints))

    def with_body(self, body: Sequence[Atom]) -> "Rule":
        """Return a copy with the body replaced."""
        return Rule(self.head, body, self.constraints)

    def with_head(self, head: Atom) -> "Rule":
        """Return a copy with the head replaced."""
        return Rule(head, self.body, self.constraints)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Rule)
                and self.head == other.head
                and self.body == other.body
                and self.constraints == other.constraints)

    def __hash__(self) -> int:
        return hash((self.head, self.body, self.constraints))

    def __str__(self) -> str:
        if not self.body and not self.constraints:
            return f"{self.head}."
        parts = [str(atom) for atom in self.body]
        parts.extend(str(c) for c in self.constraints)
        return f"{self.head} :- {', '.join(parts)}."

    def __repr__(self) -> str:
        return f"Rule({self.head!r}, {list(self.body)!r}, {list(self.constraints)!r})"
