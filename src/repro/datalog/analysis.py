"""Static analysis of Datalog programs.

Provides the predicate dependency graph, recursion detection, and the
recognition of *linear sirups* — programs with one linear recursive rule
and one non-recursive exit rule — which Sections 3 through 6 of the
paper restrict their schemes to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Set, Tuple

import networkx as nx

from ..errors import NotASirupError
from .atom import Atom
from .program import Program
from .rule import Rule
from .term import Variable

__all__ = [
    "dependency_graph",
    "recursive_predicates",
    "is_recursive_rule",
    "recursion_components",
    "LinearSirup",
    "as_linear_sirup",
    "is_linear_sirup",
]


def dependency_graph(program: Program) -> "nx.DiGraph":
    """Return the predicate dependency graph.

    There is an edge ``q -> p`` when predicate ``q`` occurs in the body
    of a rule whose head predicate is ``p`` (i.e. ``q`` *derives* ``p``,
    paper Section 2).
    """
    graph = nx.DiGraph()
    for predicate in program.predicates:
        graph.add_node(predicate)
    for rule in program.proper_rules():
        for atom in rule.body:
            graph.add_edge(atom.predicate, rule.head.predicate)
    return graph


def recursive_predicates(program: Program) -> FrozenSet[str]:
    """Return the predicates that transitively derive themselves."""
    graph = dependency_graph(program)
    recursive: Set[str] = set()
    for component in nx.strongly_connected_components(graph):
        if len(component) > 1:
            recursive |= component
        else:
            (node,) = component
            if graph.has_edge(node, node):
                recursive.add(node)
    return frozenset(recursive)


def is_recursive_rule(rule: Rule, program: Program) -> bool:
    """True iff the head predicate transitively derives a body predicate.

    This is the paper's definition of a recursive rule (Section 2).
    """
    if not rule.body:
        return False
    graph = dependency_graph(program)
    head = rule.head.predicate
    reachable = nx.descendants(graph, head) | {head}
    return any(atom.predicate in reachable for atom in rule.body)


def recursion_components(program: Program) -> List[FrozenSet[str]]:
    """Return the SCCs of the dependency graph in topological order.

    Evaluating the program one component at a time, in this order, is
    the standard stratification of semi-naive evaluation for programs
    with several derived predicates.
    """
    graph = dependency_graph(program)
    condensation = nx.condensation(graph)
    ordered = []
    for node in nx.topological_sort(condensation):
        ordered.append(frozenset(condensation.nodes[node]["members"]))
    return ordered


@dataclass(frozen=True)
class LinearSirup:
    """The canonical decomposition of a linear sirup (paper, Section 2).

    Attributes:
        program: the original two-rule program.
        predicate: the derived predicate symbol ``t``.
        exit_rule: the non-recursive rule ``t(Z̄) :- s(Z̄)``.
        recursive_rule: the rule ``t(X̄) :- t(Ȳ), b1, ..., bk``.
        head_vars: ``X̄`` — the argument terms of the recursive head.
        body_vars: ``Ȳ`` — the argument terms of the recursive body atom.
        exit_vars: ``Z̄`` — the argument terms of the exit head.
        base_atoms: ``b1 ... bk`` in body order.
        recursive_atom: the unique ``t``-atom in the recursive body.
    """

    program: Program
    predicate: str
    exit_rule: Rule
    recursive_rule: Rule
    head_vars: Tuple[Variable, ...]
    body_vars: Tuple[Variable, ...]
    exit_vars: Tuple[Variable, ...]
    base_atoms: Tuple[Atom, ...]
    recursive_atom: Atom

    @property
    def base_predicates(self) -> Tuple[str, ...]:
        """Base predicate symbols of the program, in first-use order."""
        return self.program.base_predicates

    @property
    def arity(self) -> int:
        """Arity of the derived predicate."""
        return self.recursive_rule.head.arity


def _all_variables(atom: Atom) -> Tuple[Variable, ...]:
    """Arguments of ``atom`` as variables, or raise if any is a constant."""
    variables = []
    for term in atom.terms:
        if not isinstance(term, Variable):
            raise NotASirupError(
                f"sirup decomposition requires variable arguments, found {term}"
                f" in {atom}")
        variables.append(term)
    return tuple(variables)


def as_linear_sirup(program: Program) -> LinearSirup:
    """Decompose ``program`` as a linear sirup.

    Raises:
        NotASirupError: if the program is not a linear sirup: it must
            have exactly two rules with the same head predicate — one
            whose body contains no derived predicate (the exit rule) and
            one whose body contains exactly one occurrence of the head
            predicate (the recursive rule).
    """
    rules = program.proper_rules()
    if len(rules) != 2 or len(program.rules) != 2:
        raise NotASirupError(
            f"a linear sirup has exactly two rules, found {len(program.rules)}")
    first, second = rules
    if first.head.predicate != second.head.predicate:
        raise NotASirupError("both rules of a sirup must define the same predicate")
    predicate = first.head.predicate

    def occurrences(rule: Rule) -> int:
        return sum(1 for atom in rule.body if atom.predicate == predicate)

    if occurrences(first) == 0 and occurrences(second) == 1:
        exit_rule, recursive_rule = first, second
    elif occurrences(second) == 0 and occurrences(first) == 1:
        exit_rule, recursive_rule = second, first
    else:
        raise NotASirupError(
            "a linear sirup needs one exit rule and one rule with a single "
            f"recursive {predicate}-atom")

    derived = set(program.derived_predicates)
    for atom in exit_rule.body + recursive_rule.body:
        if atom.predicate in derived and atom.predicate != predicate:
            raise NotASirupError(
                f"sirup bodies may only use base predicates and {predicate}")

    (recursive_atom,) = recursive_rule.body_atoms_of(predicate)
    base_atoms = tuple(a for a in recursive_rule.body if a is not recursive_atom)
    return LinearSirup(
        program=program,
        predicate=predicate,
        exit_rule=exit_rule,
        recursive_rule=recursive_rule,
        head_vars=_all_variables(recursive_rule.head),
        body_vars=_all_variables(recursive_atom),
        exit_vars=_all_variables(exit_rule.head),
        base_atoms=base_atoms,
        recursive_atom=recursive_atom,
    )


def is_linear_sirup(program: Program) -> bool:
    """Return True iff ``program`` decomposes as a linear sirup."""
    try:
        as_linear_sirup(program)
    except NotASirupError:
        return False
    return True
