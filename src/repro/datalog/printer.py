"""Pretty-printing of Datalog objects back to concrete syntax.

``parse_program(format_program(p))`` is the identity for any program
produced by the parser (this round-trip is property-tested).
"""

from __future__ import annotations

from .atom import Atom
from .program import Program
from .rule import Rule
from .term import Term, Variable

__all__ = ["format_term", "format_atom", "format_rule", "format_program"]


def format_term(term: Term) -> str:
    """Render a term in concrete syntax."""
    if isinstance(term, Variable):
        return term.name
    value = term.value
    if isinstance(value, str):
        if value and value[0].islower() and value.isidentifier():
            return value
        return f"'{value}'"
    if isinstance(value, bool):
        # Booleans are not part of the concrete syntax; quote them.
        return f"'{value}'"
    if isinstance(value, int):
        return str(value)
    return f"'{value}'"


def format_atom(atom: Atom) -> str:
    """Render an atom in concrete syntax."""
    args = ", ".join(format_term(t) for t in atom.terms)
    return f"{atom.predicate}({args})"


def format_rule(rule: Rule) -> str:
    """Render a rule in concrete syntax.

    Constraints (which have no concrete syntax) are rendered as trailing
    comments so the output remains parseable.
    """
    if not rule.body:
        text = f"{format_atom(rule.head)}."
    else:
        body = ", ".join(format_atom(a) for a in rule.body)
        text = f"{format_atom(rule.head)} :- {body}."
    if rule.constraints:
        notes = "; ".join(str(c) for c in rule.constraints)
        text = f"{text}  % where {notes}"
    return text


def format_program(program: Program) -> str:
    """Render a program, one rule per line."""
    return "\n".join(format_rule(rule) for rule in program.rules)
