"""Atoms: a predicate symbol applied to a sequence of terms."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from .substitution import Substitution
from .term import Constant, Term, Variable

__all__ = ["Atom"]


class Atom:
    """An atom ``p(t1, ..., tn)``.

    Atoms are immutable and hashable.  A *ground* atom has a constant in
    every argument position and corresponds to a database fact.
    """

    __slots__ = ("predicate", "terms")

    def __init__(self, predicate: str, terms: Sequence[Term]) -> None:
        if not predicate:
            raise ValueError("predicate name must be non-empty")
        self.predicate = predicate
        self.terms: Tuple[Term, ...] = tuple(terms)

    @property
    def arity(self) -> int:
        """Number of argument positions."""
        return len(self.terms)

    def is_ground(self) -> bool:
        """Return True iff every argument is a constant."""
        return all(isinstance(t, Constant) for t in self.terms)

    def variables(self) -> Tuple[Variable, ...]:
        """Return the variables of this atom, in order of first occurrence."""
        seen = []
        for term in self.terms:
            if isinstance(term, Variable) and term not in seen:
                seen.append(term)
        return tuple(seen)

    def apply(self, substitution: Substitution) -> "Atom":
        """Return the atom with ``substitution`` applied to every argument."""
        return Atom(self.predicate, tuple(substitution.apply(t) for t in self.terms))

    def to_fact(self) -> Tuple[object, ...]:
        """Return the value tuple of a ground atom.

        Raises:
            ValueError: if the atom is not ground.
        """
        values = []
        for term in self.terms:
            if not isinstance(term, Constant):
                raise ValueError(f"atom {self} is not ground")
            values.append(term.value)
        return tuple(values)

    @classmethod
    def from_fact(cls, predicate: str, values: Iterable[object]) -> "Atom":
        """Build a ground atom from a predicate name and raw values."""
        return cls(predicate, tuple(Constant(v) for v in values))

    def rename(self, suffix: str) -> "Atom":
        """Return a copy with every variable renamed by appending ``suffix``."""
        renamed = tuple(
            t.renamed(suffix) if isinstance(t, Variable) else t for t in self.terms
        )
        return Atom(self.predicate, renamed)

    def with_predicate(self, predicate: str) -> "Atom":
        """Return a copy of this atom under a different predicate symbol."""
        return Atom(predicate, self.terms)

    def match(self, values: Sequence[object],
              substitution: Optional[Substitution] = None) -> Optional[Substitution]:
        """Match this atom's arguments against a tuple of raw values.

        Returns the extending substitution on success, or None if a
        constant argument disagrees or one variable would need two values.
        """
        if len(values) != len(self.terms):
            return None
        binding = substitution if substitution is not None else Substitution.empty()
        for term, value in zip(self.terms, values):
            if isinstance(term, Constant):
                if term.value != value:
                    return None
                continue
            bound = binding.get(term)
            if bound is None:
                binding = binding.bind(term, Constant(value))
            elif not (isinstance(bound, Constant) and bound.value == value):
                return None
        return binding

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Atom)
                and self.predicate == other.predicate
                and self.terms == other.terms)

    def __hash__(self) -> int:
        return hash((self.predicate, self.terms))

    def __str__(self) -> str:
        args = ", ".join(str(t) for t in self.terms)
        return f"{self.predicate}({args})"

    def __repr__(self) -> str:
        return f"Atom({self.predicate!r}, {list(self.terms)!r})"
