"""Substitutions: finite mappings from variables to terms.

A substitution ``θ = {v1/t1, ..., vn/tn}`` maps distinct variables to
terms (paper, Section 2).  A *ground* substitution maps every variable
to a constant.  Substitutions are immutable; :meth:`Substitution.bind`
returns an extended copy.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from .term import Constant, Term, Variable

__all__ = ["Substitution"]


class Substitution:
    """An immutable mapping from :class:`Variable` to :class:`Term`."""

    __slots__ = ("_mapping",)

    def __init__(self, mapping: Optional[Mapping[Variable, Term]] = None) -> None:
        self._mapping: Dict[Variable, Term] = dict(mapping) if mapping else {}

    @classmethod
    def empty(cls) -> "Substitution":
        """Return the empty substitution."""
        return cls()

    def get(self, var: Variable) -> Optional[Term]:
        """Return the term bound to ``var``, or None if unbound."""
        return self._mapping.get(var)

    def bind(self, var: Variable, term: Term) -> "Substitution":
        """Return a new substitution with ``var`` additionally bound to ``term``.

        Raises:
            ValueError: if ``var`` is already bound to a different term.
        """
        existing = self._mapping.get(var)
        if existing is not None:
            if existing == term:
                return self
            raise ValueError(f"variable {var} already bound to {existing}")
        extended = dict(self._mapping)
        extended[var] = term
        return Substitution(extended)

    def apply(self, term: Term) -> Term:
        """Apply the substitution to a single term."""
        if isinstance(term, Variable):
            return self._mapping.get(term, term)
        return term

    def is_ground(self) -> bool:
        """Return True iff every bound term is a constant."""
        return all(isinstance(t, Constant) for t in self._mapping.values())

    def domain(self) -> Iterable[Variable]:
        """Return the variables bound by this substitution."""
        return self._mapping.keys()

    def items(self) -> Iterable[Tuple[Variable, Term]]:
        """Return the (variable, term) pairs of this substitution."""
        return self._mapping.items()

    def compose(self, other: "Substitution") -> "Substitution":
        """Return the composition ``self ∘ other``.

        Applying the result is equivalent to applying ``self`` first and
        ``other`` to the outcome.
        """
        composed: Dict[Variable, Term] = {}
        for var, term in self._mapping.items():
            composed[var] = other.apply(term)
        for var, term in other._mapping.items():
            composed.setdefault(var, term)
        return Substitution(composed)

    def __contains__(self, var: Variable) -> bool:
        return var in self._mapping

    def __len__(self) -> int:
        return len(self._mapping)

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._mapping)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Substitution) and self._mapping == other._mapping

    def __hash__(self) -> int:
        return hash(frozenset(self._mapping.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{v}/{t}" for v, t in sorted(
            self._mapping.items(), key=lambda item: item[0].name))
        return "{" + inner + "}"
