"""The Datalog language layer: terms, atoms, rules, programs and analysis."""

from .analysis import (
    LinearSirup,
    as_linear_sirup,
    dependency_graph,
    is_linear_sirup,
    is_recursive_rule,
    recursion_components,
    recursive_predicates,
)
from .atom import Atom
from .parser import parse_atom, parse_program, parse_rule, tokenize
from .printer import format_atom, format_program, format_rule, format_term
from .program import Program
from .rule import Constraint, Rule
from .substitution import Substitution
from .term import Constant, Term, Variable, is_constant, is_variable
from .unify import mgu, unify_atoms, unify_terms

__all__ = [
    "Atom",
    "Constant",
    "Constraint",
    "LinearSirup",
    "Program",
    "Rule",
    "Substitution",
    "Term",
    "Variable",
    "as_linear_sirup",
    "dependency_graph",
    "format_atom",
    "format_program",
    "format_rule",
    "format_term",
    "is_constant",
    "is_linear_sirup",
    "is_recursive_rule",
    "is_variable",
    "mgu",
    "parse_atom",
    "parse_program",
    "parse_rule",
    "recursion_components",
    "recursive_predicates",
    "tokenize",
    "unify_atoms",
    "unify_terms",
]
