"""Parallel bottom-up Datalog evaluation via discriminating functions.

A faithful, executable reproduction of

    S. Ganguly, A. Silberschatz, S. Tsur,
    "A Framework for the Parallel Processing of Datalog Queries",
    SIGMOD 1990.

Quickstart::

    from repro import parse_program, Database, evaluate
    from repro.parallel import example3_scheme, run_parallel

    program = parse_program('''
        anc(X, Y) :- par(X, Y).
        anc(X, Y) :- par(X, Z), anc(Z, Y).
    ''')
    db = Database.from_facts({"par": [(1, 2), (2, 3), (3, 4)]})

    sequential = evaluate(program, db)
    parallel = run_parallel(example3_scheme(program, [0, 1, 2, 3]), db)
    assert parallel.relation("anc").as_set() == \
        sequential.relation("anc").as_set()

Subpackages:

* :mod:`repro.datalog` — the language: parser, rules, analysis.
* :mod:`repro.facts` — relations, indexes, databases, fragmentation.
* :mod:`repro.engine` — sequential naive/semi-naive evaluation.
* :mod:`repro.parallel` — the paper's core: discriminating functions,
  the Section 3/6/7 rewrites, the simulated cluster, a real
  multiprocessing executor.
* :mod:`repro.network` — Section 5: dataflow graphs and compile-time
  minimal network derivation.
* :mod:`repro.obs` — structured tracing: typed events, pluggable
  sinks, the ``repro trace`` report layer.
* :mod:`repro.workloads` — canonical programs and seeded generators.
* :mod:`repro.bench` — the experiment harness behind ``benchmarks/``.
"""

from .datalog import (
    Atom,
    Constant,
    LinearSirup,
    Program,
    Rule,
    Substitution,
    Variable,
    as_linear_sirup,
    is_linear_sirup,
    parse_atom,
    parse_program,
    parse_rule,
)
from .engine import EvalCounters, EvaluationResult, evaluate
from .errors import (
    DatalogSyntaxError,
    EvaluationError,
    ExecutionError,
    NetworkDerivationError,
    NotASirupError,
    ProgramValidationError,
    ReproError,
    RewriteError,
    RoutingError,
    UnsafeRuleError,
)
from .facts import Database, Relation

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "Constant",
    "Database",
    "DatalogSyntaxError",
    "EvalCounters",
    "EvaluationError",
    "EvaluationResult",
    "ExecutionError",
    "LinearSirup",
    "NetworkDerivationError",
    "NotASirupError",
    "Program",
    "ProgramValidationError",
    "Relation",
    "ReproError",
    "RewriteError",
    "RoutingError",
    "Rule",
    "Substitution",
    "UnsafeRuleError",
    "Variable",
    "__version__",
    "as_linear_sirup",
    "evaluate",
    "is_linear_sirup",
    "parse_atom",
    "parse_program",
    "parse_rule",
]
