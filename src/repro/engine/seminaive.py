"""Semi-naive bottom-up evaluation.

The basic step of semi-naive evaluation substitutes rule variables by
constants such that every body atom holds in the extensional or the
partially computed intensional database (paper, Section 3), while only
considering substitutions that use at least one *new* tuple.  For a rule
with recursive body occurrences at positions ``p1 < ... < pm`` we
generate one *delta variant* per occurrence: variant ``l`` reads the
full relation at positions before ``pl``, the delta at ``pl`` and the
previous relation at positions after ``pl``.  Each new derivation is
then enumerated exactly once — at the largest position that uses a new
tuple.

The delta-variant generator is public because the parallel processors
(Sections 3, 6 and 7 of the paper) reuse it over their ``t_in``
relations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..datalog.atom import Atom
from ..datalog.program import Program
from ..datalog.rule import Rule
from ..facts.database import Database
from ..facts.relation import Fact, Relation
from ..obs.tracer import Tracer, ensure_tracer
from .counters import EvalCounters
from .planner import compile_plan
from .stratify import Stratum, build_strata

__all__ = [
    "DELTA_SUFFIX",
    "PREV_SUFFIX",
    "DeltaVariant",
    "delta_variants",
    "seminaive_evaluate",
]

DELTA_SUFFIX = "#delta"
PREV_SUFFIX = "#prev"


class DeltaVariant:
    """One delta variant of a recursive rule.

    Attributes:
        rule: the rewritten rule (body atoms renamed to delta/prev).
        delta_position: index of the delta atom within the body.
    """

    __slots__ = ("rule", "delta_position")

    def __init__(self, rule: Rule, delta_position: int) -> None:
        self.rule = rule
        self.delta_position = delta_position

    def __repr__(self) -> str:
        return f"DeltaVariant({self.rule}, delta at {self.delta_position})"


def delta_variants(rule: Rule, target_predicates: Set[str],
                   delta_suffix: str = DELTA_SUFFIX,
                   prev_suffix: str = PREV_SUFFIX) -> List[DeltaVariant]:
    """Return the semi-naive delta variants of ``rule``.

    Args:
        rule: a rule whose body mentions at least one target predicate.
        target_predicates: the recursive predicates of the current
            stratum (or the ``_in`` predicates of a parallel processor).
        delta_suffix: appended to a predicate name to name its delta.
        prev_suffix: appended to a predicate name to name its previous
            (pre-round) relation.

    Returns:
        One variant per occurrence of a target predicate in the body.
        For non-recursive rules (no occurrence) the list is empty.
    """
    occurrences = [i for i, atom in enumerate(rule.body)
                   if atom.predicate in target_predicates]
    variants: List[DeltaVariant] = []
    for delta_at in occurrences:
        body: List[Atom] = []
        for index, atom in enumerate(rule.body):
            if index == delta_at:
                body.append(atom.with_predicate(atom.predicate + delta_suffix))
            elif (atom.predicate in target_predicates and index > delta_at):
                body.append(atom.with_predicate(atom.predicate + prev_suffix))
            else:
                body.append(atom)
        variants.append(DeltaVariant(rule.with_body(body), delta_at))
    return variants


def _evaluate_stratum(stratum: Stratum, working: Database,
                      counters: EvalCounters, reorder: bool,
                      tracer: Tracer) -> None:
    """Run semi-naive iteration for one stratum, updating ``working``."""
    predicates = stratum.predicates
    tracing = tracer.enabled

    # Relations for the stratum's predicates already exist in `working`
    # (declared by the caller); create delta and prev companions.
    deltas: Dict[str, Relation] = {}
    prevs: Dict[str, Relation] = {}
    for predicate in predicates:
        full = working.relation(predicate)
        deltas[predicate] = working.declare(predicate + DELTA_SUFFIX, full.arity)
        prevs[predicate] = working.declare(predicate + PREV_SUFFIX, full.arity)
        deltas[predicate].clear()
        prevs[predicate].clear()

    # Exit rules run once; their results seed the deltas together with
    # any facts the stratum predicates already hold (program facts).
    exit_plans = [compile_plan(rule, reorder=reorder)
                  for rule in stratum.exit_rules()]
    produced: List[Tuple[str, Fact]] = []
    for plan in exit_plans:
        head = plan.rule.head.predicate
        for fact in plan.execute(working, counters):
            if tracing:
                tracer.rule_fired(None, plan.label, fact)
            produced.append((head, fact))

    # Bulk-seed the deltas: one batched insert per relation keeps the
    # columnar backend's materialised columns on the append path and
    # derives each index key once, instead of paying a per-fact call.
    for predicate in predicates:
        deltas[predicate].update(working.relation(predicate))
    seed_by_head: Dict[str, List[Fact]] = {}
    for head, fact in produced:
        bucket = seed_by_head.get(head)
        if bucket is None:
            bucket = seed_by_head[head] = []
        bucket.append(fact)
    for head, facts in seed_by_head.items():
        fresh = working.relation(head).add_new_many(facts)
        if fresh:
            counters.record_new(head, len(fresh))
            deltas[head].update(fresh)

    if not stratum.recursive:
        for predicate in predicates:
            deltas[predicate].clear()
        return

    variant_plans = []
    for rule in stratum.recursive_rules():
        for variant in delta_variants(rule, set(predicates)):
            plan = compile_plan(variant.rule, label=str(rule), reorder=reorder,
                                pinned_first=variant.delta_position)
            variant_plans.append(plan)

    while any(deltas[p] for p in predicates):
        counters.iterations += 1
        if tracing:
            tracer.round_start(counters.iterations)
        round_produced: List[Tuple[str, Fact]] = []
        for plan in variant_plans:
            head = plan.rule.head.predicate
            for fact in plan.execute(working, counters):
                if tracing:
                    tracer.rule_fired(None, plan.label, fact)
                round_produced.append((head, fact))
        # Close the round: prev catches up with full, deltas are the
        # genuinely new facts.
        for predicate in predicates:
            prevs[predicate].update(deltas[predicate])
            deltas[predicate].clear()
        # One batch-dedup insert per head predicate (first-occurrence
        # order preserved; see Relation.add_new_many); the fresh facts
        # double as the next round's delta.
        by_head: Dict[str, List[Fact]] = {}
        for head, fact in round_produced:
            bucket = by_head.get(head)
            if bucket is None:
                bucket = by_head[head] = []
            bucket.append(fact)
        new_this_round = 0
        for head, facts in by_head.items():
            fresh = working.relation(head).add_new_many(facts)
            if fresh:
                counters.record_new(head, len(fresh))
                deltas[head].update(fresh)
                new_this_round += len(fresh)
        if tracing:
            tracer.round_end(counters.iterations,
                             produced=len(round_produced),
                             new=new_this_round)


def seminaive_evaluate(program: Program, database: Database,
                       counters: Optional[EvalCounters] = None,
                       reorder: bool = True,
                       tracer: Optional[Tracer] = None) -> Database:
    """Evaluate ``program`` over ``database`` by stratified semi-naive iteration.

    Args:
        program: a validated Datalog program.
        database: the extensional input; never mutated.
        counters: optional counters accumulating firings/probes/rounds.
        reorder: allow the planner's greedy atom reordering.
        tracer: optional :class:`~repro.obs.Tracer` receiving
            ``rule_fired`` and round-boundary events.

    Returns:
        A database holding a relation for every derived predicate (the
        least model restricted to derived predicates), plus references
        to the input base relations.
    """
    counters = counters if counters is not None else EvalCounters()
    tracer = ensure_tracer(tracer)
    if tracer.enabled:
        tracer.current_round = 0
    working = Database()
    derived = set(program.derived_predicates)

    # Attach base relations by reference (they are only read); derived
    # relations start from the program's fact rules.
    for relation in database:
        if relation.name in derived:
            working.attach(relation.copy())
        else:
            working.attach(relation)
    for predicate in program.predicates:
        working.declare(predicate, program.arity_of(predicate))
    for atom in program.facts():
        working.add_fact(atom.predicate, atom.to_fact())

    for stratum in build_strata(program):
        _evaluate_stratum(stratum, working, counters, reorder, tracer)

    result = Database()
    for predicate in derived:
        result.attach(working.relation(predicate))
    for relation in database:
        if relation.name not in derived:
            result.attach(relation)
    return result
