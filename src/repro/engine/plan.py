"""Executable join plans for single rules.

A :class:`RulePlan` fixes an order over the body atoms and, for each
step, the argument positions that are already bound when the step runs
(these drive an index lookup) and the constraints that become evaluable
after the step (pushed as early as possible, mirroring the paper's
discussion of pushing the discriminating selection into the join).

Execution is a depth-first nested-loops join over hash indexes,
yielding one head tuple per successful ground substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..datalog.atom import Atom
from ..datalog.rule import Constraint, Rule
from ..datalog.substitution import Substitution
from ..datalog.term import Constant, Variable
from ..errors import EvaluationError
from ..facts.database import Database
from ..facts.relation import Fact
from .counters import EvalCounters

__all__ = ["PlanStep", "RulePlan"]


@dataclass(frozen=True)
class PlanStep:
    """One join step of a plan.

    Attributes:
        atom: the body atom matched at this step.
        key_positions: argument positions bound before the step runs
            (constants, or variables bound by earlier steps).
        constraints: constraints evaluable right after this step.
    """

    atom: Atom
    key_positions: Tuple[int, ...]
    constraints: Tuple[Constraint, ...]


@dataclass(frozen=True)
class RulePlan:
    """A compiled rule: ordered steps plus a head template.

    Attributes:
        rule: the source rule.
        label: identifier used for counters (defaults to ``str(rule)``).
        steps: the join steps, in execution order.
        pre_constraints: constraints with no variables (evaluated once).
    """

    rule: Rule
    label: str
    steps: Tuple[PlanStep, ...]
    pre_constraints: Tuple[Constraint, ...]

    def execute(self, database: Database,
                counters: Optional[EvalCounters] = None) -> Iterator[Fact]:
        """Yield one head tuple per successful ground substitution.

        Args:
            database: must contain a relation for every body predicate.
            counters: optional counters updated with firings and probes.

        Raises:
            EvaluationError: if a body relation is missing.
        """
        empty_binding = Substitution.empty()
        for constraint in self.pre_constraints:
            if not constraint.satisfied(empty_binding):
                return

        relations = []
        for step in self.steps:
            relation = database.get(step.atom.predicate)
            if relation is None:
                raise EvaluationError(
                    f"no relation for predicate {step.atom.predicate!r} "
                    f"needed by rule {self.label}")
            relations.append(relation)

        head_terms = self.rule.head.terms
        binding: Dict[Variable, object] = {}

        def instantiate_head() -> Fact:
            values = []
            for term in head_terms:
                if isinstance(term, Constant):
                    values.append(term.value)
                else:
                    values.append(binding[term])
            return tuple(values)

        def descend(step_index: int) -> Iterator[Fact]:
            if step_index == len(self.steps):
                if counters is not None:
                    counters.record_firing(self.label)
                yield instantiate_head()
                return
            step = self.steps[step_index]
            relation = relations[step_index]
            key = tuple(
                term.value if isinstance(term, Constant) else binding[term]
                for term in (step.atom.terms[p] for p in step.key_positions))
            if counters is not None:
                counters.record_probe()
            if len(step.key_positions) == step.atom.arity == 0:
                candidates = relation.facts()
            elif step.key_positions:
                candidates = relation.lookup(step.key_positions, key)
            else:
                candidates = relation.facts()
            for fact in candidates:
                newly_bound: List[Variable] = []
                matches = True
                for position, term in enumerate(step.atom.terms):
                    value = fact[position]
                    if isinstance(term, Constant):
                        if term.value != value:
                            matches = False
                            break
                        continue
                    if term in binding:
                        if binding[term] != value:
                            matches = False
                            break
                        continue
                    binding[term] = value
                    newly_bound.append(term)
                if matches:
                    satisfied = True
                    for constraint in step.constraints:
                        snapshot = Substitution(
                            {v: Constant(binding[v]) for v in constraint.variables})
                        if not constraint.satisfied(snapshot):
                            satisfied = False
                            break
                    if satisfied:
                        yield from descend(step_index + 1)
                for variable in newly_bound:
                    del binding[variable]

        yield from descend(0)

    def __str__(self) -> str:
        parts = [f"plan for {self.label}:"]
        for number, step in enumerate(self.steps, start=1):
            bound = ",".join(str(p) for p in step.key_positions) or "-"
            parts.append(f"  {number}. {step.atom} [bound: {bound}]"
                         + (f" + {len(step.constraints)} constraint(s)"
                            if step.constraints else ""))
        return "\n".join(parts)
