"""Executable join plans for single rules.

A :class:`RulePlan` fixes an order over the body atoms and, for each
step, the argument positions that are already bound when the step runs
(these drive an index lookup) and the constraints that become evaluable
after the step (pushed as early as possible, mirroring the paper's
discussion of pushing the discriminating selection into the join).

Execution is a depth-first nested-loops join over hash indexes,
yielding one head tuple per successful ground substitution.  Three
implementations share that contract:

* the **compiled kernel** (default) — on first execution the plan is
  specialized into per-step key extractors, per-position match checks
  and a head template, all resolved at compile time, and run as a
  single iterative backtracking loop.  The per-tuple
  ``isinstance``/dict-dispatch work of the interpretive path is hoisted
  out entirely; positions guaranteed equal by the index lookup are not
  re-checked.
* the **vectorized kernel** — executes the plan over the *whole input
  batch at once* instead of one backtracking probe per tuple: the
  first step's matches become value columns, each later step groups
  the surviving rows by their join key and probes the index **once per
  distinct key** (amortizing hash lookups across duplicate keys),
  expanding rows against cached bucket-column gathers
  (:meth:`~repro.facts.index.HashIndex.bucket_column`) with C-level
  ``extend``/``repeat`` loops.  Counter totals (probes = partial
  bindings arriving at each step, firings = ground substitutions) are
  identical to the other kernels by construction, so the bench
  harness's A/B divergence gates apply unchanged.  Emission *order*
  within a batch may differ from the depth-first kernels (grouping
  reorders rows); all consumers are order-insensitive sets/counters.
* the **generic interpreter** — the original recursive reference
  implementation, kept both as executable documentation and as the
  baseline the performance harness (``repro bench``) measures the
  kernels against.  Equivalence (identical fact sets, firing and probe
  counts) is property-tested across the full kernel × backend grid.

:func:`set_join_kernel` switches the process-wide default (accepting a
kernel name, or a bool for backward compatibility);
``RulePlan.execute(..., kernel="generic")`` overrides it per call.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from itertools import repeat
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from ..datalog.atom import Atom
from ..datalog.rule import Constraint, Rule
from ..datalog.substitution import Substitution
from ..datalog.term import Constant, Variable
from ..errors import EvaluationError
from ..facts.columnar import ColumnarIndex, ColumnarRelation
from ..facts.database import Database
from ..facts.relation import Fact
from .counters import EvalCounters

__all__ = ["JOIN_KERNELS", "PlanStep", "RulePlan", "join_kernel",
           "join_kernel_enabled", "set_join_kernel"]

_MISSING = object()

# The selectable execution paths, mirroring REPRO_FACT_BACKEND /
# REPRO_ROUTE_KERNEL: a name picks the path, the env var picks the
# process default at import time so a whole run (tests, benchmarks) can
# be forced onto one path without touching code.
JOIN_KERNELS = ("generic", "compiled", "vectorized")

_kernel_name = os.environ.get("REPRO_JOIN_KERNEL", "compiled")
if _kernel_name not in JOIN_KERNELS:  # pragma: no cover - env misconfiguration
    raise ValueError(
        f"REPRO_JOIN_KERNEL={_kernel_name!r}: expected one of "
        f"{sorted(JOIN_KERNELS)}")


def _coerce_kernel(kernel) -> str:
    """Normalise a kernel selector (name or legacy bool) to a name."""
    if kernel is True:
        return "compiled"
    if kernel is False:
        return "generic"
    if kernel in JOIN_KERNELS:
        return kernel
    raise ValueError(
        f"unknown join kernel {kernel!r}: expected one of "
        f"{sorted(JOIN_KERNELS)} (or a bool)")


def join_kernel() -> str:
    """Return the name of the process-default join kernel."""
    return _kernel_name


def join_kernel_enabled() -> bool:
    """True iff `execute` defaults to a compiled path (not the generic
    interpreter).  Kept for callers that only care about that split;
    :func:`join_kernel` returns the precise name."""
    return _kernel_name != "generic"


def set_join_kernel(kernel) -> str:
    """Select the process-default join kernel; return the previous name.

    Accepts a kernel name (``"generic"``, ``"compiled"``,
    ``"vectorized"``) or, for backward compatibility, a bool —
    ``True`` means ``"compiled"``, ``False`` means ``"generic"``.
    """
    global _kernel_name
    previous = _kernel_name
    _kernel_name = _coerce_kernel(kernel)
    return previous


@dataclass(frozen=True)
class PlanStep:
    """One join step of a plan.

    Attributes:
        atom: the body atom matched at this step.
        key_positions: argument positions bound before the step runs
            (constants, or variables bound by earlier steps).
        constraints: constraints evaluable right after this step.
    """

    atom: Atom
    key_positions: Tuple[int, ...]
    constraints: Tuple[Constraint, ...]


class _StepKernel:
    """The compiled form of one :class:`PlanStep`.

    Every per-tuple decision the interpretive path makes dynamically
    (``isinstance`` on terms, "is this variable bound yet") is resolved
    here once, at compile time:

    Attributes:
        predicate: relation to probe.
        key_positions: positions driving the index lookup (may be empty).
        key_parts: ``(is_var, var_or_value)`` per key position.
        const_key: precomputed key when every part is a constant.
        const_checks: ``(position, value)`` equalities not already
            guaranteed by the index lookup.
        bound_checks: ``(position, variable)`` equalities against
            earlier-step bindings not guaranteed by the lookup.
        same_checks: ``(position, earlier_position)`` within-atom
            repeated-variable equalities.
        bind_specs: ``(position, variable)`` first occurrences to bind.
        constraint_checks: callables ``check(binding) -> bool``.
    """

    __slots__ = ("predicate", "key_positions", "key_parts", "const_key",
                 "const_checks", "bound_checks", "same_checks", "bind_specs",
                 "constraint_checks")

    def __init__(self, predicate: str, key_positions: Tuple[int, ...],
                 key_parts: Tuple[Tuple[bool, object], ...],
                 const_key: Optional[Tuple[object, ...]],
                 const_checks: Tuple[Tuple[int, object], ...],
                 bound_checks: Tuple[Tuple[int, Variable], ...],
                 same_checks: Tuple[Tuple[int, int], ...],
                 bind_specs: Tuple[Tuple[int, Variable], ...],
                 constraint_checks: Tuple[Callable[[Dict[Variable, object]],
                                                   bool], ...]) -> None:
        self.predicate = predicate
        self.key_positions = key_positions
        self.key_parts = key_parts
        self.const_key = const_key
        self.const_checks = const_checks
        self.bound_checks = bound_checks
        self.same_checks = same_checks
        self.bind_specs = bind_specs
        self.constraint_checks = constraint_checks


class _PlanKernel:
    """A fully compiled plan: step kernels plus the head template.

    Attributes:
        steps: one :class:`_StepKernel` per body atom.
        head_parts: ``(is_var, var_or_value)`` per head position.
        emit_slots: the columnar emit plan for the innermost step, or
            None when the step is ineligible.  When the last step has
            no residual checks or constraints, *every* fact of its
            probed bucket fires, so the whole emission batch can be
            assembled from gathered bucket columns
            (:meth:`~repro.facts.columnar.ColumnarIndex.bucket_column`)
            without touching the binding dict.  Each slot is one of
            ``("c", value)`` head constant, ``("b", variable)`` value
            bound by an outer step, or ``("p", position)`` value read
            from the bucket's ``position`` column.
    """

    __slots__ = ("steps", "head_parts", "emit_slots")

    def __init__(self, steps: Tuple[_StepKernel, ...],
                 head_parts: Tuple[Tuple[bool, object], ...],
                 emit_slots: Optional[Tuple[Tuple[str, object], ...]] = None,
                 ) -> None:
        self.steps = steps
        self.head_parts = head_parts
        self.emit_slots = emit_slots


def _compile_constraint_check(
        constraint: Constraint) -> Callable[[Dict[Variable, object]], bool]:
    """Compile a constraint into ``check(binding) -> bool``.

    Constraints exposing ``satisfied_values`` (e.g.
    :class:`~repro.parallel.constraints.HashConstraint`) are called on
    the raw value binding; others fall back to the protocol's
    :meth:`~repro.datalog.rule.Constraint.satisfied` on a boxed
    :class:`~repro.datalog.substitution.Substitution` snapshot.
    """
    fast = getattr(constraint, "satisfied_values", None)
    if fast is not None:
        return fast
    variables = tuple(constraint.variables)

    def check(binding: Dict[Variable, object], _constraint=constraint,
              _variables=variables) -> bool:
        snapshot = Substitution(
            {v: Constant(binding[v]) for v in _variables})
        return _constraint.satisfied(snapshot)

    return check


def _compile_kernel(plan: "RulePlan") -> _PlanKernel:
    """Specialize ``plan`` into a :class:`_PlanKernel`."""
    bound_before: Set[Variable] = set()
    steps: List[_StepKernel] = []
    for step in plan.steps:
        atom = step.atom
        in_key = frozenset(step.key_positions)
        use_lookup = bool(step.key_positions)
        key_parts: List[Tuple[bool, object]] = []
        for position in step.key_positions:
            term = atom.terms[position]
            if isinstance(term, Constant):
                key_parts.append((False, term.value))
            else:
                key_parts.append((True, term))
        const_key: Optional[Tuple[object, ...]] = None
        if use_lookup and not any(is_var for is_var, _ in key_parts):
            const_key = tuple(value for _, value in key_parts)

        const_checks: List[Tuple[int, object]] = []
        bound_checks: List[Tuple[int, Variable]] = []
        same_checks: List[Tuple[int, int]] = []
        bind_specs: List[Tuple[int, Variable]] = []
        first_at: Dict[Variable, int] = {}
        for position, term in enumerate(atom.terms):
            guaranteed = use_lookup and position in in_key
            if isinstance(term, Constant):
                if not guaranteed:
                    const_checks.append((position, term.value))
            elif term in bound_before:
                if not guaranteed:
                    bound_checks.append((position, term))
            elif term in first_at:
                same_checks.append((position, first_at[term]))
            else:
                first_at[term] = position
                bind_specs.append((position, term))
        bound_before |= set(atom.variables())
        steps.append(_StepKernel(
            predicate=atom.predicate,
            key_positions=tuple(step.key_positions),
            key_parts=tuple(key_parts),
            const_key=const_key,
            const_checks=tuple(const_checks),
            bound_checks=tuple(bound_checks),
            same_checks=tuple(same_checks),
            bind_specs=tuple(bind_specs),
            constraint_checks=tuple(_compile_constraint_check(c)
                                    for c in step.constraints),
        ))
    head_parts = tuple(
        (False, term.value) if isinstance(term, Constant) else (True, term)
        for term in plan.rule.head.terms)
    emit_slots: Optional[Tuple[Tuple[str, object], ...]] = None
    if steps:
        last = steps[-1]
        eligible = (last.key_positions
                    and not last.const_checks
                    and not last.bound_checks
                    and not last.same_checks
                    and not last.constraint_checks)
        if eligible:
            bound_at_last = {variable: position
                             for position, variable in last.bind_specs}
            slots: List[Tuple[str, object]] = []
            for is_var, part in head_parts:
                if not is_var:
                    slots.append(("c", part))
                elif part in bound_at_last:
                    slots.append(("p", bound_at_last[part]))
                else:
                    slots.append(("b", part))
            emit_slots = tuple(slots)
    return _PlanKernel(steps=tuple(steps), head_parts=head_parts,
                       emit_slots=emit_slots)


@dataclass(frozen=True)
class RulePlan:
    """A compiled rule: ordered steps plus a head template.

    Attributes:
        rule: the source rule.
        label: identifier used for counters (defaults to ``str(rule)``).
        steps: the join steps, in execution order.
        pre_constraints: constraints with no variables (evaluated once).
    """

    rule: Rule
    label: str
    steps: Tuple[PlanStep, ...]
    pre_constraints: Tuple[Constraint, ...]

    def execute(self, database: Database,
                counters: Optional[EvalCounters] = None,
                kernel=None) -> Iterator[Fact]:
        """Yield one head tuple per successful ground substitution.

        Args:
            database: must contain a relation for every body predicate.
            counters: optional counters updated with firings and probes.
            kernel: force an execution path by name (``"generic"``,
                ``"compiled"``, ``"vectorized"``) or legacy bool
                (True → compiled, False → generic); None uses the
                process default set by :func:`set_join_kernel`.

        Raises:
            EvaluationError: if a body relation is missing.
        """
        name = _kernel_name if kernel is None else _coerce_kernel(kernel)
        if name == "compiled":
            return self._execute_compiled(database, counters)
        if name == "vectorized":
            return self._execute_vectorized(database, counters)
        return self._execute_generic(database, counters)

    def _kernel_for(self) -> _PlanKernel:
        """Return (building and caching on first use) the compiled kernel."""
        kernel = self.__dict__.get("_kernel")
        if kernel is None:
            kernel = _compile_kernel(self)
            object.__setattr__(self, "_kernel", kernel)
        return kernel

    def _execute_compiled(self, database: Database,
                          counters: Optional[EvalCounters]) -> Iterator[Fact]:
        """Iterative backtracking join over the compiled step kernels."""
        empty_binding = Substitution.empty()
        for constraint in self.pre_constraints:
            if not constraint.satisfied(empty_binding):
                return

        kernel = self._kernel_for()
        steps = kernel.steps
        depth = len(steps)
        head_parts = kernel.head_parts
        label = self.label

        sources: List[Tuple[Optional[object], object]] = []
        for kstep in steps:
            relation = database.get(kstep.predicate)
            if relation is None:
                raise EvaluationError(
                    f"no relation for predicate {kstep.predicate!r} "
                    f"needed by rule {self.label}")
            if kstep.key_positions:
                sources.append((relation.index_on(kstep.key_positions),
                                relation))
            else:
                sources.append((None, relation))

        binding: Dict[Variable, object] = {}
        if depth == 0:
            if counters is not None:
                counters.record_firing(label)
            yield tuple(binding[part] if is_var else part
                        for is_var, part in head_parts)
            return

        def candidates(level: int) -> Iterator[Fact]:
            kstep = steps[level]
            index, relation = sources[level]
            if counters is not None:
                counters.record_probe()
            if index is None:
                return iter(relation.facts())
            key = kstep.const_key
            if key is None:
                key = tuple(binding[part] if is_var else part
                            for is_var, part in kstep.key_parts)
            return iter(index.lookup(key))

        emit_slots = kernel.emit_slots
        last_index = sources[-1][0]
        columnar_drain = (emit_slots is not None
                          and isinstance(last_index, ColumnarIndex))

        def drain_last() -> Iterator[Fact]:
            """Tight loop over the innermost step — the hottest path."""
            kstep = steps[-1]
            if columnar_drain:
                # Columnar batch emission: compile time proved every
                # bucket fact fires (no residual checks/constraints),
                # so gather the bound head columns once per bucket and
                # assemble the whole emission batch with C-level zip
                # instead of per-fact binding-dict updates.  Probe and
                # firing counts match the per-fact loop exactly.
                key = kstep.const_key
                if key is None:
                    key = tuple(binding[part] if is_var else part
                                for is_var, part in kstep.key_parts)
                if counters is not None:
                    counters.record_probe()
                count = len(last_index.lookup(key))
                if not count:
                    return
                parts: List[object] = []
                has_columns = False
                for kind, value in emit_slots:
                    if kind == "p":
                        parts.append(last_index.bucket_column(key, value))
                        has_columns = True
                    elif kind == "b":
                        parts.append(repeat(binding[value]))
                    else:
                        parts.append(repeat(value))
                if counters is not None:
                    counters.record_firing(label, count)
                if has_columns:
                    yield from zip(*parts)
                else:
                    head = tuple(binding[value] if kind == "b" else value
                                 for kind, value in emit_slots)
                    yield from repeat(head, count)
                return
            const_checks = kstep.const_checks
            bound_checks = kstep.bound_checks
            same_checks = kstep.same_checks
            bind_specs = kstep.bind_specs
            checks = kstep.constraint_checks
            plain = not (const_checks or bound_checks or same_checks)
            for fact in candidates(depth - 1):
                if not plain:
                    matches = True
                    for position, value in const_checks:
                        if fact[position] != value:
                            matches = False
                            break
                    if matches:
                        for position, variable in bound_checks:
                            if fact[position] != binding[variable]:
                                matches = False
                                break
                    if matches:
                        for position, earlier in same_checks:
                            if fact[position] != fact[earlier]:
                                matches = False
                                break
                    if not matches:
                        continue
                for position, variable in bind_specs:
                    binding[variable] = fact[position]
                satisfied = True
                for check in checks:
                    if not check(binding):
                        satisfied = False
                        break
                if satisfied:
                    if counters is not None:
                        counters.record_firing(label)
                    yield tuple(binding[part] if is_var else part
                                for is_var, part in head_parts)
                for _position, variable in bind_specs:
                    del binding[variable]

        if depth == 1:
            yield from drain_last()
            return

        # Levels 0..depth-2 run the backtracking dispatcher; the final
        # level is always drained inline by `drain_last`.
        iters: List[Iterator[Fact]] = [iter(())] * (depth - 1)
        bound_flags = [False] * (depth - 1)
        last_outer = depth - 2
        level = 0
        iters[0] = candidates(0)
        while level >= 0:
            kstep = steps[level]
            if bound_flags[level]:
                for _position, variable in kstep.bind_specs:
                    del binding[variable]
                bound_flags[level] = False
            fact = next(iters[level], _MISSING)
            if fact is _MISSING:
                level -= 1
                continue
            matches = True
            for position, value in kstep.const_checks:
                if fact[position] != value:
                    matches = False
                    break
            if matches:
                for position, variable in kstep.bound_checks:
                    if fact[position] != binding[variable]:
                        matches = False
                        break
            if matches:
                for position, earlier in kstep.same_checks:
                    if fact[position] != fact[earlier]:
                        matches = False
                        break
            if not matches:
                continue
            if kstep.bind_specs:
                for position, variable in kstep.bind_specs:
                    binding[variable] = fact[position]
                bound_flags[level] = True
            satisfied = True
            for check in kstep.constraint_checks:
                if not check(binding):
                    satisfied = False
                    break
            if not satisfied:
                continue
            if level == last_outer:
                yield from drain_last()
                continue
            level += 1
            iters[level] = candidates(level)

    def _execute_vectorized(self, database: Database,
                            counters: Optional[EvalCounters]
                            ) -> Iterator[Fact]:
        """Batch semi-join: the whole step-0 input processed at once.

        The first step's matches become per-variable value columns (one
        list per bound variable, row-aligned).  Each later step groups
        the surviving rows by their join key and probes the index
        **once per distinct key** — duplicate keys, the common case in
        a transitive-closure delta, amortize the hash lookup, the
        bucket resolution and the residual const/repeated-variable
        checks across every row sharing the key.  Matching rows expand
        against the bucket's gathered columns
        (:meth:`~repro.facts.index.HashIndex.bucket_column`, cached per
        bucket under the columnar backend) with C-level
        ``list.extend`` / ``itertools.repeat`` loops; the head drains
        straight out of the final columns via ``zip``.

        Counter identity with the other kernels holds by construction:
        step 0 records one probe (one ``candidates()`` call in the
        compiled path), every later step records one probe per row
        arriving at it (one ``candidates()`` call per partial binding),
        and firings equal the final row count (one per ground
        substitution).  Emission *order* differs from the depth-first
        kernels beyond two steps (grouping reorders rows); every
        consumer treats emissions as a multiset, so answers, counters
        and round structure are unaffected.
        """
        empty_binding = Substitution.empty()
        for constraint in self.pre_constraints:
            if not constraint.satisfied(empty_binding):
                return

        kernel = self._kernel_for()
        steps = kernel.steps
        depth = len(steps)
        head_parts = kernel.head_parts
        label = self.label

        sources: List[Tuple[Optional[object], object]] = []
        for kstep in steps:
            relation = database.get(kstep.predicate)
            if relation is None:
                raise EvaluationError(
                    f"no relation for predicate {kstep.predicate!r} "
                    f"needed by rule {self.label}")
            if kstep.key_positions:
                sources.append((relation.index_on(kstep.key_positions),
                                relation))
            else:
                sources.append((None, relation))

        binding: Dict[Variable, object] = {}
        if depth == 0:
            if counters is not None:
                counters.record_firing(label)
            yield tuple(binding[part] if is_var else part
                        for is_var, part in head_parts)
            return

        # ---- step 0: seed the batch columns -------------------------
        kstep = steps[0]
        index, relation = sources[0]
        if counters is not None:
            counters.record_probe()
        if index is not None:
            key = kstep.const_key
            if key is None:
                key = tuple(binding[part] if is_var else part
                            for is_var, part in kstep.key_parts)
            rows = index.lookup(key)
        else:
            key = None
            rows = relation.facts()

        bind_specs = kstep.bind_specs
        cols: Dict[Variable, List[object]] = {}
        if (kstep.const_checks or kstep.bound_checks or kstep.same_checks
                or kstep.constraint_checks):
            kept: List[Fact] = []
            for fact in rows:
                matches = True
                for position, value in kstep.const_checks:
                    if fact[position] != value:
                        matches = False
                        break
                if matches:
                    for position, variable in kstep.bound_checks:
                        if fact[position] != binding[variable]:
                            matches = False
                            break
                if matches:
                    for position, earlier in kstep.same_checks:
                        if fact[position] != fact[earlier]:
                            matches = False
                            break
                if not matches:
                    continue
                if kstep.constraint_checks:
                    row_binding = {variable: fact[position]
                                   for position, variable in bind_specs}
                    satisfied = True
                    for check in kstep.constraint_checks:
                        if not check(row_binding):
                            satisfied = False
                            break
                    if not satisfied:
                        continue
                kept.append(fact)
            for position, variable in bind_specs:
                cols[variable] = [fact[position] for fact in kept]
            n = len(kept)
        elif index is None and isinstance(relation, ColumnarRelation):
            # Full scan with no residual checks: reuse the relation's
            # cached raw-value columns (read-only from here on).
            value_columns = relation.value_columns()
            for position, variable in bind_specs:
                cols[variable] = value_columns[position]
            n = len(relation)
        elif index is not None and isinstance(index, ColumnarIndex):
            n = len(rows)
            for position, variable in bind_specs:
                cols[variable] = index.bucket_column(key, position)
        else:
            facts = list(rows)
            for position, variable in bind_specs:
                cols[variable] = [fact[position] for fact in facts]
            n = len(facts)

        # ---- steps 1..depth-1: group, probe once per key, expand ----
        for level in range(1, depth):
            if not n:
                return
            kstep = steps[level]
            index, relation = sources[level]
            if counters is not None:
                counters.record_probe(n)
            const_checks = kstep.const_checks
            same_checks = kstep.same_checks
            bound_checks = kstep.bound_checks
            bind_specs = kstep.bind_specs
            checks = kstep.constraint_checks
            prefilter = const_checks or same_checks

            # Group the surviving rows by join key (first-occurrence
            # key order): every distinct key resolves its bucket once.
            wrap = False
            if index is None or kstep.const_key is not None:
                groups: Dict[object, object] = {kstep.const_key: range(n)}
            elif len(kstep.key_parts) == 1:
                # Single-variable key: group on the raw value and wrap
                # it into the index's tuple key once per distinct key.
                wrap = True
                keycol = cols[kstep.key_parts[0][1]]
                groups = {}
                for i, value in enumerate(keycol):
                    group = groups.get(value)
                    if group is None:
                        groups[value] = [i]
                    else:
                        group.append(i)
            else:
                parts = [cols[part] if is_var else repeat(part)
                         for is_var, part in kstep.key_parts]
                groups = {}
                for i, row_key in enumerate(zip(*parts)):
                    group = groups.get(row_key)
                    if group is None:
                        groups[row_key] = [i]
                    else:
                        group.append(i)

            out_cols: Dict[Variable, List[object]] = {
                variable: [] for variable in cols}
            old_pairs = [(cols[variable], out_cols[variable])
                         for variable in cols]
            new_cols: List[List[object]] = [[] for _ in bind_specs]
            slow = bool(bound_checks or checks)
            out_n = 0

            for group_key, rows_idx in groups.items():
                if index is None:
                    bucket = relation.facts()
                    probe_key = None
                else:
                    probe_key = (group_key,) if wrap else group_key
                    bucket = index.lookup(probe_key)
                if prefilter:
                    facts = []
                    for fact in bucket:
                        ok = True
                        for position, value in const_checks:
                            if fact[position] != value:
                                ok = False
                                break
                        if ok:
                            for position, earlier in same_checks:
                                if fact[position] != fact[earlier]:
                                    ok = False
                                    break
                        if ok:
                            facts.append(fact)
                    m = len(facts)
                    if not m:
                        continue
                    bcols = [[fact[position] for fact in facts]
                             for position, _variable in bind_specs]
                    ccols = [[fact[position] for fact in facts]
                             for position, _variable in bound_checks]
                else:
                    m = len(bucket)
                    if not m:
                        continue
                    if index is not None:
                        bcols = [index.bucket_column(probe_key, position)
                                 for position, _variable in bind_specs]
                        ccols = [index.bucket_column(probe_key, position)
                                 for position, _variable in bound_checks]
                    else:
                        facts = list(bucket)
                        bcols = [[fact[position] for fact in facts]
                                 for position, _variable in bind_specs]
                        ccols = [[fact[position] for fact in facts]
                                 for position, _variable in bound_checks]

                if not slow:
                    # Fast expansion: every bucket fact matches every
                    # row of the group.
                    r = len(rows_idx)
                    if m == 1:
                        for col, out in old_pairs:
                            out.extend(col[i] for i in rows_idx)
                    else:
                        for col, out in old_pairs:
                            for i in rows_idx:
                                out.extend(repeat(col[i], m))
                    if r == 1:
                        for bcol, out in zip(bcols, new_cols):
                            out.extend(bcol)
                    else:
                        for bcol, out in zip(bcols, new_cols):
                            out.extend(bcol * r)
                    out_n += m * r
                    continue

                # Slow expansion: bound-variable equalities and/or
                # constraints need each row's own values.
                for i in rows_idx:
                    if bound_checks:
                        js = [j for j in range(m)
                              if all(ccol[j] == cols[variable][i]
                                     for (_position, variable), ccol
                                     in zip(bound_checks, ccols))]
                    else:
                        js = list(range(m))
                    if js and checks:
                        base = {variable: column[i]
                                for variable, column in cols.items()}
                        surviving = []
                        for j in js:
                            row_binding = dict(base)
                            for (_position, variable), bcol in zip(
                                    bind_specs, bcols):
                                row_binding[variable] = bcol[j]
                            satisfied = True
                            for check in checks:
                                if not check(row_binding):
                                    satisfied = False
                                    break
                            if satisfied:
                                surviving.append(j)
                        js = surviving
                    if not js:
                        continue
                    count = len(js)
                    if count == 1:
                        for col, out in old_pairs:
                            out.append(col[i])
                    else:
                        for col, out in old_pairs:
                            out.extend(repeat(col[i], count))
                    for bcol, out in zip(bcols, new_cols):
                        for j in js:
                            out.append(bcol[j])
                    out_n += count

            cols = out_cols
            for (position, variable), column in zip(bind_specs, new_cols):
                cols[variable] = column
            n = out_n

        # ---- head drain ---------------------------------------------
        if not n:
            return
        if counters is not None:
            counters.record_firing(label, n)
        if not head_parts:
            yield from repeat((), n)
            return
        if any(is_var for is_var, _part in head_parts):
            parts = [cols[part] if is_var else repeat(part)
                     for is_var, part in head_parts]
            yield from zip(*parts)
        else:
            head = tuple(part for _is_var, part in head_parts)
            yield from repeat(head, n)

    def _execute_generic(self, database: Database,
                         counters: Optional[EvalCounters]) -> Iterator[Fact]:
        """The original recursive interpreter (reference implementation)."""
        empty_binding = Substitution.empty()
        for constraint in self.pre_constraints:
            if not constraint.satisfied(empty_binding):
                return

        relations = []
        for step in self.steps:
            relation = database.get(step.atom.predicate)
            if relation is None:
                raise EvaluationError(
                    f"no relation for predicate {step.atom.predicate!r} "
                    f"needed by rule {self.label}")
            relations.append(relation)

        head_terms = self.rule.head.terms
        binding: Dict[Variable, object] = {}

        def instantiate_head() -> Fact:
            values = []
            for term in head_terms:
                if isinstance(term, Constant):
                    values.append(term.value)
                else:
                    values.append(binding[term])
            return tuple(values)

        def descend(step_index: int) -> Iterator[Fact]:
            if step_index == len(self.steps):
                if counters is not None:
                    counters.record_firing(self.label)
                yield instantiate_head()
                return
            step = self.steps[step_index]
            relation = relations[step_index]
            key = tuple(
                term.value if isinstance(term, Constant) else binding[term]
                for term in (step.atom.terms[p] for p in step.key_positions))
            if counters is not None:
                counters.record_probe()
            if len(step.key_positions) == step.atom.arity == 0:
                candidates = relation.facts()
            elif step.key_positions:
                candidates = relation.lookup(step.key_positions, key)
            else:
                candidates = relation.facts()
            for fact in candidates:
                newly_bound: List[Variable] = []
                matches = True
                for position, term in enumerate(step.atom.terms):
                    value = fact[position]
                    if isinstance(term, Constant):
                        if term.value != value:
                            matches = False
                            break
                        continue
                    if term in binding:
                        if binding[term] != value:
                            matches = False
                            break
                        continue
                    binding[term] = value
                    newly_bound.append(term)
                if matches:
                    satisfied = True
                    for constraint in step.constraints:
                        snapshot = Substitution(
                            {v: Constant(binding[v]) for v in constraint.variables})
                        if not constraint.satisfied(snapshot):
                            satisfied = False
                            break
                    if satisfied:
                        yield from descend(step_index + 1)
                for variable in newly_bound:
                    del binding[variable]

        yield from descend(0)

    def __str__(self) -> str:
        parts = [f"plan for {self.label}:"]
        for number, step in enumerate(self.steps, start=1):
            bound = ",".join(str(p) for p in step.key_positions) or "-"
            parts.append(f"  {number}. {step.atom} [bound: {bound}]"
                         + (f" + {len(step.constraints)} constraint(s)"
                            if step.constraints else ""))
        return "\n".join(parts)
