"""Counters for firings, probes and derived tuples.

The paper's redundancy results (Definition 1, Theorems 2 and 6) are
statements about the *number of successful ground substitutions* —
"firings" — so the engine counts every head instantiation it produces,
before deduplication.  Probe counts (index lookups) additionally feed
the simulator's work model.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable

__all__ = ["EvalCounters"]


class EvalCounters:
    """Mutable counters collected during an evaluation.

    Attributes:
        firings: per rule label, the number of successful ground
            substitutions (head tuples produced, duplicates included).
        new_facts: per rule label, the number of produced tuples that
            were genuinely new when inserted.
        probes: number of index lookups performed.
        iterations: number of semi-naive rounds executed.
    """

    __slots__ = ("firings", "new_facts", "probes", "iterations")

    def __init__(self) -> None:
        self.firings: Counter = Counter()
        self.new_facts: Counter = Counter()
        self.probes: int = 0
        self.iterations: int = 0

    def record_firing(self, rule_label: str, count: int = 1) -> None:
        """Record ``count`` successful ground substitutions of a rule."""
        self.firings[rule_label] += count

    def record_new(self, rule_label: str, count: int = 1) -> None:
        """Record ``count`` newly inserted tuples attributed to a rule."""
        self.new_facts[rule_label] += count

    def record_probe(self, count: int = 1) -> None:
        """Record ``count`` index lookups."""
        self.probes += count

    def total_firings(self) -> int:
        """Total firings across all rules."""
        return sum(self.firings.values())

    def total_new(self) -> int:
        """Total new facts across all rules."""
        return sum(self.new_facts.values())

    def merged_with(self, other: "EvalCounters") -> "EvalCounters":
        """Return a new counter combining self and ``other``."""
        merged = EvalCounters()
        merged.firings = self.firings + other.firings
        merged.new_facts = self.new_facts + other.new_facts
        merged.probes = self.probes + other.probes
        merged.iterations = max(self.iterations, other.iterations)
        return merged

    @staticmethod
    def sum(counters: Iterable["EvalCounters"]) -> "EvalCounters":
        """Combine many counters (iterations: maximum)."""
        total = EvalCounters()
        for counter in counters:
            total = total.merged_with(counter)
        return total

    def as_dict(self) -> Dict[str, object]:
        """Return a plain-dict snapshot (for reports and serialisation)."""
        return {
            "firings": dict(self.firings),
            "new_facts": dict(self.new_facts),
            "probes": self.probes,
            "iterations": self.iterations,
            "total_firings": self.total_firings(),
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "EvalCounters":
        """Rebuild counters from an :meth:`as_dict` snapshot.

        Used by checkpoint restore: a worker resumed from a checkpoint
        does not re-derive its checkpointed facts, so its predecessor's
        counters must carry over for the cluster total (and hence the
        firings-identical-to-sequential property) to hold.
        """
        counters = EvalCounters()
        counters.firings = Counter(payload.get("firings", {}))
        counters.new_facts = Counter(payload.get("new_facts", {}))
        counters.probes = int(payload.get("probes", 0))
        counters.iterations = int(payload.get("iterations", 0))
        return counters

    def __repr__(self) -> str:
        return (f"EvalCounters(firings={self.total_firings()}, "
                f"new={self.total_new()}, probes={self.probes}, "
                f"iterations={self.iterations})")
