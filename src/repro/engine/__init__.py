"""Sequential bottom-up evaluation engine."""

from .counters import EvalCounters
from .evaluator import EvaluationResult, evaluate
from .naive import naive_evaluate
from .plan import (
    JOIN_KERNELS,
    PlanStep,
    RulePlan,
    join_kernel,
    join_kernel_enabled,
    set_join_kernel,
)
from .planner import compile_plan, order_body
from .seminaive import (
    DELTA_SUFFIX,
    PREV_SUFFIX,
    DeltaVariant,
    delta_variants,
    seminaive_evaluate,
)
from .stratify import Stratum, build_strata

__all__ = [
    "DELTA_SUFFIX",
    "PREV_SUFFIX",
    "DeltaVariant",
    "EvalCounters",
    "EvaluationResult",
    "JOIN_KERNELS",
    "PlanStep",
    "RulePlan",
    "Stratum",
    "build_strata",
    "compile_plan",
    "delta_variants",
    "evaluate",
    "join_kernel",
    "join_kernel_enabled",
    "naive_evaluate",
    "order_body",
    "seminaive_evaluate",
    "set_join_kernel",
]
