"""Top-level sequential evaluation facade."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..datalog.program import Program
from ..errors import EvaluationError
from ..facts.database import Database
from ..obs.tracer import Tracer, ensure_tracer
from .counters import EvalCounters
from .naive import naive_evaluate
from .seminaive import seminaive_evaluate

__all__ = ["EvaluationResult", "evaluate"]


@dataclass(frozen=True)
class EvaluationResult:
    """Outcome of a sequential evaluation.

    Attributes:
        output: database with one relation per derived predicate (plus
            the input base relations, by reference).
        counters: firings, probes, new facts and iteration counts.
        method: the strategy used (``"seminaive"`` or ``"naive"``).
    """

    output: Database
    counters: EvalCounters
    method: str

    def relation(self, predicate: str):
        """Convenience accessor for an output relation."""
        return self.output.relation(predicate)

    def total_firings(self) -> int:
        """Total successful ground substitutions during the run."""
        return self.counters.total_firings()


def evaluate(program: Program, database: Database, method: str = "seminaive",
             reorder: bool = True,
             counters: Optional[EvalCounters] = None,
             tracer: Optional[Tracer] = None) -> EvaluationResult:
    """Evaluate a Datalog program bottom-up.

    Args:
        program: a validated program.
        database: extensional input; never mutated.
        method: ``"seminaive"`` (default) or ``"naive"``.
        reorder: allow greedy body-atom reordering.
        counters: optional externally owned counters.
        tracer: optional :class:`~repro.obs.Tracer`; the run is framed
            by ``run_start``/``run_end`` events.

    Returns:
        An :class:`EvaluationResult`.

    Raises:
        EvaluationError: on an unknown method.
    """
    counters = counters if counters is not None else EvalCounters()
    tracer = ensure_tracer(tracer)
    if tracer.enabled:
        tracer.run_start(scheme=method, processors=(), executor="sequential")
    if method == "seminaive":
        output = seminaive_evaluate(program, database, counters, reorder,
                                    tracer)
    elif method == "naive":
        output = naive_evaluate(program, database, counters, reorder, tracer)
    else:
        raise EvaluationError(f"unknown evaluation method {method!r}")
    if tracer.enabled:
        tracer.run_end(iterations=counters.iterations,
                       firings=counters.total_firings(),
                       probes=counters.probes)
    return EvaluationResult(output=output, counters=counters, method=method)
