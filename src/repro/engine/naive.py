"""Naive bottom-up evaluation.

Re-evaluates every rule against the whole database until a fixpoint is
reached.  Exponentially more redundant than semi-naive evaluation, it
serves as the ground-truth oracle in tests (both strategies must agree
on the least model) and as the redundancy yardstick in benchmarks.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..datalog.program import Program
from ..facts.database import Database
from ..facts.relation import Fact
from ..obs.tracer import Tracer, ensure_tracer
from .counters import EvalCounters
from .planner import compile_plan

__all__ = ["naive_evaluate"]


def naive_evaluate(program: Program, database: Database,
                   counters: Optional[EvalCounters] = None,
                   reorder: bool = True,
                   tracer: Optional[Tracer] = None) -> Database:
    """Evaluate ``program`` over ``database`` by naive iteration.

    Args:
        program: a validated Datalog program.
        database: the extensional input; never mutated.
        counters: optional counters accumulating firings/probes/rounds.
        reorder: allow the planner's greedy atom reordering.
        tracer: optional :class:`~repro.obs.Tracer` receiving
            ``rule_fired`` and round-boundary events.

    Returns:
        A database holding a relation for every derived predicate, plus
        references to the input base relations.
    """
    counters = counters if counters is not None else EvalCounters()
    tracer = ensure_tracer(tracer)
    tracing = tracer.enabled
    working = Database()
    derived = set(program.derived_predicates)

    for relation in database:
        if relation.name in derived:
            working.attach(relation.copy())
        else:
            working.attach(relation)
    for predicate in program.predicates:
        working.declare(predicate, program.arity_of(predicate))
    for atom in program.facts():
        working.add_fact(atom.predicate, atom.to_fact())

    plans = [compile_plan(rule, reorder=reorder)
             for rule in program.proper_rules()]

    changed = True
    while changed:
        changed = False
        counters.iterations += 1
        if tracing:
            tracer.round_start(counters.iterations)
        produced: List[Tuple[str, Fact]] = []
        for plan in plans:
            head = plan.rule.head.predicate
            for fact in plan.execute(working, counters):
                if tracing:
                    tracer.rule_fired(None, plan.label, fact)
                produced.append((head, fact))
        # Close the round with one batch-dedup insert per head predicate
        # (first-occurrence order preserved; see Relation.add_new_many).
        by_head: dict = {}
        for head, fact in produced:
            bucket = by_head.get(head)
            if bucket is None:
                bucket = by_head[head] = []
            bucket.append(fact)
        new_this_round = 0
        for head, facts in by_head.items():
            fresh = working.relation(head).add_new_many(facts)
            if fresh:
                counters.record_new(head, len(fresh))
                changed = True
                new_this_round += len(fresh)
        if tracing:
            tracer.round_end(counters.iterations,
                             produced=len(produced), new=new_this_round)

    result = Database()
    for predicate in derived:
        result.attach(working.relation(predicate))
    for relation in database:
        if relation.name not in derived:
            result.attach(relation)
    return result
