"""Grouping of program rules into strata of mutually recursive predicates.

Pure Datalog needs no negation-based stratification, but evaluating the
strongly connected components of the predicate dependency graph in
topological order keeps semi-naive iteration focused on one recursive
clique at a time, which both the sequential engine and the general
parallel scheme (paper, Section 7) rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Tuple

from ..datalog.analysis import recursion_components
from ..datalog.program import Program
from ..datalog.rule import Rule

__all__ = ["Stratum", "build_strata"]


@dataclass(frozen=True)
class Stratum:
    """A set of mutually recursive predicates and the rules defining them.

    Attributes:
        predicates: the predicates of this strongly connected component.
        rules: the proper rules whose head predicate is in the component.
        recursive: True iff some rule's body mentions a component
            predicate (self- or mutual recursion).
    """

    predicates: FrozenSet[str]
    rules: Tuple[Rule, ...]
    recursive: bool

    def recursive_rules(self) -> Tuple[Rule, ...]:
        """Rules whose body mentions a predicate of this stratum."""
        return tuple(
            r for r in self.rules
            if any(a.predicate in self.predicates for a in r.body))

    def exit_rules(self) -> Tuple[Rule, ...]:
        """Rules whose body mentions no predicate of this stratum."""
        return tuple(
            r for r in self.rules
            if all(a.predicate not in self.predicates for a in r.body))


def build_strata(program: Program) -> List[Stratum]:
    """Return the strata of ``program`` in bottom-up evaluation order.

    Components consisting solely of base predicates are skipped — they
    have no rules to evaluate.
    """
    strata: List[Stratum] = []
    for component in recursion_components(program):
        rules = tuple(
            r for r in program.proper_rules()
            if r.head.predicate in component)
        if not rules:
            continue
        recursive = any(
            atom.predicate in component for r in rules for atom in r.body)
        strata.append(Stratum(predicates=component, rules=rules,
                              recursive=recursive))
    return strata
