"""Compilation of rules into executable :class:`RulePlan` objects.

The planner orders body atoms greedily so that each step has as many
bound argument positions as possible (sideways information passing),
schedules every constraint at the earliest step after which all of its
variables are bound, and verifies safety of the result.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..datalog.atom import Atom
from ..datalog.rule import Constraint, Rule
from ..datalog.term import Constant, Variable
from ..errors import EvaluationError
from .plan import PlanStep, RulePlan

__all__ = ["compile_plan", "order_body"]


def _bound_positions(atom: Atom, bound_vars: Set[Variable]) -> Tuple[int, ...]:
    """Positions of ``atom`` holding constants or already-bound variables.

    A variable repeated *within* the atom is not counted as bound at its
    later occurrences: the index key is built before the atom is
    matched, so only constants and variables bound by earlier steps can
    contribute key values.  In-atom repeats are enforced by the
    consistency check during matching instead.
    """
    positions: List[int] = []
    for index, term in enumerate(atom.terms):
        if isinstance(term, Constant) or term in bound_vars:
            positions.append(index)
    return tuple(positions)


def order_body(rule: Rule, reorder: bool = True,
               pinned_first: Optional[int] = None) -> Tuple[int, ...]:
    """Return an execution order over body-atom indices.

    Args:
        rule: the rule whose body is ordered.
        reorder: when False, keep the textual order.
        pinned_first: optionally force this body index to run first
            (semi-naive evaluation pins the delta atom).
    """
    count = len(rule.body)
    if count == 0:
        return ()
    if not reorder:
        if pinned_first is None:
            return tuple(range(count))
        rest = [i for i in range(count) if i != pinned_first]
        return (pinned_first, *rest)

    remaining = set(range(count))
    ordered: List[int] = []
    bound: Set[Variable] = set()
    if pinned_first is not None:
        ordered.append(pinned_first)
        remaining.discard(pinned_first)
        bound |= set(rule.body[pinned_first].variables())
    while remaining:
        def score(index: int) -> Tuple[int, int, int]:
            atom = rule.body[index]
            bound_count = len(_bound_positions(atom, bound))
            # Prefer many bound positions, then small arity, then text order.
            return (-bound_count, atom.arity, index)

        best = min(remaining, key=score)
        ordered.append(best)
        remaining.discard(best)
        bound |= set(rule.body[best].variables())
    return tuple(ordered)


def compile_plan(rule: Rule, label: Optional[str] = None, reorder: bool = True,
                 pinned_first: Optional[int] = None) -> RulePlan:
    """Compile ``rule`` into a :class:`RulePlan`.

    Args:
        rule: a safe rule with a non-empty body.
        label: counter label; defaults to the rule's text.
        reorder: allow the greedy atom-ordering heuristic.
        pinned_first: body index forced to execute first.

    Raises:
        EvaluationError: if the rule has an empty body or is unsafe.
    """
    if not rule.body:
        raise EvaluationError(f"cannot compile a fact rule: {rule}")
    if not rule.is_safe():
        raise EvaluationError(f"cannot compile an unsafe rule: {rule}")

    order = order_body(rule, reorder=reorder, pinned_first=pinned_first)
    pending: List[Constraint] = list(rule.constraints)
    pre_constraints = tuple(c for c in pending if not c.variables)
    pending = [c for c in pending if c.variables]

    steps: List[PlanStep] = []
    bound: Set[Variable] = set()
    for body_index in order:
        atom = rule.body[body_index]
        key_positions = _bound_positions(atom, bound)
        bound |= set(atom.variables())
        ready = tuple(c for c in pending if set(c.variables) <= bound)
        pending = [c for c in pending if c not in ready]
        steps.append(PlanStep(atom=atom, key_positions=key_positions,
                              constraints=ready))
    if pending:
        unbound = {str(v) for c in pending for v in c.variables} - {
            str(v) for v in bound}
        raise EvaluationError(
            f"constraint variables {sorted(unbound)} never bound in rule {rule}")

    return RulePlan(
        rule=rule,
        label=label if label is not None else str(rule),
        steps=tuple(steps),
        pre_constraints=pre_constraints,
    )
