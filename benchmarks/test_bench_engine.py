"""Substrate micro-benchmarks: the sequential engine itself.

Not a paper artefact, but the denominator of every speedup number in
T1/T4 — kept timed so regressions in the engine do not silently skew
the parallel results.
"""

from _common import emit

from repro.bench import ExperimentTable
from repro.engine import EvalCounters, evaluate
from repro.workloads import make_workload


def test_seminaive_ancestor_dag(benchmark):
    workload = make_workload("dag", 250, seed=1)
    result = benchmark(evaluate, workload.program, workload.database)
    assert len(result.relation("anc")) > 0


def test_seminaive_same_generation(benchmark):
    workload = make_workload("same-generation", 64, seed=1)
    result = benchmark(evaluate, workload.program, workload.database)
    assert len(result.relation("sg")) > 0


def test_seminaive_vs_naive_firings(benchmark):
    """Ablation: what semi-naive evaluation saves over naive iteration."""
    workload = make_workload("dag", 120, seed=1)

    def measure():
        semi = EvalCounters()
        naive = EvalCounters()
        evaluate(workload.program, workload.database, counters=semi)
        evaluate(workload.program, workload.database, method="naive",
                 counters=naive)
        return semi, naive

    semi, naive = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = ExperimentTable(
        experiment="ablation",
        title="semi-naive vs naive evaluation on dag-120",
        headers=("strategy", "firings", "probes", "iterations"),
    )
    table.add_row("semi-naive", semi.total_firings(), semi.probes,
                  semi.iterations)
    table.add_row("naive", naive.total_firings(), naive.probes,
                  naive.iterations)
    emit(table)
    assert naive.total_firings() > semi.total_firings()


def test_planner_reordering_ablation(benchmark):
    """Ablation: greedy body reordering vs textual order."""
    workload = make_workload("same-generation", 64, seed=1)

    def measure():
        ordered = EvalCounters()
        textual = EvalCounters()
        evaluate(workload.program, workload.database, counters=ordered,
                 reorder=True)
        evaluate(workload.program, workload.database, counters=textual,
                 reorder=False)
        return ordered, textual

    ordered, textual = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = ExperimentTable(
        experiment="ablation",
        title="planner reordering on same-generation-64",
        headers=("planner", "probes", "firings"),
    )
    table.add_row("greedy reorder", ordered.probes, ordered.total_firings())
    table.add_row("textual order", textual.probes, textual.total_firings())
    emit(table)
    # Both orders compute identical answers (same firings).
    assert ordered.total_firings() == textual.total_firings()
