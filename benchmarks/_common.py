"""Shared helpers for the benchmark modules.

Every benchmark regenerates one paper artefact (figure or claim table —
see DESIGN.md's experiment index), times the computation behind it via
pytest-benchmark, prints the resulting table, and archives it under
``benchmarks/reports/`` so EXPERIMENTS.md can cite actual output.
"""

from __future__ import annotations

import pathlib

from repro.bench import ExperimentTable

REPORTS_DIR = pathlib.Path(__file__).parent / "reports"

__all__ = ["emit", "REPORTS_DIR"]


def emit(table: ExperimentTable) -> ExperimentTable:
    """Print a table and archive it under ``benchmarks/reports/``."""
    text = table.render()
    print()
    print(text)
    REPORTS_DIR.mkdir(exist_ok=True)
    path = REPORTS_DIR / f"{table.experiment}.txt"
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(text + "\n\n")
    return table


def emit_text(experiment: str, text: str) -> None:
    """Print and archive free-form experiment output (figures)."""
    print()
    print(text)
    REPORTS_DIR.mkdir(exist_ok=True)
    path = REPORTS_DIR / f"{experiment}.txt"
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(text + "\n\n")
