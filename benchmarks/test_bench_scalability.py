"""T4: modelled speedup vs processor count, and the architecture
sensitivity the paper's conclusion predicts.

Section 8: "the particular scheme used in a compiler may be dependent
on the underlying characteristics of the architecture e.g., computation
cost as opposed to communication cost."  We reproduce that crossover:
with cheap communication a partitioned point-to-point scheme is
competitive; as the per-tuple communication cost grows, the
zero-communication scheme wins.
"""

import pytest
from _common import emit

from repro.bench import ExperimentTable, scalability_sweep, sequential_baseline
from repro.parallel import (
    CostModel,
    example1_scheme,
    example2_scheme,
    example3_scheme,
    run_parallel,
)
from repro.workloads import make_workload

COUNTS = (1, 2, 4, 8, 16)


@pytest.mark.parametrize("kind,size,factory,label", [
    ("layered", 240, lambda p, procs, db: example3_scheme(p, procs),
     "example3"),
    ("dag", 200, lambda p, procs, db: example3_scheme(p, procs), "example3"),
    ("dag", 200, lambda p, procs, db: example1_scheme(p, procs), "example1"),
])
def test_speedup_vs_processors(benchmark, kind, size, factory, label):
    workload = make_workload(kind, size, seed=5)
    table = benchmark.pedantic(
        scalability_sweep, args=(workload, COUNTS),
        kwargs={"factory": factory, "label": label}, rounds=1, iterations=1)
    emit(table)
    speedups = table.column("speedup")
    assert speedups[0] <= 1.05  # one processor is never faster
    assert max(speedups) == speedups[-1] or max(speedups) > 1.5


def test_communication_cost_crossover(benchmark):
    """The paper's central trade-off as a measured crossover.

    Among the schemes that need only partitioned base data, the
    non-redundant-but-communicating Example 3 beats redundant-but-silent
    Wolfson when communication is cheap, and loses to it when each
    transmitted tuple costs enough work units.  (Example 1 also never
    communicates but requires the base relation replicated N times — a
    storage cost the makespan model does not charge — so it is shown
    for context and excluded from the winner column.)
    """
    from repro.parallel import wolfson_scheme

    workload = make_workload("grid", 81, seed=5)
    _output, seq = sequential_baseline(workload)
    seq_work = seq.total_firings() + seq.probes
    processors = tuple(range(8))
    schemes = {
        "example3": example3_scheme(workload.program, processors),
        "example2": example2_scheme(workload.program, processors,
                                    workload.database),
        "wolfson": wolfson_scheme(workload.program, processors),
        "example1": example1_scheme(workload.program, processors),
    }

    def run_all():
        return {label: run_parallel(program, workload.database)
                for label, program in schemes.items()}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = ExperimentTable(
        experiment="T4",
        title="speedup vs per-tuple communication cost (8 processors, "
              f"{workload.name}, seq work={seq_work})",
        headers=("send cost", "example3 (p2p)", "example2 (broadcast)",
                 "wolfson (redundant)", "example1 (replicated)", "winner"),
    )
    contenders = ("example3", "example2", "wolfson")
    for send_cost in (0.0, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0):
        cost = CostModel(send_cost=send_cost, recv_cost=send_cost)
        speedups = {label: result.metrics.speedup_vs(seq_work, cost)
                    for label, result in results.items()}
        winner = max(contenders, key=lambda label: speedups[label])
        table.add_row(send_cost,
                      round(speedups["example3"], 2),
                      round(speedups["example2"], 2),
                      round(speedups["wolfson"], 2),
                      round(speedups["example1"], 2),
                      winner)
    table.add_note("paper (Sections 6 and 8): more communication buys less "
                   "redundancy and vice versa; which side wins depends on "
                   "the architecture's communication cost — reproduced as "
                   "a crossover between example3 and wolfson")
    emit(table)
    winners = table.column("winner")
    # Cheap communication: the non-redundant communicating scheme wins.
    assert winners[0] == "example3"
    # Expensive communication: the communication-free scheme wins.
    assert winners[-1] == "wolfson"
    # The broadcast scheme never wins once communication costs anything.
    assert all(w != "example2" for w in winners[1:])
