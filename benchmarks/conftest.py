"""Benchmark-session configuration: fresh report files per run."""

from __future__ import annotations

import shutil

from _common import REPORTS_DIR


def pytest_sessionstart(session):
    """Start every benchmark session with an empty reports directory."""
    if REPORTS_DIR.exists():
        shutil.rmtree(REPORTS_DIR)
    REPORTS_DIR.mkdir()
