"""T1: the Section 4 scheme comparison (Examples 1–3 plus baselines).

Paper claims reproduced here:

* Example 1 (Wolfson–Silberschatz): zero communication, base relation
  shared/replicated at every processor.
* Example 2 (Valduriez–Khoshafian): arbitrary partition (replication
  1.0), every output tuple broadcast to all other processors.
* Example 3 (new): point-to-point communication strictly between the
  two extremes, disjoint base fragments.
* All shared-``h`` schemes are semi-naive non-redundant (Theorem 2);
  Wolfson's scheme is redundant on diamond-rich data.
"""

import pytest
from _common import emit

from repro.bench import compare_schemes
from repro.workloads import make_workload

PROCESSORS = range(4)


@pytest.mark.parametrize("kind,size", [
    ("tree", 150),
    ("dag", 150),
    ("grid", 64),
])
def test_scheme_comparison(benchmark, kind, size):
    workload = make_workload(kind, size, seed=7)
    table = benchmark.pedantic(
        compare_schemes, args=(workload, PROCESSORS), rounds=1, iterations=1)
    emit(table)
    rows = {row[0]: dict(zip(table.headers, row)) for row in table.rows}
    assert set(table.column("ok")) == {"yes"}
    assert rows["example1 (no comm)"]["sent"] == 0
    assert rows["example2 (broadcast)"]["sent"] >= rows["example3 (p2p)"]["sent"]
    assert rows["example3 (p2p)"]["replication"] <= 2.0
    assert rows["example1 (no comm)"]["redundancy"] == 0
    assert rows["example3 (p2p)"]["redundancy"] == 0
